"""Chaos suite: deterministic fault injection against the fault-tolerance
contract.

Every scenario scripts its failure through ``REPRO_FAULTS`` (see
:mod:`repro.faults`) so the exact same recovery path runs on every
machine, every time:

* **kill mid-batch** — a worker dies holding dispatched tasks; the round
  retries them elsewhere and the surviving results are bit-identical to
  the serial path, for all five aggregates;
* **kill during steal** — same contract with work stealing re-routing
  tasks between the kill and the retry;
* **poison quarantine** — a task that kills its worker twice is
  quarantined and fails *only its own query* with
  :class:`~repro.exceptions.PoisonTaskError` while sibling tasks and
  concurrent queries complete;
* **deadlines** — delayed replies past the query deadline abandon the
  round and raise :class:`~repro.exceptions.QueryDeadlineError` carrying
  partial progress, well under the injected delay's total cost;
* **graceful degradation** — under ``degrade="worst-case"`` a poisoned
  shard contributes its precomputed worst-case range instead: the merged
  range stays a sound superset of the exact one and the result is stamped
  with the degraded shard positions.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import build_partition_pcs
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.exceptions import PoisonTaskError, QueryDeadlineError, ReproError
from repro.faults import (
    FAULTS_ENV,
    Deadline,
    FaultPlan,
    current_deadline,
    deadline_scope,
    parse_faults,
    resolve_faults,
)
from repro.obs.metrics import get_registry
from repro.parallel.pool import WorkerPool
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import ContingencyService
from repro.service.admission import (
    AdmissionController,
    AdmissionPolicy,
    QueryCost,
)

WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "3")))

ALL_AGGREGATES = (AggregateFunction.COUNT, AggregateFunction.SUM,
                  AggregateFunction.AVG, AggregateFunction.MIN,
                  AggregateFunction.MAX)


@pytest.fixture(autouse=True)
def _isolated_fault_env(monkeypatch):
    """Each test states its own fault plan; the chaos CI leg's global
    ``REPRO_FAULTS`` must not leak into scenarios scripted differently."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    monkeypatch.delenv("REPRO_STEAL", raising=False)
    yield


def make_relation(rows: int = 240, seed: int = 5) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs([("t", ColumnType.FLOAT),
                                ("v", ColumnType.FLOAT)])
    data = np.column_stack([rng.uniform(0.0, 40.0, rows),
                            rng.uniform(1.0, 60.0, rows)])
    return Relation.from_rows(schema, [tuple(row) for row in data],
                              name="chaos-test")


def make_solver(**options) -> PCBoundSolver:
    pcset = build_partition_pcs(make_relation(), ["t"], 6)
    return PCBoundSolver(pcset,
                         BoundOptions(check_closure=False, **options))


def keyed_shard_programs(solver: PCBoundSolver, attribute: str = "v",
                         shards: int = 3) -> list[tuple]:
    sharded = solver.sharded_plan(None, attribute, max_shards=shards)
    assert sharded.is_sharded
    return [(solver.shard_program_key(shard, None, attribute),
             solver.shard_program(shard, None, attribute))
            for shard in sharded]


def direct_endpoints(keyed, aggregate):
    return [(r.lower, r.upper, r.closed)
            for r in (program.bound(aggregate) for _, program in keyed)]


def counter_value(name: str) -> float:
    return get_registry().counter(name).value


# --------------------------------------------------------------------- #
# Plan grammar
# --------------------------------------------------------------------- #
class TestFaultPlanParsing:
    def test_readme_example_parses(self):
        plan = parse_faults(
            "kill:worker=1,task=7;delay:shard=2,ms=500;drop_reply:nth=3")
        assert bool(plan)
        assert plan.spec.startswith("kill:")

    def test_selectors_fire_deterministically(self):
        plan = parse_faults("delay:worker=0,nth=2,ms=5")
        # nth counts only dispatches matching the other selectors.
        assert plan.on_dispatch(1, "solve", 0) is None
        assert plan.on_dispatch(0, "solve", 0) is None  # 1st match
        assert plan.on_dispatch(0, "solve", 1) == ("delay", 5.0)
        assert plan.on_dispatch(0, "solve", 2) is None  # count exhausted
        assert plan.fired() == 1
        plan.reset()
        assert plan.fired() == 0

    def test_count_caps_firings(self):
        plan = parse_faults("fail:shard=0,count=2,message=boom")
        assert plan.on_dispatch(0, "solve", 0) == ("fail", "boom")
        assert plan.on_dispatch(1, "solve", 0) == ("fail", "boom")
        assert plan.on_dispatch(2, "solve", 0) is None

    def test_first_matching_clause_wins(self):
        plan = parse_faults("delay:ms=1;kill:worker=0")
        assert plan.on_dispatch(0, "solve", 0) == ("delay", 1.0)

    @pytest.mark.parametrize("spec", [
        "explode:worker=1",          # unknown action
        "kill:worker",               # malformed pair
        "kill:worker=x",             # non-integer selector
        "kill:bogus=1",              # unknown selector
        "kill:count=0",              # count below 1
    ])
    def test_malformed_plans_fail_loudly(self, spec):
        with pytest.raises(ReproError):
            parse_faults(spec)

    def test_environment_wins_over_configured(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:task=1")
        plan = resolve_faults("delay:ms=1")
        assert isinstance(plan, FaultPlan)
        assert plan.spec == "kill:task=1"
        monkeypatch.delenv(FAULTS_ENV)
        assert resolve_faults(None) is None


# --------------------------------------------------------------------- #
# Deadline primitives
# --------------------------------------------------------------------- #
class TestDeadlines:
    def test_deadline_must_be_positive(self):
        with pytest.raises(ReproError):
            Deadline(0.0)

    def test_scope_nests_and_restores(self):
        assert current_deadline() is None
        outer = Deadline(60.0)
        inner = Deadline(30.0)
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            with deadline_scope(None):  # no-op scope
                assert current_deadline() is outer
        assert current_deadline() is None

    def test_inline_round_honours_expired_deadline(self):
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="serial")
        with deadline_scope(Deadline(1e-9)):
            with pytest.raises(QueryDeadlineError) as excinfo:
                pool.solve_programs(keyed, AggregateFunction.SUM)
        assert excinfo.value.pending > 0

    def test_deferred_admission_respects_query_deadline(self):
        controller = AdmissionController(AdmissionPolicy(
            capacity=1.0, max_pending=4, max_wait_seconds=30.0))
        cost = QueryCost(units=1.0, aggregate="sum", constraint_count=1,
                         estimated_cells=1, shard_count=1,
                         strategy="component", program_warm=False,
                         pool_warm_hit_rate=0.0)
        blocker = controller.admit(cost)
        started = time.monotonic()
        # Parked behind the blocker with a 50 ms budget: the expiry must
        # surface as the query's deadline, not an admission timeout, and
        # far sooner than the policy's 30 s patience.
        with deadline_scope(Deadline(0.05)):
            with pytest.raises(QueryDeadlineError, match="admission"):
                controller.admit(cost)
        assert time.monotonic() - started < 1.0
        blocker.release()
        controller.admit(cost).release()  # capacity freed; admits again


# --------------------------------------------------------------------- #
# Crash recovery: kill mid-batch, kill during steal
# --------------------------------------------------------------------- #
class TestKillRecovery:
    def test_kill_mid_batch_bit_identical_all_aggregates(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:task=1")
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        retried_before = counter_value("pool.tasks_retried")
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            assert pool.fault_plan is not None
            for aggregate in ALL_AGGREGATES:
                # Re-arm the plan so the first dispatch of *every* round
                # dies: each aggregate exercises kill -> respawn -> retry.
                pool.fault_plan.reset()
                recovered = pool.solve_programs(keyed, aggregate)
                assert recovered == direct_endpoints(keyed, aggregate)
            statistics = pool.statistics
            assert statistics.tasks_retried >= len(ALL_AGGREGATES)
            assert statistics.worker_restarts >= len(ALL_AGGREGATES)
            assert statistics.tasks_quarantined == 0
        finally:
            pool.shutdown()
        # The retries surfaced on the shared metrics registry (the feed
        # `repro stats` renders).
        assert counter_value("pool.tasks_retried") >= \
            retried_before + len(ALL_AGGREGATES)

    def test_kill_during_steal_bit_identical(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEAL", "1")
        monkeypatch.setenv(FAULTS_ENV, "kill:task=2")
        solver = make_solver()
        keyed = keyed_shard_programs(solver, shards=6)
        pool = WorkerPool(max_workers=2, mode="process")
        try:
            recovered = pool.solve_programs(keyed, AggregateFunction.SUM)
            assert recovered == direct_endpoints(keyed,
                                                 AggregateFunction.SUM)
            assert pool.statistics.worker_restarts >= 1
            assert pool.statistics.tasks_retried >= 1
        finally:
            pool.shutdown()

    def test_injected_failure_propagates_once(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "fail:task=1,message=chaos-proof")
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            with pytest.raises(Exception, match="chaos-proof"):
                pool.solve_programs(keyed, AggregateFunction.COUNT)
            # The plan is exhausted: the next round is clean and serial-
            # identical — an injected error never sticks to the pool.
            assert pool.solve_programs(keyed, AggregateFunction.COUNT) == \
                direct_endpoints(keyed, AggregateFunction.COUNT)
        finally:
            pool.shutdown()

    def test_dropped_reply_is_surfaced_by_the_deadline(self, monkeypatch):
        # A dropped reply is a *silent* worker, not a dead one: liveness
        # checks see nothing wrong, so the loss is detected by the query
        # deadline, which abandons the round with partial progress instead
        # of hanging forever.
        monkeypatch.setenv(FAULTS_ENV, "drop_reply:task=1")
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            started = time.monotonic()
            with deadline_scope(Deadline(0.75)):
                with pytest.raises(QueryDeadlineError) as excinfo:
                    pool.solve_programs(keyed, AggregateFunction.SUM)
            assert time.monotonic() - started < 5.0
            assert excinfo.value.pending >= 1
            # The plan is exhausted; the next round answers clean.
            assert pool.solve_programs(keyed, AggregateFunction.SUM) == \
                direct_endpoints(keyed, AggregateFunction.SUM)
        finally:
            pool.shutdown()


# --------------------------------------------------------------------- #
# Poison-task quarantine
# --------------------------------------------------------------------- #
class TestPoisonQuarantine:
    def test_poison_task_quarantined_siblings_survive(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:shard=1,count=2")
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        quarantined_before = counter_value("pool.tasks_quarantined")
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            with pytest.raises(PoisonTaskError) as excinfo:
                pool.solve_programs(keyed, AggregateFunction.SUM)
            error = excinfo.value
            assert error.fingerprint is not None
            assert error.fingerprint in str(error)
            assert error.attempts == pool.task_retry_limit
            # Sibling tasks drained before the round failed.
            assert "sibling" in str(error)
            statistics = pool.statistics
            assert statistics.tasks_quarantined >= 1
            assert statistics.tasks_retried >= 1
            # The poison plan is exhausted: the same query now completes
            # bit-identically to the serial path on the same pool.
            assert pool.solve_programs(keyed, AggregateFunction.SUM) == \
                direct_endpoints(keyed, AggregateFunction.SUM)
        finally:
            pool.shutdown()
        assert counter_value("pool.tasks_quarantined") >= \
            quarantined_before + 1

    def test_poison_fails_only_its_own_query(self, monkeypatch):
        # Shard position 2 exists only in the wide query: the fault can
        # never touch the narrow one, however the rounds interleave.
        monkeypatch.setenv(FAULTS_ENV, "kill:shard=2,count=2")
        solver = make_solver()
        wide = keyed_shard_programs(solver, shards=3)
        narrow = keyed_shard_programs(solver, attribute="t", shards=2)
        assert len(wide) >= 3 and len(narrow) == 2
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            with ThreadPoolExecutor(max_workers=2) as executor:
                poisoned = executor.submit(
                    pool.solve_programs, wide, AggregateFunction.SUM)
                healthy = executor.submit(
                    pool.solve_programs, narrow, AggregateFunction.MAX)
                with pytest.raises(PoisonTaskError):
                    poisoned.result(timeout=60)
                assert healthy.result(timeout=60) == \
                    direct_endpoints(narrow, AggregateFunction.MAX)
        finally:
            pool.shutdown()


# --------------------------------------------------------------------- #
# Deadlines end to end
# --------------------------------------------------------------------- #
class TestDeadlineEndToEnd:
    def test_delayed_replies_past_deadline_abandon_round(self, monkeypatch):
        # Every dispatch sleeps 400 ms; with a 50 ms budget the round must
        # abandon its in-flight tasks and raise far sooner than the
        # injected delays could ever finish.
        monkeypatch.setenv(FAULTS_ENV, "delay:ms=400,count=99")
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        exceeded_before = counter_value("queries.deadline_exceeded")
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            started = time.monotonic()
            with deadline_scope(Deadline(0.05)):
                with pytest.raises(QueryDeadlineError) as excinfo:
                    pool.solve_programs(keyed, AggregateFunction.SUM)
            assert time.monotonic() - started < 1.0
            error = excinfo.value
            assert error.deadline == pytest.approx(0.05)
            assert error.elapsed >= 0.05
            assert error.pending > 0
        finally:
            pool.shutdown()
        # The ambient-scope path raises below the solver, so the
        # queries.* counter is untouched here (it belongs to bound()).
        assert counter_value("queries.deadline_exceeded") == exceeded_before

    def test_solver_deadline_option(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "delay:ms=400,count=99")
        solver = make_solver(deadline_seconds=0.05, solve_workers=WORKERS)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        solver._worker_pool = pool
        exceeded_before = counter_value("queries.deadline_exceeded")
        try:
            started = time.monotonic()
            with pytest.raises(QueryDeadlineError):
                solver.bound(AggregateFunction.SUM, "v")
            assert time.monotonic() - started < 1.0
        finally:
            pool.shutdown()
        assert counter_value("queries.deadline_exceeded") == \
            exceeded_before + 1


# --------------------------------------------------------------------- #
# Graceful degradation
# --------------------------------------------------------------------- #
class TestDegradation:
    def test_worst_case_range_is_superset_for_all_aggregates(self):
        solver = make_solver()
        keyed = keyed_shard_programs(solver)
        for _key, program in keyed:
            for aggregate in ALL_AGGREGATES:
                exact = program.bound(aggregate)
                worst = program.worst_case_range(aggregate)
                if worst.lower is not None:
                    assert exact.lower is not None
                    assert worst.lower <= exact.lower + 1e-9
                if worst.upper is not None:
                    assert exact.upper is not None
                    assert worst.upper >= exact.upper - 1e-9

    def test_poisoned_shard_degrades_to_sound_range(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:shard=0,count=2")
        exact = make_solver().bound(AggregateFunction.SUM, "v")
        degraded_before = counter_value("queries.degraded")
        solver = make_solver(degrade="worst-case", solve_workers=WORKERS)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        solver._worker_pool = pool
        try:
            result = solver.bound(AggregateFunction.SUM, "v")
        finally:
            pool.shutdown()
        # Sound: the degraded range contains the exact one.
        assert result.lower <= exact.lower + 1e-9
        assert result.upper >= exact.upper - 1e-9
        # And the result says exactly which shard was degraded.
        assert result.statistics is not None
        assert tuple(result.statistics.degraded_shards) == (0,)
        assert counter_value("queries.degraded") == degraded_before + 1

    def test_unknown_degrade_policy_rejected(self):
        solver = make_solver(degrade="optimistic", solve_workers=WORKERS)
        with pytest.raises(ReproError, match="degrade"):
            solver.bound(AggregateFunction.SUM, "v")


# --------------------------------------------------------------------- #
# Service integration: counters, summary, reports
# --------------------------------------------------------------------- #
class TestServiceFaultTolerance:
    def make_scenario(self):
        relation = make_relation(seed=11)
        pcset = build_partition_pcs(relation, ["t"], 6)
        return relation, pcset

    def test_service_deadline_counted_and_summarised(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "delay:ms=400,count=99")
        relation, pcset = self.make_scenario()
        options = BoundOptions(check_closure=False, solve_workers=WORKERS,
                               deadline_seconds=0.05)
        with ContingencyService(max_workers=WORKERS, pool_mode="process",
                                default_options=options) as service:
            service.register("chaos", pcset, observed=relation)
            started = time.monotonic()
            with pytest.raises(QueryDeadlineError):
                service.analyze("chaos", ContingencyQuery.sum("v"))
            assert time.monotonic() - started < 1.0
            statistics = service.statistics()
            assert statistics.deadline_exceeded == 1
            assert statistics.as_dict()["deadline_exceeded"] == 1
            assert "1 deadline(s) exceeded" in statistics.summary()

    def test_service_degraded_report_counted(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:shard=0,count=2")
        relation, pcset = self.make_scenario()
        options = BoundOptions(check_closure=False, solve_workers=WORKERS,
                               degrade="worst-case")
        with ContingencyService(max_workers=WORKERS, pool_mode="process",
                                default_options=options) as service:
            service.register("chaos", pcset, observed=relation)
            report = service.analyze("chaos", ContingencyQuery.sum("v"))
            assert report.degraded_shards == (0,)
            assert "degraded shards" in report.summary()
            # Exact twin for comparison (no pool, no faults): sound
            # containment holds through the full analyzer stack.
            exact = PCAnalyzer(pcset, observed=relation).analyze(
                ContingencyQuery.sum("v"))
            assert report.lower <= exact.lower + 1e-9
            assert report.upper >= exact.upper - 1e-9
            statistics = service.statistics()
            assert statistics.degraded == 1
            assert "1 degraded answer(s)" in statistics.summary()

    def test_pool_fault_counters_reach_service_summary(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "kill:task=1")
        relation, pcset = self.make_scenario()
        options = BoundOptions(check_closure=False, solve_workers=WORKERS)
        with ContingencyService(max_workers=WORKERS, pool_mode="process",
                                default_options=options) as service:
            service.register("chaos", pcset, observed=relation)
            report = service.analyze("chaos", ContingencyQuery.sum("v"))
            exact = PCAnalyzer(pcset, observed=relation).analyze(
                ContingencyQuery.sum("v"))
            assert report.lower == pytest.approx(exact.lower, rel=1e-9)
            assert report.upper == pytest.approx(exact.upper, rel=1e-9)
            statistics = service.statistics()
            assert statistics.worker_pool["tasks_retried"] >= 1
            assert statistics.worker_pool["worker_restarts"] >= 1
            summary = statistics.summary()
            assert "task(s) retried" in summary
            assert "breaker trip(s)" in summary

    def test_fingerprints_separate_degraded_sessions(self):
        relation, pcset = self.make_scenario()
        with ContingencyService() as service:
            plain = service.register("plain", pcset, observed=relation,
                                     options=BoundOptions(
                                         check_closure=False))
            degraded = service.register("degraded", pcset, observed=relation,
                                        options=BoundOptions(
                                            check_closure=False,
                                            degrade="worst-case"))
            # A degraded session must never share report-cache entries
            # with an exact one; a deadline changes failure behaviour
            # only, so it keeps the fingerprint.
            assert plain.fingerprint != degraded.fingerprint
            deadline = service.register("deadline", pcset, observed=relation,
                                        options=BoundOptions(
                                            check_closure=False,
                                            deadline_seconds=30.0))
            assert deadline.fingerprint == plain.fingerprint
            described = deadline.describe()
            assert described["deadline_seconds"] == 30.0
            assert described["degrade"] is None
