"""Randomized soundness properties of the bounding pipeline, all paths.

The framework's one non-negotiable contract is *soundness*: whenever the
missing partition satisfies the predicate-constraint set, the true aggregate
answer lies inside the returned result range.  This harness generates seeded
synthetic datasets, derives constraint sets from the missing partition (so
satisfaction holds by construction), fires randomized queries across every
aggregate, and asserts the contract on each execution path the parallel
fan-out work introduced:

* the serial compiled-program pipeline (the baseline),
* the sharded fan-out path (``solve_workers > 1``) — which additionally
  must return ranges *identical* to serial on exact enumeration,
* the service batch executor (thread fan-out through the caches),
* the cross-backend verification path (ranges intersected across two
  backends must still contain the truth and equal the serial range).

Scenarios deliberately cover the three structural regimes: disjoint
partitions (the fast greedy path, many shards), overlapping boxes (coupled
MILPs, usually one component), and mandatory-row partitions (exact counts,
non-trivial lower bounds and forced extrema).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import (
    build_partition_pcs,
    build_random_overlapping_boxes,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.predicates import Predicate
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import ContingencyService

AGGREGATES = [
    (AggregateFunction.COUNT, None),
    (AggregateFunction.SUM, "v"),
    (AggregateFunction.AVG, "v"),
    (AggregateFunction.MIN, "v"),
    (AggregateFunction.MAX, "v"),
]


def make_relation(rng: np.random.Generator, rows: int) -> Relation:
    """A synthetic two-column relation: a dimension ``t`` and a measure ``v``."""
    schema = Schema.from_pairs([("t", ColumnType.FLOAT), ("v", ColumnType.FLOAT)])
    t = rng.uniform(0.0, 100.0, rows)
    v = np.round(rng.normal(50.0, 25.0, rows), 3)
    return Relation.from_rows(schema, list(zip(t.tolist(), v.tolist())),
                              name="synthetic")


def split_missing(relation: Relation,
                  rng: np.random.Generator) -> tuple[Relation, Relation]:
    """Randomly split into (observed, missing) partitions."""
    mask = rng.random(relation.num_rows) < 0.5
    observed = relation.take(np.flatnonzero(mask).tolist())
    missing = relation.take(np.flatnonzero(~mask).tolist())
    return observed, missing


def random_queries(rng: np.random.Generator,
                   per_aggregate: int) -> list[ContingencyQuery]:
    """Randomized regions (plus the unrestricted query) for every aggregate."""
    queries: list[ContingencyQuery] = []
    for aggregate, attribute in AGGREGATES:
        queries.append(ContingencyQuery(aggregate, attribute, None))
        for _ in range(per_aggregate):
            low = float(rng.uniform(0.0, 80.0))
            width = float(rng.uniform(5.0, 40.0))
            region = Predicate.range("t", low, low + width)
            queries.append(ContingencyQuery(aggregate, attribute, region))
    return queries


def scenario(seed: int, kind: str):
    """One (missing, pcset, queries) soundness scenario."""
    rng = np.random.default_rng(seed)
    relation = make_relation(rng, rows=400)
    observed, missing = split_missing(relation, rng)
    if kind == "disjoint":
        pcset = build_partition_pcs(missing, ["t"], 8)
    elif kind == "mandatory":
        pcset = build_partition_pcs(missing, ["t"], 6, exact_counts=True)
    else:
        pcset = build_random_overlapping_boxes(missing, ["t"], 5, rng=rng)
    queries = random_queries(rng, per_aggregate=2)
    return relation, observed, missing, pcset, queries


def assert_contains(result_range, truth, query, label: str) -> None:
    assert result_range.contains(truth), (
        f"{label}: {query.describe()} returned "
        f"[{result_range.lower}, {result_range.upper}] "
        f"which does not contain the true answer {truth}")


def _assert_endpoint(first: float | None, second: float | None,
                     detail: tuple) -> None:
    if first is None or second is None:
        assert first == second, detail
    else:
        assert first == pytest.approx(second, rel=1e-9, abs=1e-9), detail


def assert_same_range(first, second, query, label: str) -> None:
    detail = (label, query.describe(), str(first), str(second))
    _assert_endpoint(first.lower, second.lower, detail)
    _assert_endpoint(first.upper, second.upper, detail)


@pytest.mark.parametrize("seed", [101, 202])
@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "mandatory"])
def test_serial_and_sharded_ranges_sound_and_identical(seed, kind):
    """Truth ∈ range on the serial and sharded paths, and the paths agree."""
    _, _, missing, pcset, queries = scenario(seed, kind)
    serial = PCBoundSolver(pcset, BoundOptions())
    sharded = PCBoundSolver(pcset, BoundOptions(solve_workers=3))
    for query in queries:
        truth = query.ground_truth(missing)
        serial_range = serial.bound(query.aggregate, query.attribute,
                                    query.region)
        sharded_range = sharded.bound(query.aggregate, query.attribute,
                                      query.region)
        assert_contains(serial_range, truth, query, "serial")
        assert_contains(sharded_range, truth, query, "sharded")
        assert_same_range(serial_range, sharded_range, query,
                          "sharded vs serial")


@pytest.mark.parametrize("seed", [303])
@pytest.mark.parametrize("kind", ["disjoint", "overlapping"])
def test_combined_ranges_contain_full_relation_truth(seed, kind):
    """With an observed partition, reported ranges cover the full relation."""
    relation, observed, _, pcset, queries = scenario(seed, kind)
    analyzer = PCAnalyzer(pcset, observed=observed, options=BoundOptions())
    parallel_analyzer = PCAnalyzer(pcset, observed=observed,
                                   options=BoundOptions(solve_workers=3))
    for query in queries:
        truth = query.ground_truth(relation)
        report = analyzer.analyze(query)
        assert_contains(report.result_range, truth, query, "serial analyze")
        parallel_report = parallel_analyzer.analyze(query)
        assert_contains(parallel_report.result_range, truth, query,
                        "sharded analyze")
        assert_same_range(report.result_range, parallel_report.result_range,
                          query, "sharded analyze vs serial")


@pytest.mark.parametrize("kind", ["disjoint", "overlapping"])
def test_batch_fanout_matches_serial_and_stays_sound(kind):
    """The service batch fan-out returns the same sound ranges as serial."""
    relation, observed, _, pcset, queries = scenario(404, kind)
    analyzer = PCAnalyzer(pcset, observed=observed, options=BoundOptions())
    service = ContingencyService(max_workers=4)
    service.register("soundness", pcset, observed=observed)
    result = service.execute_batch("soundness", queries)
    for query, report in zip(queries, result.reports):
        truth = query.ground_truth(relation)
        assert_contains(report.result_range, truth, query, "batch fan-out")
        serial_report = analyzer.analyze(query)
        assert_same_range(serial_report.result_range, report.result_range,
                          query, "batch fan-out vs serial")


@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "mandatory"])
def test_cross_backend_verification_sound_and_identical(kind):
    """Verified ranges (scipy ∩ branch-and-bound) equal serial and hold truth.

    The intersection of two sound ranges can only tighten, and on exact
    backends both ranges are equal, so verification must be a behavioural
    no-op on healthy solvers — while still exercising the full alarm path.
    """
    _, _, missing, pcset, queries = scenario(505, kind)
    serial = PCBoundSolver(pcset, BoundOptions())
    verified = PCBoundSolver(pcset, BoundOptions(
        verify_backend="branch-and-bound"))
    for query in queries:
        truth = query.ground_truth(missing)
        serial_range = serial.bound(query.aggregate, query.attribute,
                                    query.region)
        verified_range = verified.bound(query.aggregate, query.attribute,
                                        query.region)
        assert_contains(verified_range, truth, query, "cross-backend")
        assert_same_range(serial_range, verified_range, query,
                          "cross-backend vs serial")


@pytest.mark.parametrize("seed", [707, 808])
@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "mandatory"])
def test_sharded_avg_matches_serial_and_stays_sound(seed, kind):
    """Cross-shard AVG (the pooled binary search) equals the serial search.

    AVG is the one aggregate whose bounds do not merge from independent
    shard ranges — the binary search couples every cell through the shared
    target.  The cross-shard search instead exchanges per-shard
    ``value − target`` optima once per probe, which must reproduce the
    serial search's decisions bit-for-bit: same midpoints, same endpoints.
    Covered regimes: no observed partition (the floored search), an
    observed partition (``known_count > 0``), and randomized regions.
    """
    relation, observed, missing, pcset, _ = scenario(seed, kind)
    serial = PCBoundSolver(pcset, BoundOptions())
    sharded = PCBoundSolver(pcset, BoundOptions(solve_workers=3))
    rng = np.random.default_rng(seed)
    regions = [None] + [Predicate.range("t", low, low + 30.0)
                        for low in rng.uniform(0.0, 60.0, 3)]
    for region in regions:
        query = ContingencyQuery.avg("v", region)
        truth = query.ground_truth(missing)
        serial_range = serial.bound(AggregateFunction.AVG, "v", region)
        sharded_range = sharded.bound(AggregateFunction.AVG, "v", region)
        assert_contains(sharded_range, truth, query, "sharded AVG")
        assert_same_range(serial_range, sharded_range, query,
                          "sharded AVG vs serial")
    # With an observed partition the search carries (known_sum, known_count)
    # — the unfloored regime, where the probe objective is fully separable.
    serial_analyzer = PCAnalyzer(pcset, observed=observed,
                                 options=BoundOptions())
    sharded_analyzer = PCAnalyzer(pcset, observed=observed,
                                  options=BoundOptions(solve_workers=3))
    for region in regions:
        query = ContingencyQuery.avg("v", region)
        truth = query.ground_truth(relation)
        serial_report = serial_analyzer.analyze(query)
        sharded_report = sharded_analyzer.analyze(query)
        assert_contains(sharded_report.result_range, truth, query,
                        "sharded AVG analyze")
        assert_same_range(serial_report.result_range,
                          sharded_report.result_range, query,
                          "sharded AVG analyze vs serial")


def test_sharded_avg_through_process_pool_matches_serial():
    """The same equality holds when the probes run on process workers."""
    from repro.parallel.pool import WorkerPool

    _, _, missing, pcset, _ = scenario(909, "mandatory")
    serial = PCBoundSolver(pcset, BoundOptions())
    with WorkerPool(max_workers=3, mode="process", name="avg-test") as pool:
        sharded = PCBoundSolver(pcset, BoundOptions(solve_workers=3),
                                worker_pool=pool)
        query = ContingencyQuery.avg("v", None)
        truth = query.ground_truth(missing)
        serial_range = serial.bound(AggregateFunction.AVG, "v")
        pooled_range = sharded.bound(AggregateFunction.AVG, "v")
        assert_contains(pooled_range, truth, query, "process-pool AVG")
        assert_same_range(serial_range, pooled_range, query,
                          "process-pool AVG vs serial")


@pytest.mark.parametrize("seed", [111, 222])
@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "mandatory"])
def test_region_sharded_matches_component_sharded_and_serial(seed, kind):
    """Region-sharded == constraint-sharded == serial, truth inside all three.

    The region splitter's contract is *identity*: its shards merge at the
    cell level into the serial program, so every aggregate — AVG included —
    must return the serial range bit-for-bit.  The overlapping scenarios
    are the ones component splitting cannot shard (one overlap component),
    i.e. exactly the regime region splitting was built for; on disjoint
    scenarios the region preference defers to component splitting, so the
    equality chain also pins that hand-off.
    """
    _, _, missing, pcset, queries = scenario(seed, kind)
    serial = PCBoundSolver(pcset, BoundOptions())
    component = PCBoundSolver(pcset, BoundOptions(
        solve_workers=3, shard_strategy="component"))
    region = PCBoundSolver(pcset, BoundOptions(
        solve_workers=3, shard_strategy="region"))
    for query in queries:
        truth = query.ground_truth(missing)
        serial_range = serial.bound(query.aggregate, query.attribute,
                                    query.region)
        component_range = component.bound(query.aggregate, query.attribute,
                                          query.region)
        region_range = region.bound(query.aggregate, query.attribute,
                                    query.region)
        assert_contains(serial_range, truth, query, "serial")
        assert_contains(component_range, truth, query, "component-sharded")
        assert_contains(region_range, truth, query, "region-sharded")
        assert_same_range(serial_range, component_range, query,
                          "component-sharded vs serial")
        assert_same_range(serial_range, region_range, query,
                          "region-sharded vs serial")


def test_region_sharding_engages_on_one_component_sets():
    """The acceptance scenario: a one-component set actually fans out.

    Component splitting cannot shard the overlapping scenario (one overlap
    component), so before this PR it solved serially no matter how many
    workers were requested; the region splitter must produce >= 2 shards,
    dispatch their enumerations to the worker pool, and still return serial
    ranges for every aggregate.
    """
    from repro.parallel.pool import WorkerPool

    _, _, missing, pcset, _ = scenario(131, "overlapping")
    serial = PCBoundSolver(pcset, BoundOptions())
    with WorkerPool(max_workers=3, mode="process",
                    name="acceptance") as pool:
        region = PCBoundSolver(pcset, BoundOptions(
            solve_workers=3, shard_strategy="region"), worker_pool=pool)
        sharded = region.sharded_plan(None, "v")
        assert sharded.strategy == "region" and len(sharded) >= 2
        # Component splitting really cannot shard this set (one component).
        from repro.plan.sharding import shard_plan
        assert not shard_plan(sharded.parent).is_sharded
        before = pool.statistics.tasks_dispatched
        for aggregate, attribute in AGGREGATES:
            query = ContingencyQuery(aggregate, attribute, None)
            truth = query.ground_truth(missing)
            serial_range = serial.bound(aggregate, attribute)
            region_range = region.bound(aggregate, attribute)
            assert_contains(region_range, truth, query, "region acceptance")
            assert_same_range(serial_range, region_range, query,
                              "region acceptance vs serial")
        assert pool.statistics.tasks_dispatched >= before + 2


def test_sharded_verified_combination_is_sound():
    """Sharding and verification compose: fan out, cross-check, stay sound."""
    _, _, missing, pcset, queries = scenario(606, "disjoint")
    combined = PCBoundSolver(pcset, BoundOptions(
        solve_workers=3, verify_backend="branch-and-bound"))
    serial = PCBoundSolver(pcset, BoundOptions())
    for query in queries:
        truth = query.ground_truth(missing)
        combined_range = combined.bound(query.aggregate, query.attribute,
                                        query.region)
        assert_contains(combined_range, truth, query, "sharded+verified")
        serial_range = serial.bound(query.aggregate, query.attribute,
                                    query.region)
        assert_same_range(serial_range, combined_range, query,
                          "sharded+verified vs serial")


# --------------------------------------------------------------------- #
# Batched multi-solve kernel equivalence (PR 7)
# --------------------------------------------------------------------- #
def _random_compiled_milp(rng, *, pure_box: bool):
    """A random compiled skeleton shaped like the cell-allocation programs."""
    from repro.solvers.milp import CompiledMILP, MILPModel

    model = MILPModel()
    count = int(rng.integers(2, 7))
    for index in range(count):
        model.add_variable(f"x{index}", 0, float(rng.integers(1, 9)),
                           objective=0.0, is_integer=True)
    if not pure_box:
        for _ in range(int(rng.integers(1, 4))):
            members = rng.choice(count, size=max(2, count // 2), replace=False)
            model.add_constraint({f"x{int(m)}": 1.0 for m in members},
                                 upper=float(rng.integers(2, 12)))
    return CompiledMILP(model), count


@pytest.mark.parametrize("seed", [31, 32])
@pytest.mark.parametrize("pure_box", [True, False])
def test_solve_objectives_matches_row_by_row(seed, pure_box):
    """The kernel contract: one matrix call == the per-row scalar calls.

    Bit-identical, not approximately equal: the batched path must use the
    same endpoint selection and the same dot-product summation order as
    ``solve_objective``, on both the vectorized-greedy (pure box) and the
    prebuilt-scipy (constrained) paths.
    """
    from repro.solvers.lp import Sense

    rng = np.random.default_rng(seed)
    compiled, count = _random_compiled_milp(rng, pure_box=pure_box)
    matrix = rng.normal(0.0, 5.0, size=(7, count))
    matrix[0] = 0.0  # the all-zero objective row
    for sense in (Sense.MAXIMIZE, Sense.MINIMIZE):
        batch = compiled.solve_objectives(matrix, sense)
        assert len(batch) == matrix.shape[0]
        for row, (status, value) in enumerate(batch):
            want_status, want_value = compiled.solve_objective(
                matrix[row], sense)
            assert status is want_status, (sense, row)
            assert value == want_value, (sense, row, value, want_value)


@pytest.mark.parametrize("backend", ["scipy", "branch-and-bound",
                                     "relaxation"])
def test_bound_batch_matches_per_request_across_backends(backend):
    """``bound_batch`` == per-request ``bound`` on every backend's path.

    scipy exercises the compiled multi-RHS kernel, branch-and-bound and
    relaxation the materialize-once dispatch loop — all three must be
    endpoint-identical to the per-cell path on all five aggregates.
    """
    _, _, _, pcset, _ = scenario(606, "mandatory")
    solver = PCBoundSolver(pcset, BoundOptions(milp_backend=backend))
    program = solver.program(None, "v")
    requests = [(aggregate, 0.0, 0) for aggregate, _ in AGGREGATES]
    requests.append((AggregateFunction.AVG, 42.0, 11))
    batch = program.bound_batch(requests)
    for (aggregate, known_sum, known_count), got in zip(requests, batch):
        want = program.bound(aggregate, known_sum=known_sum,
                             known_count=known_count)
        assert (got.lower, got.upper, got.closed) == \
            (want.lower, want.upper, want.closed), (backend, aggregate)


@pytest.mark.parametrize("seed", [515, 616])
@pytest.mark.parametrize("kind", ["disjoint", "overlapping", "mandatory"])
def test_batched_solves_identical_to_unbatched(seed, kind, monkeypatch):
    """REPRO_SOLVE_BATCH on vs off: endpoint-identical on serial + sharded.

    The batched kernel's hard constraint — flipping the toggle (or forcing
    the degenerate one-cell batches) must never move an endpoint, for all
    five aggregates, on the serial and thread-sharded paths alike.
    """
    _, _, missing, pcset, queries = scenario(seed, kind)

    def ranges(env):
        for name, value in env.items():
            if value is None:
                monkeypatch.delenv(name, raising=False)
            else:
                monkeypatch.setenv(name, value)
        results = []
        for options in (BoundOptions(), BoundOptions(solve_workers=3)):
            solver = PCBoundSolver(pcset, options)
            for query in queries:
                result = solver.bound(query.aggregate, query.attribute,
                                      query.region)
                results.append((result.lower, result.upper, result.closed))
        return results

    baseline = ranges({"REPRO_SOLVE_BATCH": "0", "REPRO_SOLVE_BATCH_SIZE": None})
    batched = ranges({"REPRO_SOLVE_BATCH": "1", "REPRO_SOLVE_BATCH_SIZE": None})
    degenerate = ranges({"REPRO_SOLVE_BATCH": "1",
                         "REPRO_SOLVE_BATCH_SIZE": "1"})
    assert batched == baseline
    assert degenerate == baseline


def test_batched_process_pool_matches_serial(monkeypatch):
    """Batched task kinds through real process workers == serial ranges.

    Covers solve_batch (sharded COUNT/SUM/MIN/MAX), probe_batch (the
    cross-shard AVG search) and the batched region decomposition, against
    the unbatched serial baseline on the same constraint set.
    """
    from repro.parallel.pool import WorkerPool

    _, _, missing, pcset, queries = scenario(505, "mandatory")
    monkeypatch.setenv("REPRO_SOLVE_BATCH", "0")
    serial = PCBoundSolver(pcset, BoundOptions())
    baseline = {}
    for query in queries:
        result = serial.bound(query.aggregate, query.attribute, query.region)
        baseline[id(query)] = result
        truth = query.ground_truth(missing)
        assert_contains(result, truth, query, "serial baseline")
    monkeypatch.setenv("REPRO_SOLVE_BATCH", "1")
    with WorkerPool(max_workers=3, mode="process", name="batch-test") as pool:
        sharded = PCBoundSolver(pcset, BoundOptions(solve_workers=3),
                                worker_pool=pool)
        for query in queries:
            pooled = sharded.bound(query.aggregate, query.attribute,
                                   query.region)
            assert_same_range(baseline[id(query)], pooled, query,
                              "batched process pool vs serial")
        avg = ContingencyQuery.avg("v", None)
        pooled = sharded.bound(AggregateFunction.AVG, "v", None)
        assert_same_range(serial.bound(AggregateFunction.AVG, "v", None),
                          pooled, avg, "batched process AVG vs serial")
        assert pool.statistics.cells_solved >= pool.statistics.tasks_shipped
