"""Unit tests for program-aware admission control.

The controller is pinned directly (accept / reject / defer / timeout over
synthetic costs), the pricing model is pinned for monotonicity and
warm/sharded discounts, and the service integration is pinned end-to-end:
an over-budget query is shed *before* any decomposition or compilation, the
bounded queue defers and resumes, batches admit as one reservation, and
report-cache hits bypass admission entirely.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import QueryRejectedError
from repro.service import AdmissionPolicy, ContingencyService, price_query
from repro.service.admission import AdmissionController, QueryCost


def pc(lo, hi, name, klo=0, khi=10):
    return PredicateConstraint(Predicate.range("t", lo, hi),
                               ValueConstraint({"v": (0.0, 10.0)}),
                               FrequencyConstraint(klo, khi), name=name)


def chain_pcset(count: int = 6) -> PredicateConstraintSet:
    return PredicateConstraintSet(
        [pc(float(i), i + 1.5, f"c{i}") for i in range(count)])


def cost(units: float) -> QueryCost:
    return QueryCost(units=units, aggregate="COUNT", constraint_count=1,
                     estimated_cells=1, shard_count=1, strategy="serial",
                     program_warm=False, pool_warm_hit_rate=0.0)


# --------------------------------------------------------------------- #
# The controller
# --------------------------------------------------------------------- #
class TestAdmissionController:
    def test_admits_under_budget_and_releases(self):
        controller = AdmissionController(AdmissionPolicy(max_query_cost=10,
                                                         capacity=10))
        with controller.admit(cost(4)):
            assert controller.statistics.units_in_flight == 4
        stats = controller.statistics
        assert stats.admitted == 1 and stats.units_in_flight == 0

    def test_over_budget_rejected_with_reason(self):
        controller = AdmissionController(AdmissionPolicy(max_query_cost=5))
        with pytest.raises(QueryRejectedError) as info:
            controller.admit(cost(6))
        assert info.value.reason == "over-budget"
        assert info.value.cost == 6 and info.value.limit == 5
        assert controller.statistics.rejected_over_budget == 1

    def test_queue_full_rejects_immediately(self):
        controller = AdmissionController(AdmissionPolicy(capacity=5,
                                                         max_pending=0))
        ticket = controller.admit(cost(4))
        with pytest.raises(QueryRejectedError) as info:
            controller.admit(cost(4))
        assert info.value.reason == "queue-full"
        ticket.release()
        controller.admit(cost(4)).release()  # capacity freed

    def test_deferred_query_resumes_on_release(self):
        controller = AdmissionController(AdmissionPolicy(
            capacity=5, max_pending=1, max_wait_seconds=5.0))
        first = controller.admit(cost(4))
        admitted = threading.Event()

        def deferred():
            with controller.admit(cost(4)):
                admitted.set()

        waiter = threading.Thread(target=deferred)
        waiter.start()
        time.sleep(0.05)
        assert not admitted.is_set()  # parked on the bounded queue
        assert controller.statistics.pending == 1
        first.release()
        waiter.join(timeout=5.0)
        assert admitted.is_set()
        assert controller.statistics.deferred == 1
        assert controller.statistics.admitted == 2

    def test_deferred_query_times_out(self):
        controller = AdmissionController(AdmissionPolicy(
            capacity=5, max_pending=1, max_wait_seconds=0.05))
        ticket = controller.admit(cost(4))
        with pytest.raises(QueryRejectedError) as info:
            controller.admit(cost(4))
        assert info.value.reason == "timeout"
        ticket.release()

    def test_oversized_query_runs_alone(self):
        # capacity is a concurrency budget, not a per-query ceiling: a query
        # bigger than the whole capacity still runs when nothing else does.
        controller = AdmissionController(AdmissionPolicy(capacity=5))
        with controller.admit(cost(9)):
            pass
        assert controller.statistics.admitted == 1

    def test_admit_many_checks_each_then_reserves_the_sum(self):
        controller = AdmissionController(AdmissionPolicy(max_query_cost=5,
                                                         capacity=20))
        ticket = controller.admit_many([cost(3), cost(4)])
        assert controller.statistics.units_in_flight == 7
        ticket.release()
        with pytest.raises(QueryRejectedError):
            controller.admit_many([cost(3), cost(6)])  # one member too big

    def test_release_is_idempotent(self):
        controller = AdmissionController(AdmissionPolicy(capacity=5))
        ticket = controller.admit(cost(3))
        ticket.release()
        ticket.release()
        assert controller.statistics.units_in_flight == 0


# --------------------------------------------------------------------- #
# Pricing
# --------------------------------------------------------------------- #
class TestPricing:
    def price(self, pcset, query, **options):
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False,
                                                   **options))
        return solver, price_query(solver, query)

    def test_monotone_in_constraint_count(self):
        _, small = self.price(chain_pcset(3), ContingencyQuery.count())
        _, large = self.price(chain_pcset(6), ContingencyQuery.count())
        assert large.units > small.units
        assert large.constraint_count > small.constraint_count

    def test_warm_program_is_cheaper(self):
        solver = PCBoundSolver(chain_pcset(4),
                               BoundOptions(check_closure=False))
        query = ContingencyQuery.count()
        cold = price_query(solver, query)
        solver.bound(query.aggregate)  # compiles and caches the program
        warm = price_query(solver, query)
        assert warm.program_warm and not cold.program_warm
        assert warm.units < cold.units

    def test_warm_discount_applies_to_component_sharded_sessions(self):
        # Component-sharded execution compiles only shard-token program
        # keys; warmth must be probed against those, not the (forever
        # cold) unsharded pair key.
        pcset = PredicateConstraintSet(
            [pc(float(2 * i), 2 * i + 0.9, f"w{i}") for i in range(4)])
        pcset.mark_disjoint(True)
        solver = PCBoundSolver(pcset, BoundOptions(
            check_closure=False, solve_workers=2,
            shard_strategy="component"))
        query = ContingencyQuery.count()
        cold = price_query(solver, query)
        assert cold.strategy == "component" and not cold.program_warm
        solver.bound(query.aggregate)  # compiles the per-shard programs
        warm = price_query(solver, query)
        assert warm.program_warm
        assert warm.units < cold.units

    def test_fanned_out_query_is_cheaper_than_serial(self):
        _, serial = self.price(chain_pcset(6), ContingencyQuery.count())
        _, sharded = self.price(chain_pcset(6), ContingencyQuery.count(),
                                solve_workers=3, shard_strategy="region")
        assert sharded.strategy == "region" and sharded.shard_count >= 2
        assert serial.strategy == "serial"
        assert sharded.units < serial.units

    def test_avg_prices_its_probe_budget(self):
        _, count = self.price(chain_pcset(4), ContingencyQuery.count())
        _, avg = self.price(chain_pcset(4), ContingencyQuery.avg("v"))
        assert avg.units > count.units

    def test_pricing_never_solves_or_decomposes(self):
        solver, priced = self.price(chain_pcset(5), ContingencyQuery.count())
        assert priced.units > 0
        assert solver.decompositions_computed == 0
        assert solver.programs_compiled == 0


# --------------------------------------------------------------------- #
# Service integration
# --------------------------------------------------------------------- #
class TestServiceAdmission:
    OPTIONS = BoundOptions(check_closure=False)

    def test_over_budget_query_shed_before_any_solve(self):
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=0.5)) as service:
            session = service.register("s", chain_pcset(),
                                       options=self.OPTIONS)
            with pytest.raises(QueryRejectedError) as info:
                service.analyze("s", ContingencyQuery.count())
            assert info.value.reason == "over-budget"
            solver = session.analyzer.solver
            assert solver.decompositions_computed == 0
            assert solver.programs_compiled == 0
            stats = service.statistics()
            assert stats.admission["rejected"] == 1
            assert "admission control" in stats.summary()

    def test_admitted_query_answers_and_frees_capacity(self):
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=1e9, capacity=1e9)) as service:
            service.register("s", chain_pcset(), options=self.OPTIONS)
            report = service.analyze("s", ContingencyQuery.count())
            baseline = PCBoundSolver(chain_pcset(), self.OPTIONS)
            expected = baseline.bound(ContingencyQuery.count().aggregate)
            assert (report.missing_range.lower, report.missing_range.upper) \
                == (expected.lower, expected.upper)
            stats = service.statistics().admission
            assert stats["admitted"] == 1 and stats["units_in_flight"] == 0.0

    def test_report_cache_hits_bypass_admission(self):
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=1e9)) as service:
            service.register("s", chain_pcset(), options=self.OPTIONS)
            query = ContingencyQuery.count()
            service.analyze("s", query)
            service.analyze("s", query)  # warm: served from the report cache
            stats = service.statistics().admission
            assert stats["priced"] == 1 and stats["admitted"] == 1

    def test_batch_rejected_before_dispatch(self):
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=0.5)) as service:
            session = service.register("s", chain_pcset(),
                                       options=self.OPTIONS)
            queries = [ContingencyQuery.count(),
                       ContingencyQuery.sum("v")]
            with pytest.raises(QueryRejectedError):
                service.execute_batch("s", queries)
            solver = session.analyzer.solver
            assert solver.decompositions_computed == 0
            assert solver.programs_compiled == 0

    def test_batch_admits_distinct_misses_as_one_reservation(self):
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=1e9, capacity=1e9)) as service:
            service.register("s", chain_pcset(), options=self.OPTIONS)
            queries = [ContingencyQuery.count(), ContingencyQuery.count(),
                       ContingencyQuery.sum("v")]
            result = service.execute_batch("s", queries)
            assert len(result) == 3
            stats = service.statistics().admission
            # One combined reservation, fully released.
            assert stats["admitted"] == 1
            assert stats["units_in_flight"] == 0.0

    def test_concurrent_cold_racers_solve_once(self):
        # Admission must not forfeit the report cache's single-flight
        # dedup: racers each hold admitted units, but only one solves.
        with ContingencyService(admission=AdmissionPolicy(
                max_query_cost=1e9, capacity=1e9)) as service:
            session = service.register("s", chain_pcset(),
                                       options=self.OPTIONS)
            query = ContingencyQuery.count()
            barrier = threading.Barrier(2)
            reports = []

            def racer():
                barrier.wait()
                reports.append(service.analyze("s", query))

            threads = [threading.Thread(target=racer) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
            assert len(reports) == 2
            assert (reports[0].lower, reports[0].upper) == \
                (reports[1].lower, reports[1].upper)
            assert session.analyzer.solver.decompositions_computed == 1

    def test_service_without_policy_admits_freely(self):
        with ContingencyService() as service:
            service.register("s", chain_pcset(), options=self.OPTIONS)
            service.analyze("s", ContingencyQuery.count())
            assert service.admission is None
            assert service.statistics().admission is None


# --------------------------------------------------------------------- #
# Deferred-queue wakeup ordering
# --------------------------------------------------------------------- #
class TestWakeupOrdering:
    """Released capacity goes to the shortest-priced waiter first, with a
    per-session fairness penalty and no newcomer bypass — the elastic
    scheduler's admission leg."""

    def wait_for_pending(self, controller, count, timeout=5.0):
        deadline = time.monotonic() + timeout
        while controller.statistics.pending != count:
            if time.monotonic() > deadline:
                raise AssertionError(
                    f"pending never reached {count} "
                    f"(now {controller.statistics.pending})")
            time.sleep(0.005)

    def test_shortest_priced_waiter_admits_first(self):
        # Capacity 4, fully held.  Waiters arrive largest-first (4, 3, 2);
        # each fills the capacity alone, so admissions serialize and the
        # recorded order is exactly the head-selection order: shortest
        # first, not FIFO.
        controller = AdmissionController(AdmissionPolicy(
            capacity=4, max_pending=3, max_wait_seconds=10.0))
        held = controller.admit(cost(4))
        order: list[float] = []

        def deferred(units):
            with controller.admit(cost(units), session=f"s{units}"):
                order.append(units)

        threads = []
        for units, pending in ((4, 1), (3, 2), (2, 3)):
            thread = threading.Thread(target=deferred, args=(units,))
            thread.start()
            threads.append(thread)
            self.wait_for_pending(controller, pending)
        held.release()
        for thread in threads:
            thread.join(timeout=10.0)
        assert order == [2, 3, 4]
        stats = controller.statistics
        assert stats.deferred == 3 and stats.admitted == 4
        assert stats.pending == 0 and stats.units_in_flight == 0

    def test_newcomer_never_bypasses_a_parked_large_waiter(self):
        # Capacity 10 with 7 held: an 8-unit waiter parks, then a 2-unit
        # newcomer arrives that *would* fit — it must queue anyway, or a
        # stream of small arrivals starves the large waiter forever.
        controller = AdmissionController(AdmissionPolicy(
            capacity=10, max_pending=2, max_wait_seconds=10.0))
        held = controller.admit(cost(7), session="a")
        admissions: list[float] = []

        def deferred(units, session):
            with controller.admit(cost(units), session=session):
                admissions.append(units)
                time.sleep(0.02)  # hold briefly so both overlap

        large = threading.Thread(target=deferred, args=(8, "b"))
        large.start()
        self.wait_for_pending(controller, 1)
        small = threading.Thread(target=deferred, args=(2, "a"))
        small.start()
        self.wait_for_pending(controller, 2)
        # The newcomer fits (7 + 2 <= 10) yet is parked behind the queue.
        assert controller.statistics.admitted == 1
        held.release()
        large.join(timeout=10.0)
        small.join(timeout=10.0)
        assert sorted(admissions) == [2, 8]
        assert controller.statistics.admitted == 3
        assert controller.statistics.units_in_flight == 0

    def test_session_flood_does_not_starve_other_sessions(self):
        # Session "a" got the last admission and has another query parked;
        # session "b"'s waiter is larger AND arrived later, but the
        # fairness penalty on back-to-back same-session admissions makes
        # "b" the head once capacity frees.
        controller = AdmissionController(AdmissionPolicy(
            capacity=2, max_pending=2, max_wait_seconds=10.0))
        held = controller.admit(cost(2), session="a")
        order: list[str] = []

        def deferred(units, session):
            with controller.admit(cost(units), session=session):
                order.append(session)

        first = threading.Thread(target=deferred, args=(1, "a"))
        first.start()
        self.wait_for_pending(controller, 1)
        second = threading.Thread(target=deferred, args=(2, "b"))
        second.start()
        self.wait_for_pending(controller, 2)
        held.release()
        first.join(timeout=10.0)
        second.join(timeout=10.0)
        assert order == ["b", "a"]
        assert controller.statistics.admitted == 3

    def test_admit_many_prices_every_member_exactly_once(self):
        # Success path: three members, three priced, one combined admit.
        controller = AdmissionController(AdmissionPolicy(max_query_cost=5,
                                                         capacity=100))
        with controller.admit_many([cost(1), cost(2), cost(3)]):
            pass
        stats = controller.statistics
        assert stats.priced == 3 and stats.admitted == 1
        # Rejection path: both members were priced before the second one
        # tripped the budget — the old accounting counted only the
        # offending member.
        rejecting = AdmissionController(AdmissionPolicy(max_query_cost=5))
        with pytest.raises(QueryRejectedError):
            rejecting.admit_many([cost(3), cost(6)])
        stats = rejecting.statistics
        assert stats.priced == 2
        assert stats.rejected_over_budget == 1
        assert stats.admitted == 0
