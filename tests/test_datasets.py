"""Unit tests for the synthetic dataset generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.airbnb import AIRBNB_SCHEMA, generate_airbnb
from repro.datasets.border_crossing import BORDER_SCHEMA, generate_border_crossing
from repro.datasets.graphs import (
    count_triangles,
    generate_chain_relations,
    generate_edge_table,
    triangle_relations,
)
from repro.datasets.intel_wireless import INTEL_SCHEMA, generate_intel_wireless
from repro.datasets.synthetic import lognormal_prices, make_rng, zipf_weights
from repro.exceptions import DatasetError
from repro.relational.joins import natural_join_many


class TestSyntheticHelpers:
    def test_make_rng_reproducible(self):
        assert make_rng(5).integers(0, 100) == make_rng(5).integers(0, 100)

    def test_lognormal_prices(self):
        rng = make_rng(0)
        prices = lognormal_prices(rng, 1000, median=100.0, sigma=0.5, cap=1000.0)
        assert prices.shape == (1000,)
        assert (prices > 0).all()
        assert prices.max() <= 1000.0
        with pytest.raises(DatasetError):
            lognormal_prices(rng, -1, 10.0, 0.5)

    def test_zipf_weights(self):
        weights = zipf_weights(10)
        assert weights.sum() == pytest.approx(1.0)
        assert weights[0] > weights[-1]
        with pytest.raises(DatasetError):
            zipf_weights(0)


class TestIntelWireless:
    def test_schema_and_size(self):
        relation = generate_intel_wireless(num_rows=2_000, seed=1)
        assert relation.schema == INTEL_SCHEMA
        assert relation.num_rows == 2_000

    def test_reproducible(self):
        first = generate_intel_wireless(num_rows=500, seed=2)
        second = generate_intel_wireless(num_rows=500, seed=2)
        assert first.column("light").tolist() == second.column("light").tolist()

    def test_light_is_nonnegative_and_skewed(self):
        relation = generate_intel_wireless(num_rows=5_000, seed=3)
        light = relation.column("light")
        assert (light >= 0).all()
        assert light.max() > 5 * np.median(light)  # right-skewed

    def test_light_correlates_with_time_of_day(self):
        relation = generate_intel_wireless(num_rows=8_000, seed=4)
        hour = np.mod(relation.column("time"), 24.0)
        light = relation.column("light")
        daytime = light[(hour > 10) & (hour < 14)].mean()
        night = light[(hour < 4)].mean()
        assert daytime > 2 * night

    def test_device_ids_in_range(self):
        relation = generate_intel_wireless(num_rows=1_000, num_devices=10, seed=5)
        devices = relation.column("device_id")
        assert devices.min() >= 0 and devices.max() < 10

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            generate_intel_wireless(num_rows=0)
        with pytest.raises(DatasetError):
            generate_intel_wireless(num_devices=0)


class TestAirbnb:
    def test_schema_and_size(self):
        relation = generate_airbnb(num_rows=2_000, seed=1)
        assert relation.schema == AIRBNB_SCHEMA
        assert relation.num_rows == 2_000

    def test_prices_heavy_tailed_and_positive(self):
        relation = generate_airbnb(num_rows=5_000, seed=2)
        price = relation.column("price")
        assert (price > 0).all()
        assert price.max() > 4 * np.median(price)

    def test_location_price_correlation(self):
        relation = generate_airbnb(num_rows=8_000, seed=3)
        groups = relation.group_by(["neighbourhood_group"])
        manhattan = groups.get(("Manhattan",))
        bronx = groups.get(("Bronx",))
        if manhattan is not None and bronx is not None and bronx.num_rows > 20:
            assert manhattan.column_mean("price") > bronx.column_mean("price")

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            generate_airbnb(num_rows=0)


class TestBorderCrossing:
    def test_schema_and_size(self):
        relation = generate_border_crossing(num_rows=3_000, seed=1)
        assert relation.schema == BORDER_SCHEMA
        assert relation.num_rows == 3_000

    def test_port_popularity_is_skewed(self):
        relation = generate_border_crossing(num_rows=10_000, num_ports=50, seed=2)
        counts = sorted(relation.value_counts("port_code").values(), reverse=True)
        assert counts[0] > 5 * counts[-1]

    def test_values_nonnegative(self):
        relation = generate_border_crossing(num_rows=2_000, seed=3)
        assert (relation.column("value") >= 0).all()

    def test_invalid_arguments(self):
        with pytest.raises(DatasetError):
            generate_border_crossing(num_rows=0)
        with pytest.raises(DatasetError):
            generate_border_crossing(num_ports=0)


class TestGraphs:
    def test_edge_table_properties(self):
        edges = generate_edge_table(500, num_vertices=50, seed=1)
        assert edges.num_rows == 500
        assert (edges.column("src") != edges.column("dst")).all()  # no self-loops
        with pytest.raises(DatasetError):
            generate_edge_table(0)
        with pytest.raises(DatasetError):
            generate_edge_table(10, num_vertices=1)

    def test_triangle_relations_share_columns(self):
        edges = generate_edge_table(100, seed=2)
        r, s, t = triangle_relations(edges)
        assert r.schema.names == ("a", "b")
        assert s.schema.names == ("b", "c")
        assert t.schema.names == ("c", "a")
        assert r.num_rows == s.num_rows == t.num_rows == 100

    def test_count_triangles_matches_manual_join(self):
        edges = generate_edge_table(150, num_vertices=20, seed=3)
        expected = natural_join_many(list(triangle_relations(edges))).num_rows
        assert count_triangles(edges) == expected

    def test_count_triangles_on_known_graph(self):
        from repro.relational.relation import Relation
        from repro.relational.schema import ColumnType, Schema

        schema = Schema.from_pairs([("src", ColumnType.INT), ("dst", ColumnType.INT)])
        cycle = Relation(schema, {"src": [0, 1, 2], "dst": [1, 2, 0]})
        assert count_triangles(cycle) == 3  # the directed 3-cycle, 3 rotations

    def test_chain_relations(self):
        relations = generate_chain_relations(50, 4, seed=4)
        assert len(relations) == 4
        assert relations[0].schema.names == ("x1", "x2")
        assert relations[3].schema.names == ("x4", "x5")
        with pytest.raises(DatasetError):
            generate_chain_relations(0)
        with pytest.raises(DatasetError):
            generate_chain_relations(10, 0)
