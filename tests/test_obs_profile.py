"""EXPLAIN ANALYZE profiles: tree building, skew, JSON, service surface."""

from __future__ import annotations

import json

import pytest

from repro.core.engine import ContingencyQuery
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.obs.profile import PROFILE_SCHEMA, ProfileNode, QueryProfile
from repro.obs.trace import Span, Trace
from repro.service.service import ContingencyService
from test_obs_trace import chain_pcset


@pytest.fixture
def registry():
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


def make_trace(spans: list[Span], trace_id: str = "t-1") -> Trace:
    trace = Trace(trace_id)
    trace.extend(spans)
    return trace


def sharded_trace() -> Trace:
    """root -> solve -> three shard spans with solver-call tallies."""
    return make_trace([
        Span("1", None, "query", 0.0, 10.0),
        Span("2", "1", "solve.sharded", 1.0, 9.0),
        Span("3", "2", "pool.solve", 1.0, 5.0,
             {"shard": 0, "solver_calls": 4}),
        Span("4", "2", "pool.solve", 1.0, 3.0,
             {"shard": 1, "solver_calls": 2}),
        Span("5", "2", "pool.solve", 1.0, 3.0,
             {"shard": 2, "solver_calls": 2}),
    ])


class TestTreeBuilding:
    def test_children_nest_and_sort_by_start(self):
        trace = make_trace([
            Span("1", None, "query", 0.0, 10.0),
            Span("3", "1", "later", 5.0, 6.0),
            Span("2", "1", "earlier", 1.0, 2.0),
        ])
        profile = QueryProfile.from_trace(trace)
        assert [child.name for child in profile.root.children] == \
            ["earlier", "later"]

    def test_orphans_hang_under_root_tagged(self):
        """A span whose parent never came back (killed worker) degrades to
        an ``orphaned`` child of the root instead of corrupting the tree."""
        trace = make_trace([
            Span("1", None, "query", 0.0, 10.0),
            Span("9", "missing-parent", "pool.solve", 2.0, 3.0),
        ])
        profile = QueryProfile.from_trace(trace)
        orphan = profile.root.find("pool.solve")
        assert orphan is not None
        assert orphan.attributes["orphaned"] is True

    def test_empty_trace_gives_none(self):
        assert QueryProfile.from_trace(Trace("empty")) is None

    def test_node_find_and_total(self):
        profile = QueryProfile.from_trace(sharded_trace())
        assert profile.root.find("solve.sharded") is not None
        assert len(profile.root.find_all("pool.solve")) == 3
        assert profile.root.total("solver_calls") == 8.0


class TestDerivedAggregates:
    def test_solver_calls_and_wall_seconds(self):
        profile = QueryProfile.from_trace(sharded_trace())
        assert profile.solver_calls == 8.0
        assert profile.wall_seconds == 10.0

    def test_shard_skew_is_max_over_mean(self):
        profile = QueryProfile.from_trace(sharded_trace())
        # Shard durations 4, 2, 2 -> mean 8/3, skew 4/(8/3) = 1.5.
        assert sorted(profile.shard_times()) == [2.0, 2.0, 4.0]
        assert profile.shard_skew() == pytest.approx(1.5)

    def test_no_shards_means_no_skew(self):
        trace = make_trace([Span("1", None, "query", 0.0, 1.0)])
        profile = QueryProfile.from_trace(trace)
        assert profile.shard_times() == []
        assert profile.shard_skew() is None

    def test_render_includes_skew_and_totals(self):
        rendered = QueryProfile.from_trace(sharded_trace()).render()
        assert "solver calls 8" in rendered
        assert "shard-time skew 1.50x (max/mean)" in rendered
        assert "shard=1" in rendered
        assert "100.0%" in rendered


class TestJsonRoundTrip:
    def test_to_dict_schema_and_fields(self):
        payload = QueryProfile.from_trace(sharded_trace()).to_dict()
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["solver_calls"] == 8.0
        assert payload["shard_count"] == 3
        assert payload["shard_skew"] == pytest.approx(1.5)
        assert payload["tree"]["name"] == "query"

    def test_export_json_round_trips(self, tmp_path):
        profile = QueryProfile.from_trace(sharded_trace())
        path = tmp_path / "profile.json"
        payload = profile.export_json(path)
        assert json.loads(path.read_text()) == json.loads(payload)
        restored = QueryProfile.from_json(payload)
        assert restored.trace_id == profile.trace_id
        assert restored.solver_calls == profile.solver_calls
        assert restored.shard_skew() == pytest.approx(profile.shard_skew())
        assert restored.root.to_dict() == profile.root.to_dict()

    def test_from_dict_rejects_unknown_schema(self):
        with pytest.raises(ValueError, match="unsupported profile schema"):
            QueryProfile.from_dict({"schema": "bogus/9", "tree": {}})

    def test_node_round_trip(self):
        node = ProfileNode(name="x", span_id="1", start=0.0, duration=1.0,
                           attributes={"shard": 2},
                           children=[ProfileNode("y", "2", 0.1, 0.5)])
        assert ProfileNode.from_dict(node.to_dict()) == node


class TestServiceSurface:
    def test_analyze_profile_true_attaches_profile(self, registry):
        with ContingencyService() as service:
            service.register("s", chain_pcset(4))
            report = service.analyze("s", ContingencyQuery.count(),
                                     profile=True)
            assert report.profile is not None
            assert report.profile.wall_seconds > 0
            assert report.profile.solver_calls > 0
            assert report.profile.root.name == "query"
            assert "report_cache=miss" in report.profile.render()

    def test_cached_report_is_never_mutated(self, registry):
        with ContingencyService() as service:
            service.register("s", chain_pcset(4))
            profiled = service.analyze("s", ContingencyQuery.count(),
                                       profile=True)
            plain = service.analyze("s", ContingencyQuery.count())
            assert profiled.profile is not None
            assert plain.profile is None  # the cache keeps the lean report
            assert (plain.lower, plain.upper) == \
                (profiled.lower, profiled.upper)

    def test_profiled_cache_hit_shows_hit_verdict(self, registry):
        with ContingencyService() as service:
            service.register("s", chain_pcset(4))
            service.analyze("s", ContingencyQuery.count())
            warm = service.analyze("s", ContingencyQuery.count(),
                                   profile=True)
            assert "report_cache=hit" in warm.profile.render()

    def test_service_counters_publish_into_registry(self, registry):
        with ContingencyService() as service:
            service.register("s", chain_pcset(4))
            service.analyze("s", ContingencyQuery.count())
            service.execute_batch("s", [ContingencyQuery.count(),
                                        ContingencyQuery.sum("v")])
        snapshot = registry.snapshot()["counters"]
        assert snapshot["service.queries_answered"] == 3.0
        assert snapshot["service.batches_executed"] == 1.0

    def test_admission_counters_publish_into_registry(self, registry):
        from repro.service.admission import AdmissionPolicy

        with ContingencyService(
                admission=AdmissionPolicy(max_query_cost=1e9)) as service:
            service.register("s", chain_pcset(4))
            service.analyze("s", ContingencyQuery.count())
        counters = registry.snapshot()["counters"]
        assert counters["admission.priced"] == 1.0
        assert counters["admission.admitted"] == 1.0
        assert counters["admission.units_admitted"] > 0.0
