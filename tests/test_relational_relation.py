"""Unit tests for repro.relational.relation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SchemaError, TypeMismatchError
from repro.relational.expressions import Comparison, ComparisonOperator
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


@pytest.fixture
def schema() -> Schema:
    return Schema.from_pairs([("x", ColumnType.FLOAT), ("k", ColumnType.INT),
                              ("tag", ColumnType.STRING)])


@pytest.fixture
def relation(schema: Schema) -> Relation:
    return Relation(schema, {
        "x": [1.0, 2.0, 3.0, 4.0],
        "k": [10, 20, 30, 40],
        "tag": ["a", "b", "a", "c"],
    }, name="t")


class TestConstruction:
    def test_basic_properties(self, relation: Relation):
        assert relation.num_rows == 4
        assert len(relation) == 4
        assert relation.name == "t"
        assert "rows=4" in repr(relation)

    def test_missing_column_rejected(self, schema: Schema):
        with pytest.raises(SchemaError, match="missing columns"):
            Relation(schema, {"x": [1.0], "k": [1]})

    def test_extra_column_rejected(self, schema: Schema):
        with pytest.raises(SchemaError, match="not declared"):
            Relation(schema, {"x": [1.0], "k": [1], "tag": ["a"], "zzz": [0]})

    def test_ragged_columns_rejected(self, schema: Schema):
        with pytest.raises(SchemaError, match="length"):
            Relation(schema, {"x": [1.0, 2.0], "k": [1], "tag": ["a", "b"]})

    def test_from_rows_and_to_rows_roundtrip(self, schema: Schema):
        rows = [(1.5, 3, "u"), (2.5, 4, "v")]
        relation = Relation.from_rows(schema, rows)
        assert relation.to_rows() == [(1.5, 3, "u"), (2.5, 4, "v")]

    def test_from_rows_wrong_width(self, schema: Schema):
        with pytest.raises(SchemaError):
            Relation.from_rows(schema, [(1.0, 2)])

    def test_from_dicts(self, schema: Schema):
        relation = Relation.from_dicts(schema, [{"x": 1.0, "k": 2, "tag": "z"}])
        assert relation.row(0) == {"x": 1.0, "k": 2, "tag": "z"}

    def test_empty(self, schema: Schema):
        empty = Relation.empty(schema)
        assert empty.num_rows == 0


class TestAccessors:
    def test_column(self, relation: Relation):
        assert relation.column("x").tolist() == [1.0, 2.0, 3.0, 4.0]

    def test_row_bounds(self, relation: Relation):
        with pytest.raises(IndexError):
            relation.row(4)

    def test_iter_rows(self, relation: Relation):
        rows = list(relation.iter_rows())
        assert len(rows) == 4
        assert rows[1]["tag"] == "b"

    def test_rename_shares_columns(self, relation: Relation):
        renamed = relation.rename("other")
        assert renamed.name == "other"
        assert renamed.num_rows == relation.num_rows
        assert renamed.column("x") is relation.column("x")


class TestOperations:
    def test_filter_with_mask(self, relation: Relation):
        mask = np.array([True, False, True, False])
        filtered = relation.filter(mask)
        assert filtered.column("k").tolist() == [10, 30]

    def test_filter_with_expression(self, relation: Relation):
        expr = Comparison("x", ComparisonOperator.GT, 2.0)
        assert relation.filter(expr).num_rows == 2

    def test_filter_bad_mask_shape(self, relation: Relation):
        with pytest.raises(TypeMismatchError):
            relation.filter(np.array([True, False]))

    def test_filter_bad_condition_type(self, relation: Relation):
        with pytest.raises(TypeMismatchError):
            relation.filter("not a condition")

    def test_take_and_head(self, relation: Relation):
        assert relation.take([3, 0]).column("k").tolist() == [40, 10]
        assert relation.head(2).num_rows == 2
        assert relation.head(100).num_rows == 4

    def test_project(self, relation: Relation):
        projected = relation.project(["tag", "x"])
        assert projected.schema.names == ("tag", "x")
        assert projected.num_rows == 4

    def test_with_column_new_and_replace(self, relation: Relation):
        extended = relation.with_column("y", ColumnType.FLOAT, [0.0, 1.0, 2.0, 3.0])
        assert "y" in extended.schema
        replaced = extended.with_column("y", ColumnType.FLOAT, [9.0, 9.0, 9.0, 9.0])
        assert replaced.column("y").tolist() == [9.0] * 4

    def test_concat(self, relation: Relation):
        combined = relation.concat(relation)
        assert combined.num_rows == 8

    def test_concat_schema_mismatch(self, relation: Relation):
        other_schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        other = Relation(other_schema, {"x": [1.0]})
        with pytest.raises(SchemaError):
            relation.concat(other)

    def test_sample_without_replacement(self, relation: Relation):
        sample = relation.sample(2, rng=np.random.default_rng(0))
        assert sample.num_rows == 2
        oversized = relation.sample(10, rng=np.random.default_rng(0))
        assert oversized.num_rows == 4

    def test_sample_empty_relation(self, schema: Schema):
        empty = Relation.empty(schema)
        assert empty.sample(3).num_rows == 0

    def test_shuffle_preserves_multiset(self, relation: Relation):
        shuffled = relation.shuffle(rng=np.random.default_rng(1))
        assert sorted(shuffled.column("k").tolist()) == [10, 20, 30, 40]

    def test_sort_by(self, relation: Relation):
        descending = relation.sort_by("x", descending=True)
        assert descending.column("x").tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_split_by_mask(self, relation: Relation):
        matching, rest = relation.split_by_mask(np.array([True, True, False, False]))
        assert matching.num_rows == 2
        assert rest.num_rows == 2

    def test_group_by(self, relation: Relation):
        groups = relation.group_by(["tag"])
        assert set(groups) == {("a",), ("b",), ("c",)}
        assert groups[("a",)].num_rows == 2


class TestStatistics:
    def test_min_max_sum_mean(self, relation: Relation):
        assert relation.column_min("x") == 1.0
        assert relation.column_max("x") == 4.0
        assert relation.column_sum("x") == 10.0
        assert relation.column_mean("x") == 2.5
        assert relation.column_range("k") == (10.0, 40.0)

    def test_empty_statistics_raise(self, schema: Schema):
        empty = Relation.empty(schema)
        assert empty.column_sum("x") == 0.0
        with pytest.raises(ValueError):
            empty.column_min("x")
        with pytest.raises(ValueError):
            empty.column_mean("x")

    def test_non_numeric_statistics_rejected(self, relation: Relation):
        with pytest.raises(TypeMismatchError):
            relation.column_min("tag")

    def test_distinct_and_value_counts(self, relation: Relation):
        assert relation.distinct_values("tag").tolist() == ["a", "b", "c"]
        assert relation.value_counts("tag") == {"a": 2, "b": 1, "c": 1}

    def test_describe(self, relation: Relation):
        summary = relation.describe()
        assert summary["x"]["count"] == 4.0
        assert "tag" not in summary
