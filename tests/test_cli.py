"""Tests for the command-line interface and the GROUP BY analyzer support."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.core.bounds import BoundOptions
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.io import save_pcset
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import QueryError
from repro.relational.csvio import write_csv
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.solvers.sat import AttributeDomain


@pytest.fixture
def constraint_text_file(tmp_path):
    path = tmp_path / "constraints.txt"
    path.write_text(
        "# outage window\n"
        "11 <= utc <= 12 => 0.99 <= price <= 129.99, (50, 100)\n"
        "12 <= utc <= 13 => 0.99 <= price <= 149.99, (50, 100)\n")
    return path


@pytest.fixture
def constraint_json_file(tmp_path):
    pcset = PredicateConstraintSet([
        PredicateConstraint(Predicate.range("utc", 11, 13),
                            ValueConstraint({"price": (0.0, 100.0)}),
                            FrequencyConstraint(0, 10), name="window"),
    ])
    return save_pcset(pcset, tmp_path / "constraints.json")


class TestCliParsing:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "figure3" in output and "table2" in output

    def test_run_rejects_unknown_artifact(self):
        with pytest.raises(SystemExit):
            main(["run", "figure99"])


class TestCliRun:
    def test_run_figure1_with_overrides(self, capsys):
        assert main(["run", "figure1", "--num-rows", "1500"]) == 0
        output = capsys.readouterr().out
        assert "Figure 1" in output
        assert "relative_error" in output

    def test_run_figure7_ignores_inapplicable_flag(self, capsys):
        assert main(["run", "figure7", "--num-rows", "800",
                     "--num-constraints", "6", "--num-queries", "5"]) == 0
        captured = capsys.readouterr()
        assert "Figure 7" in captured.out
        assert "does not take" in captured.err


class TestCliBound:
    def test_bound_with_text_constraints(self, capsys, constraint_text_file):
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--no-closure-check"])
        assert code == 0
        output = capsys.readouterr().out
        assert "result range" in output
        assert "27998.0" in output

    def test_bound_with_json_constraints_and_where(self, capsys, constraint_json_file):
        code = main(["bound", "--constraints", str(constraint_json_file),
                     "--aggregate", "count", "--where", "11 <= utc <= 12",
                     "--no-closure-check"])
        assert code == 0
        assert "COUNT(*)" in capsys.readouterr().out

    def test_bound_with_observed_csv(self, capsys, tmp_path, constraint_text_file):
        schema = Schema.from_pairs([("utc", ColumnType.FLOAT),
                                    ("price", ColumnType.FLOAT)])
        observed = Relation(schema, {"utc": [10.0, 10.5], "price": [5.0, 6.0]})
        observed_path = write_csv(observed, tmp_path / "observed.csv")
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--observed", str(observed_path), "--no-closure-check"])
        assert code == 0
        output = capsys.readouterr().out
        assert "observed rows   : 2" in output

    def test_bound_missing_constraint_file(self, capsys):
        code = main(["bound", "--constraints", "/nonexistent/file.json",
                     "--aggregate", "count"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    @pytest.fixture
    def disjoint_constraint_file(self, tmp_path):
        path = tmp_path / "disjoint.txt"
        path.write_text(
            "0 <= utc <= 1 => 1.0 <= price <= 10.0, (2, 5)\n"
            "2 <= utc <= 3 => 1.0 <= price <= 20.0, (2, 5)\n"
            "4 <= utc <= 5 => 1.0 <= price <= 30.0, (2, 5)\n"
            "6 <= utc <= 7 => 1.0 <= price <= 40.0, (2, 5)\n")
        return path

    def test_bound_workers_reports_shared_pool(self, capsys,
                                               disjoint_constraint_file):
        code = main(["bound", "--constraints", str(disjoint_constraint_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--workers", "2", "--parallel-mode", "thread",
                     "--no-closure-check"])
        assert code == 0
        output = capsys.readouterr().out
        assert "shard(s) over 2 worker(s) on the shared thread pool" in output
        assert "merged shard solves" in output

    def test_bound_workers_avg_uses_cross_shard_search(self, capsys,
                                                       disjoint_constraint_file):
        code = main(["bound", "--constraints", str(disjoint_constraint_file),
                     "--aggregate", "avg", "--attribute", "price",
                     "--workers", "2", "--no-closure-check"])
        assert code == 0
        output = capsys.readouterr().out
        assert "cross-shard binary search" in output
        assert "result range" in output

    def test_bound_workers_match_serial_ranges(self, capsys,
                                               disjoint_constraint_file):
        for aggregate in ("sum", "avg"):
            assert main(["bound", "--constraints",
                         str(disjoint_constraint_file),
                         "--aggregate", aggregate, "--attribute", "price",
                         "--no-closure-check"]) == 0
            serial_output = capsys.readouterr().out
            assert main(["bound", "--constraints",
                         str(disjoint_constraint_file),
                         "--aggregate", aggregate, "--attribute", "price",
                         "--workers", "3", "--no-closure-check"]) == 0
            parallel_output = capsys.readouterr().out
            serial_range = [line for line in serial_output.splitlines()
                            if line.startswith("result range")]
            parallel_range = [line for line in parallel_output.splitlines()
                              if line.startswith("result range")]
            assert serial_range == parallel_range


class TestGroupByAnalysis:
    def build_analyzer(self) -> PCAnalyzer:
        chicago = PredicateConstraint(
            Predicate.equals("branch", "Chicago"),
            ValueConstraint({"price": (0.0, 150.0)}),
            FrequencyConstraint(0, 5), name="chicago")
        new_york = PredicateConstraint(
            Predicate.equals("branch", "New York"),
            ValueConstraint({"price": (0.0, 100.0)}),
            FrequencyConstraint(0, 10), name="new-york")
        pcset = PredicateConstraintSet(
            [chicago, new_york],
            domains={"branch": AttributeDomain.categorical(["Chicago", "New York"])})
        return PCAnalyzer(pcset, options=BoundOptions(check_closure=False))

    def test_group_values_from_domain(self):
        analyzer = self.build_analyzer()
        reports = analyzer.analyze_group_by(ContingencyQuery.sum("price"), "branch")
        assert set(reports) == {"Chicago", "New York"}
        assert reports["Chicago"].upper == pytest.approx(5 * 150.0)
        assert reports["New York"].upper == pytest.approx(10 * 100.0)

    def test_explicit_groups(self):
        analyzer = self.build_analyzer()
        reports = analyzer.analyze_group_by(ContingencyQuery.count(), "branch",
                                            groups=["Chicago"])
        assert list(reports) == ["Chicago"]
        assert reports["Chicago"].upper == pytest.approx(5.0)

    def test_group_by_without_domain_or_observed_raises(self):
        pcset = PredicateConstraintSet([
            PredicateConstraint(Predicate.range("x", 0, 1), ValueConstraint(),
                                FrequencyConstraint(0, 1), name="a")])
        analyzer = PCAnalyzer(pcset, options=BoundOptions(check_closure=False))
        with pytest.raises(QueryError):
            analyzer.analyze_group_by(ContingencyQuery.count(), "x")

    def test_group_by_numeric_groups_from_observed(self):
        schema = Schema.from_pairs([("device", ColumnType.INT),
                                    ("value", ColumnType.FLOAT)])
        observed = Relation(schema, {"device": [1, 1, 2], "value": [5.0, 6.0, 7.0]})
        pcset = PredicateConstraintSet([
            PredicateConstraint(Predicate.range("device", 1, 2),
                                ValueConstraint({"value": (0.0, 10.0)}),
                                FrequencyConstraint(0, 4), name="missing-devices")])
        analyzer = PCAnalyzer(pcset, observed=observed,
                              options=BoundOptions(check_closure=False))
        reports = analyzer.analyze_group_by(ContingencyQuery.sum("value"), "device")
        assert set(reports) == {1, 2}
        assert reports[1].observed_value == pytest.approx(11.0)
        assert reports[1].upper == pytest.approx(11.0 + 4 * 10.0)


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.txt"
    path.write_text(
        "# dashboard batch\n"
        "count\n"
        "sum price\n"
        "sum price WHERE 11 <= utc <= 13\n"
        "max price WHERE 11 <= utc <= 13\n"
        "count WHERE 11 <= utc <= 12\n")
    return path


class TestCliSolverOptions:
    def test_bound_with_solver_flags(self, capsys, constraint_text_file):
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--no-closure-check", "--backend", "branch-and-bound",
                     "--strategy", "dfs", "--early-stop-depth", "1"])
        assert code == 0
        output = capsys.readouterr().out
        assert "strategy dfs" in output and "branch-and-bound" in output

    def test_bound_accepts_registered_custom_backend(self, capsys,
                                                     constraint_text_file):
        from repro.solvers.registry import register_backend, resolve_backend

        register_backend("cli-test-backend",
                         lambda model, time_limit=None:
                         resolve_backend("scipy")(model, time_limit),
                         replace=True)
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "count", "--no-closure-check",
                     "--backend", "cli-test-backend"])
        assert code == 0
        assert "cli-test-backend" in capsys.readouterr().out

    def test_bound_rejects_unknown_backend_listing_names(self, capsys,
                                                         constraint_text_file):
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "count", "--no-closure-check",
                     "--backend", "simplex-of-doom"])
        assert code == 2
        err = capsys.readouterr().err
        assert "simplex-of-doom" in err and "scipy" in err

    def test_serve_batch_with_cell_budget(self, capsys, constraint_text_file,
                                          query_file):
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--cell-budget", "64"])
        assert code == 0
        assert "batch round 1" in capsys.readouterr().out

    def test_bound_rejects_bad_depth(self, capsys, constraint_text_file):
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "count", "--no-closure-check",
                     "--early-stop-depth", "0"])
        assert code == 2


class TestCliServeBatch:
    def test_serve_batch_executes_and_reports(self, capsys, constraint_text_file,
                                              query_file):
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--workers", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "session         : constraints v1" in output
        assert "batch round 1" in output
        assert "SUM(price)" in output
        assert "decomposition cache" in output

    def test_serve_batch_repeat_hits_report_cache(self, capsys,
                                                  constraint_text_file,
                                                  query_file):
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--repeat", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "batch round 2" in output
        # Round two answers every query from the report cache: no region
        # groups are executed at all.
        assert "5 queries in 0 region group(s)" in output

    def test_serve_batch_missing_query_file(self, capsys, constraint_text_file):
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", "/nonexistent/queries.txt"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_batch_rejects_bad_query_line(self, capsys,
                                                constraint_text_file, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("sum price extra tokens\n")
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", str(bad)])
        assert code == 2
        assert "cannot parse query line" in capsys.readouterr().err

    def test_serve_batch_rejects_zero_repeat(self, capsys, constraint_text_file,
                                             query_file):
        code = main(["serve-batch", "--constraints", str(constraint_text_file),
                     "--queries", str(query_file), "--repeat", "0"])
        assert code == 2


class TestCliSessions:
    def test_sessions_lists_registrations(self, capsys, constraint_text_file,
                                          constraint_json_file):
        code = main(["sessions", str(constraint_text_file),
                     str(constraint_json_file)])
        assert code == 0
        output = capsys.readouterr().out
        assert "fingerprint" in output
        assert "constraints" in output  # the .txt file's stem
        # Both files registered, one line each plus the header.
        assert len(output.strip().splitlines()) == 3

    def test_sessions_same_file_twice_is_one_version(self, capsys,
                                                     constraint_text_file):
        code = main(["sessions", str(constraint_text_file),
                     str(constraint_text_file)])
        assert code == 0
        output = capsys.readouterr().out
        assert len(output.strip().splitlines()) == 2  # header + one session


class TestCliShardingAndAdmission:
    @pytest.fixture
    def chained_constraint_file(self, tmp_path):
        """Overlapping windows — one overlap component (unshardable by
        constraint components), the region splitter's target regime."""
        path = tmp_path / "chained.txt"
        path.write_text(
            "0 <= utc <= 2 => 1.0 <= price <= 10.0, (0, 5)\n"
            "1 <= utc <= 3 => 1.0 <= price <= 20.0, (0, 5)\n"
            "2 <= utc <= 4 => 1.0 <= price <= 30.0, (0, 5)\n"
            "3 <= utc <= 5 => 1.0 <= price <= 40.0, (0, 5)\n"
            "4 <= utc <= 6 => 1.0 <= price <= 50.0, (0, 5)\n")
        return path

    def test_bound_region_strategy_shards_one_component_set(
            self, capsys, chained_constraint_file):
        code = main(["bound", "--constraints", str(chained_constraint_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--workers", "2", "--shard-strategy", "region",
                     "--no-closure-check"])
        assert code == 0
        output = capsys.readouterr().out
        assert "region strategy" in output
        assert "region-split cell enumeration" in output

    def test_bound_region_matches_serial_range(self, capsys,
                                               chained_constraint_file):
        def range_line(arguments):
            assert main(arguments) == 0
            return [line for line in capsys.readouterr().out.splitlines()
                    if line.startswith("result range")]

        serial = range_line(["bound", "--constraints",
                             str(chained_constraint_file),
                             "--aggregate", "sum", "--attribute", "price",
                             "--no-closure-check"])
        region = range_line(["bound", "--constraints",
                             str(chained_constraint_file),
                             "--aggregate", "sum", "--attribute", "price",
                             "--workers", "2", "--shard-strategy", "region",
                             "--no-closure-check"])
        assert serial == region

    def test_bound_component_strategy_reports_unsplittable(
            self, capsys, chained_constraint_file):
        code = main(["bound", "--constraints", str(chained_constraint_file),
                     "--aggregate", "count",
                     "--workers", "2", "--shard-strategy", "component",
                     "--no-closure-check"])
        assert code == 0
        assert "unsplittable; solved serially" in capsys.readouterr().out

    def test_serve_batch_max_cost_rejects_before_solving(
            self, capsys, chained_constraint_file, query_file):
        code = main(["serve-batch", "--constraints",
                     str(chained_constraint_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--max-cost", "0.5"])
        assert code == 2
        captured = capsys.readouterr()
        assert "admission       : per-query budget 0.5" in captured.out
        assert "rejected" in captured.err and "budget" in captured.err

    def test_serve_batch_max_cost_admits_affordable_batches(
            self, capsys, chained_constraint_file, query_file):
        code = main(["serve-batch", "--constraints",
                     str(chained_constraint_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--max-cost", "1000000"])
        assert code == 0
        output = capsys.readouterr().out
        assert "batch round 1" in output
        assert "admission control" in output

    def test_serve_batch_rejects_non_positive_max_cost(
            self, capsys, chained_constraint_file, query_file):
        code = main(["serve-batch", "--constraints",
                     str(chained_constraint_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--max-cost", "0"])
        assert code == 2
        assert "--max-cost" in capsys.readouterr().err


class TestCliObservability:
    def test_stats_empty_registry_renders_cleanly(self, capsys):
        from repro.obs.metrics import MetricsRegistry, set_registry

        previous = set_registry(MetricsRegistry())
        try:
            assert main(["stats"]) == 0
            assert "(no metrics recorded)" in capsys.readouterr().out
        finally:
            set_registry(previous)

    def test_stats_json_snapshot(self, capsys):
        import json as _json

        from repro.obs.metrics import MetricsRegistry, set_registry

        registry = MetricsRegistry()
        registry.counter("demo.events").inc(4)
        previous = set_registry(registry)
        try:
            assert main(["stats", "--json"]) == 0
            payload = _json.loads(capsys.readouterr().out)
            assert payload["counters"]["demo.events"] == 4.0
        finally:
            set_registry(previous)

    def test_bound_profile_prints_span_tree(self, capsys, constraint_text_file):
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "sum", "--attribute", "price",
                     "--no-closure-check", "--profile"])
        assert code == 0
        output = capsys.readouterr().out
        assert "profile (EXPLAIN ANALYZE):" in output
        assert "solve.serial" in output
        assert "solver calls" in output

    def test_bound_profile_json_export(self, capsys, tmp_path,
                                       constraint_text_file):
        import json as _json

        target = tmp_path / "profile.json"
        code = main(["bound", "--constraints", str(constraint_text_file),
                     "--aggregate", "count", "--no-closure-check",
                     "--profile-json", str(target)])
        assert code == 0
        payload = _json.loads(target.read_text())
        assert payload["schema"] == "repro-query-profile/1"
        assert payload["tree"]["name"] == "query"
        # --profile-json alone exports without printing the tree.
        assert "EXPLAIN ANALYZE" not in capsys.readouterr().out

    def test_serve_batch_profile_covers_final_round(self, capsys,
                                                    constraint_text_file,
                                                    query_file):
        code = main(["serve-batch", "--constraints",
                     str(constraint_text_file),
                     "--queries", str(query_file), "--no-closure-check",
                     "--repeat", "2", "--profile"])
        assert code == 0
        output = capsys.readouterr().out
        assert "batch round 2" in output
        assert "profile (EXPLAIN ANALYZE):" in output

    def test_bench_report_merges_trajectory_files(self, capsys, tmp_path,
                                                  monkeypatch):
        import json as _json

        (tmp_path / "BENCH_PR1.json").write_text(_json.dumps({
            "schema": "repro-bench-trajectory/1",
            "recorded_at": "2026-01-01T00:00:00+0000",
            "machine": {"cpu_count": 4},
            "records": [{"benchmark": "test_bench_demo",
                         "warm_seconds": 0.5, "speedup": 2.0}],
        }))
        code = main(["bench-report", "--directory", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "PR1" in output
        assert "test_bench_demo" in output
        assert "speedup=2" in output

    def test_bench_report_empty_directory(self, capsys, tmp_path):
        code = main(["bench-report", "--directory", str(tmp_path)])
        assert code == 0
        assert "no BENCH_PR*.json" in capsys.readouterr().out
