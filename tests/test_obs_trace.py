"""Span tracing: disabled fast path, span trees, cross-process re-parenting."""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.obs.trace import Span, Trace, Tracer, _NOOP, get_tracer
from repro.parallel.pool import WorkerPool
from repro.relational.aggregates import AggregateFunction


def chain_pcset(count: int = 6) -> PredicateConstraintSet:
    """Overlapping windows chained along ``t`` — one constraint component."""
    return PredicateConstraintSet([
        PredicateConstraint(Predicate.range("t", float(i), i + 1.5),
                            ValueConstraint({"v": (float(i), float(i + 5))}),
                            FrequencyConstraint(1 if i % 2 else 0, 10 + i),
                            name=f"c{i}")
        for i in range(count)])


def region_options(**overrides) -> BoundOptions:
    return BoundOptions(check_closure=False, solve_workers=3,
                        shard_strategy="region", **overrides)


# --------------------------------------------------------------------- #
# Disabled fast path
# --------------------------------------------------------------------- #
class TestDisabledPath:
    def test_span_returns_shared_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is _NOOP
        assert tracer.span("anything") is tracer.span("other")

    def test_annotate_and_add_are_noops_when_idle(self):
        tracer = Tracer(enabled=False)
        tracer.annotate(key="value")  # must not raise
        tracer.add("count", 5)
        assert tracer.current_trace is None
        assert tracer.current_span is None

    def test_unforced_trace_records_nothing_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query") as handle:
            assert handle is None
            with tracer.span("child"):
                pass
        assert tracer.current_trace is None

    def test_profile_off_has_no_per_call_allocation(self):
        """The zero-overhead contract: the disabled span path allocates no
        span, no context object, and reads no clock — it is one thread-local
        getattr plus the shared singleton.  Pin it by identity so an
        accidental per-call object creation fails loudly rather than slowly.
        """
        tracer = Tracer(enabled=False)
        contexts = {id(tracer.span("bound")) for _ in range(100)}
        assert contexts == {id(_NOOP)}

    def test_analyze_without_profile_records_no_spans(self):
        solver = PCBoundSolver(chain_pcset(4),
                               BoundOptions(check_closure=False))
        tracer = get_tracer()
        solver.bound(AggregateFunction.COUNT)
        assert tracer.current_trace is None
        assert not tracer.active


# --------------------------------------------------------------------- #
# Forced traces and span trees
# --------------------------------------------------------------------- #
class TestForcedTrace:
    def test_force_bypasses_disabled_switch(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query", force=True) as trace:
            assert isinstance(trace, Trace)
            with tracer.span("child") as span:
                tracer.annotate(cells=3)
                tracer.add("solver_calls", 2)
                tracer.add("solver_calls", 1)
        assert tracer.current_trace is None  # deactivated on exit
        names = {span.name for span in trace}
        assert names == {"query", "child"}
        child = next(span for span in trace if span.name == "child")
        assert child.attributes == {"cells": 3, "solver_calls": 3}
        assert child.parent_id == trace.root.span_id

    def test_nested_trace_joins_as_child_span(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("outer", force=True) as outer:
            with tracer.trace("inner", force=True) as inner:
                pass
        assert isinstance(outer, Trace)
        assert isinstance(inner, Span)  # degraded to a child, not a new root
        assert inner.parent_id == outer.root.span_id
        assert tracer.current_trace is None

    def test_exception_closes_spans_and_tags_error(self):
        tracer = Tracer(enabled=False)
        with pytest.raises(RuntimeError):
            with tracer.trace("query", force=True) as trace:
                with tracer.span("child"):
                    raise RuntimeError("boom")
        child = next(span for span in trace if span.name == "child")
        assert child.end is not None
        assert child.attributes["error"] == "RuntimeError"
        assert trace.root.attributes["error"] == "RuntimeError"

    def test_sampling_keeps_one_in_n(self):
        tracer = Tracer(enabled=True, sample_every=3)
        recorded = 0
        for _ in range(9):
            with tracer.trace("query") as trace:
                if trace is not None:
                    recorded += 1
        assert recorded == 3

    def test_forced_traces_bypass_sampling(self):
        tracer = Tracer(enabled=True, sample_every=1000)
        with tracer.trace("query", force=True) as trace:
            pass
        assert isinstance(trace, Trace)


# --------------------------------------------------------------------- #
# Wire round-trip (capture/adopt without a pool)
# --------------------------------------------------------------------- #
class TestWireRoundTrip:
    def test_span_tuple_round_trip(self):
        span = Span(span_id="a-1", parent_id="a-0", name="pool.solve",
                    start=1.0, end=2.5, attributes={"shard": 1})
        restored = Span.from_tuple(span.as_tuple())
        assert restored == span

    def test_capture_exports_spans_rooted_at_shipped_parent(self):
        worker_tracer = Tracer(enabled=False)
        with worker_tracer.capture("pool.solve", ("trace-1", "parent-9")) \
                as capture:
            with worker_tracer.span("inner"):
                worker_tracer.add("solver_calls", 4)
        exported = capture.export()
        assert exported is not None
        spans = [Span.from_tuple(data) for data in exported]
        roots = [span for span in spans if span.parent_id == "parent-9"]
        assert len(roots) == 1
        inner = next(span for span in spans if span.name == "inner")
        assert inner.parent_id == roots[0].span_id
        assert inner.attributes == {"solver_calls": 4}

    def test_capture_without_context_is_non_recording(self):
        worker_tracer = Tracer(enabled=False)
        with worker_tracer.capture("pool.solve", None) as capture:
            with worker_tracer.span("inner"):
                pass
        assert capture.export() is None

    def test_adopt_splices_and_returns_subtree_root(self):
        tracer = Tracer(enabled=False)
        with tracer.trace("query", force=True) as trace:
            parent_id = tracer.current_span.span_id
            wire = [("w-1", parent_id, "pool.solve", 1.0, 2.0, None),
                    ("w-2", "w-1", "milp", 1.1, 1.9, {"solver_calls": 3})]
            root = tracer.adopt(wire)
            assert root is not None
            root.attributes.setdefault("shard", 0)
        assert root.span_id == "w-1"
        assert root.attributes["shard"] == 0
        adopted_names = {span.name for span in trace}
        assert {"pool.solve", "milp"} <= adopted_names

    def test_adopt_is_noop_without_active_trace(self):
        tracer = Tracer(enabled=False)
        assert tracer.adopt([("w-1", None, "x", 0.0, 1.0, None)]) is None
        assert tracer.adopt(None) is None


# --------------------------------------------------------------------- #
# Thread-mode propagation
# --------------------------------------------------------------------- #
class TestThreadAttach:
    def test_attach_records_into_foreign_trace(self):
        import threading

        tracer = Tracer(enabled=False)
        with tracer.trace("query", force=True) as trace:
            parent_id = tracer.current_span.span_id

            def worker():
                with tracer.attach(trace, parent_id):
                    with tracer.span("pool.task"):
                        tracer.annotate(shard=7)

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        task = next(span for span in trace if span.name == "pool.task")
        assert task.parent_id == parent_id
        assert task.attributes == {"shard": 7}


# --------------------------------------------------------------------- #
# Real process-pool re-parenting
# --------------------------------------------------------------------- #
class TestProcessPoolReParenting:
    def test_sharded_solve_yields_one_tree_with_per_shard_spans(self):
        pcset = chain_pcset(6)
        tracer = get_tracer()
        with WorkerPool(max_workers=3, mode="process",
                        name="trace-test") as pool:
            solver = PCBoundSolver(pcset, region_options(), worker_pool=pool)
            with tracer.trace("query", force=True) as trace:
                solver.bound(AggregateFunction.SUM, "v")
        spans = list(trace)
        shard_spans = [span for span in spans
                       if "shard" in span.attributes]
        assert len(shard_spans) >= 2  # region split fanned out
        shard_ids = {span.attributes["shard"] for span in shard_spans}
        assert shard_ids == set(range(len(shard_spans)))
        # Worker spans carry their pid prefix — genuinely cross-process —
        # and every adopted span links back into this trace's tree.
        coordinator_prefix = f"{os.getpid():x}-"
        worker_spans = [span for span in spans
                        if not span.span_id.startswith(coordinator_prefix)]
        assert worker_spans, "no spans crossed the process boundary"
        ids = {span.span_id for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1  # one coherent tree
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids, f"dangling parent: {span}"
        # Per-shard decompose spans tally their SAT probe calls.
        decomposes = [span for span in spans if span.name == "pool.decompose"]
        assert decomposes
        assert all(span.attributes.get("solver_calls", 0) > 0
                   for span in decomposes)
        assert all(span.duration is not None and span.duration >= 0
                   for span in spans)

    def test_killed_worker_does_not_corrupt_the_trace(self):
        """SIGKILL one worker mid-service; the re-dispatched round must still
        produce a well-formed single tree (degraded is fine, corrupt is not).
        """
        from repro.obs.profile import QueryProfile

        pcset = chain_pcset(6)
        tracer = get_tracer()
        with WorkerPool(max_workers=3, mode="process",
                        name="trace-kill-test") as pool:
            solver = PCBoundSolver(pcset, region_options(), worker_pool=pool)
            baseline = solver.bound(AggregateFunction.SUM, "v")
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.1)
            fresh = PCBoundSolver(pcset, region_options(), worker_pool=pool)
            with tracer.trace("query", force=True) as trace:
                recovered = fresh.bound(AggregateFunction.SUM, "v")
        assert (recovered.lower, recovered.upper) == \
            (baseline.lower, baseline.upper)
        assert pool.statistics.worker_restarts >= 1
        # Tracer state fully unwound, trace builds into a valid profile.
        assert tracer.current_trace is None
        assert not tracer.active
        profile = QueryProfile.from_trace(trace)
        assert profile is not None
        rendered = profile.render()
        assert "query" in rendered
        roots = [span for span in trace if span.parent_id is None]
        assert len(roots) == 1
