"""Unit tests for the plan-pipeline sharding pass, region splitting above all.

The randomized harness (test_property_soundness) pins the end-to-end range
equalities; these tests pin the pass itself — strategy selection and its
preference/density gates, the region splitter's partition-attribute and
cut-point choices, sub-region coverage, the cell-union merge equalling the
serial enumeration under every knob, cache-token separation, the worker
pool's decompose fan-out, and the speculative AVG search.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.cells import CellDecomposer, DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import SolverError
from repro.plan.ir import BoundQuery, build_plan
from repro.plan.sharding import (
    ConstraintComponentSharding,
    RegionSharding,
    merge_shard_decompositions,
    select_sharding,
    shard_plan,
)
from repro.relational.aggregates import AggregateFunction


def pc(lo, hi, name, klo=0, khi=10, value_range=(0.0, 10.0)):
    return PredicateConstraint(Predicate.range("t", lo, hi),
                               ValueConstraint({"v": value_range}),
                               FrequencyConstraint(klo, khi), name=name)


def chain_pcset(count: int = 6, mandatory: bool = False
                ) -> PredicateConstraintSet:
    """``count`` overlapping windows chained along ``t`` — one component."""
    return PredicateConstraintSet([
        pc(float(i), i + 1.5, f"c{i}", klo=(1 if mandatory and i % 2 else 0),
           khi=10 + i, value_range=(float(i), float(i + 5)))
        for i in range(count)])


def disjoint_pcset(count: int = 6) -> PredicateConstraintSet:
    pcset = PredicateConstraintSet([
        pc(float(2 * i), 2 * i + 0.9, f"w{i}") for i in range(count)])
    pcset.mark_disjoint(True)
    return pcset


def plan_for(pcset, shard_strategy="auto", region=None, attribute="v"):
    aggregate = (AggregateFunction.COUNT if attribute is None
                 else AggregateFunction.SUM)
    plan = build_plan(BoundQuery(aggregate, attribute, region), pcset)
    return plan.amended(shard_strategy=shard_strategy)


# --------------------------------------------------------------------- #
# Strategy selection
# --------------------------------------------------------------------- #
class TestSelectSharding:
    def test_component_wins_when_graph_shards(self):
        for preference in ("auto", "region", "component"):
            sharded = select_sharding(plan_for(disjoint_pcset(), preference),
                                      max_shards=3)
            assert sharded.strategy == "component"
            assert sharded.is_sharded and len(sharded) == 3

    def test_one_component_under_region_preference_region_shards(self):
        sharded = select_sharding(plan_for(chain_pcset(), "region"),
                                  max_shards=3)
        assert sharded.strategy == "region"
        assert sharded.is_sharded and len(sharded) == 3

    def test_component_preference_never_region_shards(self):
        sharded = select_sharding(plan_for(chain_pcset(), "component"),
                                  max_shards=3)
        assert sharded.strategy == "component"
        assert not sharded.is_sharded

    def test_auto_gates_region_on_estimated_cells(self):
        # Two chained constraints: worst case 3 cells < the gate.
        small = select_sharding(plan_for(chain_pcset(2), "auto"), max_shards=2)
        assert not small.is_sharded
        # Six chained constraints: worst case 63 cells clears the gate.
        large = select_sharding(plan_for(chain_pcset(6), "auto"), max_shards=2)
        assert large.strategy == "region" and large.is_sharded

    def test_explicit_region_preference_skips_the_gate(self):
        sharded = select_sharding(plan_for(chain_pcset(2), "region"),
                                  max_shards=2)
        assert sharded.strategy == "region" and sharded.is_sharded

    def test_unknown_preference_rejected(self):
        with pytest.raises(SolverError):
            select_sharding(plan_for(chain_pcset(), "quantum"))

    def test_shard_plan_compat_entry_point_is_component(self):
        sharded = shard_plan(plan_for(chain_pcset(), "region"), max_shards=3)
        assert sharded.strategy == "component" and not sharded.is_sharded


# --------------------------------------------------------------------- #
# The region splitter's geometry
# --------------------------------------------------------------------- #
class TestRegionSplitter:
    def test_partition_attribute_prefers_most_constrained(self):
        mixed = PredicateConstraintSet([
            PredicateConstraint(
                Predicate.range("t", float(i), i + 1.5).with_range("u", 0, 1),
                ValueConstraint({"v": (0.0, 10.0)}),
                FrequencyConstraint(0, 10), name=f"m{i}")
            for i in range(4)])
        # Every constraint bounds both t and u, but u's midpoints collapse
        # to one value — only t qualifies.
        assert RegionSharding.partition_attribute(plan_for(mixed)) == "t"

    def test_no_partition_attribute_means_single_shard(self):
        categorical = PredicateConstraintSet([
            PredicateConstraint(Predicate.equals("city", name),
                                ValueConstraint({"v": (0.0, 1.0)}),
                                FrequencyConstraint(0, 5), name=name)
            for name in ("a", "b")])
        sharded = RegionSharding().split(plan_for(categorical, "region"),
                                         max_shards=2)
        assert not sharded.is_sharded

    def test_slices_cover_the_attribute_line(self):
        sharded = RegionSharding().split(plan_for(chain_pcset(), "region"),
                                         max_shards=3)
        bounds = [shard.bounds for shard in sharded]
        assert bounds[0][0] == float("-inf")
        assert bounds[-1][1] == float("inf")
        for left, right in zip(bounds, bounds[1:]):
            assert left[1] == right[0]  # closed slices share the cut point

    def test_sub_regions_conjoin_the_query_region(self):
        region = Predicate.range("t", 1.0, 5.0)
        sharded = RegionSharding().split(
            plan_for(chain_pcset(), "region", region=region), max_shards=2)
        assert sharded.is_sharded
        for shard in sharded:
            sub = shard.plan.query.region
            interval = sub.range_for("t")
            assert interval.low >= 1.0 and interval.high <= 5.0
            # The full constraint set rides along (cells index the parent).
            assert len(shard.pcset) == len(chain_pcset())

    def test_region_disjoint_from_slice_drops_it(self):
        # The query region sits entirely left of the upper constraints, so
        # the right slices conjoin empty and the split degrades gracefully.
        region = Predicate.range("t", 0.0, 0.5)
        sharded = RegionSharding().split(
            plan_for(chain_pcset(), "region", region=region), max_shards=3)
        assert len(sharded) <= 3

    def test_cache_tokens_distinguish_region_from_component(self):
        plan = plan_for(chain_pcset(), "region")
        region_sharded = RegionSharding().split(plan, max_shards=2)
        component_sharded = ConstraintComponentSharding().split(
            plan_for(disjoint_pcset(2), "auto"), max_shards=2)
        tokens = {shard.cache_token() for shard in region_sharded}
        tokens |= {shard.cache_token() for shard in component_sharded}
        assert len(tokens) == len(region_sharded) + len(component_sharded)

    def test_invalid_max_shards_rejected(self):
        with pytest.raises(SolverError):
            RegionSharding().split(plan_for(chain_pcset(), "region"),
                                   max_shards=0)

    def test_describe_names_strategy_and_slices(self):
        sharded = RegionSharding().split(plan_for(chain_pcset(), "region"),
                                         max_shards=2)
        text = sharded.describe()
        assert "region strategy" in text and "t in [" in text


# --------------------------------------------------------------------- #
# The cell-union merge equals the serial enumeration
# --------------------------------------------------------------------- #
class TestMergeShardDecompositions:
    @pytest.mark.parametrize("strategy", [DecompositionStrategy.DFS_REWRITE,
                                          DecompositionStrategy.DFS,
                                          DecompositionStrategy.NAIVE])
    @pytest.mark.parametrize("depth", [None, 2])
    def test_union_equals_serial_cells(self, strategy, depth):
        pcset = chain_pcset(5)
        plan = plan_for(pcset, "region").amended(strategy=strategy,
                                                 early_stop_depth=depth)
        sharded = RegionSharding().split(plan, max_shards=3)
        assert sharded.is_sharded
        serial = CellDecomposer(pcset, strategy, depth).decompose(None)
        per_shard = [CellDecomposer(shard.plan.pcset, strategy, depth)
                     .decompose(shard.plan.query.region)
                     for shard in sharded]
        merged = merge_shard_decompositions(plan, per_shard)
        assert ({cell.covering for cell in merged.cells}
                == {cell.covering for cell in serial.cells})
        assert merged.statistics.satisfiable_cells == len(serial.cells)
        assert merged.statistics.num_constraints == len(pcset)

    def test_merged_statistics_sum_the_shards_work(self):
        pcset = chain_pcset(5)
        plan = plan_for(pcset, "region")
        sharded = RegionSharding().split(plan, max_shards=3)
        per_shard = [CellDecomposer(shard.plan.pcset,
                                    DecompositionStrategy.DFS_REWRITE, None)
                     .decompose(shard.plan.query.region)
                     for shard in sharded]
        merged = merge_shard_decompositions(plan, per_shard)
        assert merged.statistics.solver_calls == sum(
            d.statistics.solver_calls for d in per_shard)

    def test_boundary_cells_deduplicate(self):
        # A constraint hugging a cut point is satisfiable on both sides;
        # the union must report it once.
        pcset = chain_pcset(4)
        plan = plan_for(pcset, "region")
        sharded = RegionSharding().split(plan, max_shards=2)
        per_shard = [CellDecomposer(shard.plan.pcset,
                                    DecompositionStrategy.DFS_REWRITE, None)
                     .decompose(shard.plan.query.region)
                     for shard in sharded]
        total = sum(len(d.cells) for d in per_shard)
        merged = merge_shard_decompositions(plan, per_shard)
        assert len(merged.cells) < total  # at least one duplicate existed
        coverings = [cell.covering for cell in merged.cells]
        assert len(coverings) == len(set(coverings))


# --------------------------------------------------------------------- #
# Solver integration: region-sharded execution is serial-identical
# --------------------------------------------------------------------- #
AGGREGATES = [(AggregateFunction.COUNT, None), (AggregateFunction.SUM, "v"),
              (AggregateFunction.MIN, "v"), (AggregateFunction.MAX, "v"),
              (AggregateFunction.AVG, "v")]


def region_options(**overrides):
    return BoundOptions(check_closure=False, solve_workers=3,
                        shard_strategy="region", **overrides)


class TestSolverIntegration:
    @pytest.mark.parametrize("mandatory", [False, True])
    def test_all_aggregates_identical_to_serial(self, mandatory):
        pcset = chain_pcset(6, mandatory=mandatory)
        serial = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        region = PCBoundSolver(pcset, region_options())
        sharded = region.sharded_plan(None, "v")
        assert sharded.strategy == "region" and len(sharded) >= 2
        for aggregate, attribute in AGGREGATES:
            expected = serial.bound(aggregate, attribute)
            actual = region.bound(aggregate, attribute)
            assert (actual.lower, actual.upper) == \
                (expected.lower, expected.upper), aggregate

    def test_region_sharded_with_query_region(self):
        pcset = chain_pcset(6)
        serial = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        region = PCBoundSolver(pcset, region_options())
        where = Predicate.range("t", 1.0, 6.0)
        for aggregate, attribute in AGGREGATES:
            expected = serial.bound(aggregate, attribute, where)
            actual = region.bound(aggregate, attribute, where)
            assert (actual.lower, actual.upper) == \
                (expected.lower, expected.upper), aggregate

    def test_region_sharded_under_early_stopping(self):
        pcset = chain_pcset(6)
        serial = PCBoundSolver(pcset, BoundOptions(check_closure=False,
                                                   early_stop_depth=2))
        region = PCBoundSolver(pcset, region_options(early_stop_depth=2))
        expected = serial.bound(AggregateFunction.COUNT)
        actual = region.bound(AggregateFunction.COUNT)
        assert (actual.lower, actual.upper) == (expected.lower, expected.upper)

    def test_decomposition_counted_once_and_memoized(self):
        region = PCBoundSolver(chain_pcset(6), region_options())
        region.bound(AggregateFunction.COUNT)
        assert region.decompositions_computed == 1
        region.bound(AggregateFunction.SUM, "v")
        region.bound(AggregateFunction.COUNT)
        assert region.decompositions_computed == 1  # warm program reused

    def test_process_pool_region_decompose_matches_serial(self):
        from repro.parallel.pool import WorkerPool

        pcset = chain_pcset(6, mandatory=True)
        serial = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        with WorkerPool(max_workers=3, mode="process",
                        name="region-test") as pool:
            solver = PCBoundSolver(pcset, region_options(), worker_pool=pool)
            before = pool.statistics.tasks_dispatched
            for aggregate, attribute in AGGREGATES:
                expected = serial.bound(aggregate, attribute)
                actual = solver.bound(aggregate, attribute)
                assert (actual.lower, actual.upper) == \
                    (expected.lower, expected.upper), aggregate
            assert pool.statistics.tasks_dispatched >= before + 2

    def test_pool_workers_do_not_recurse_into_region_fanout(self):
        """A worker-side analyzer degrades to the serial path (guard check)."""
        from repro.parallel import pool as pool_module

        solver = PCBoundSolver(chain_pcset(5), region_options())
        pool_module._IN_WORKER = True
        try:
            result = solver.bound(AggregateFunction.COUNT)
        finally:
            pool_module._IN_WORKER = False
        serial = PCBoundSolver(chain_pcset(5),
                               BoundOptions(check_closure=False))
        expected = serial.bound(AggregateFunction.COUNT)
        assert (result.lower, result.upper) == (expected.lower, expected.upper)


# --------------------------------------------------------------------- #
# Speculative AVG probing
# --------------------------------------------------------------------- #
class TestSpeculativeAvg:
    def _sharded_setup(self):
        pcset = PredicateConstraintSet([
            pc(float(2 * i), 2 * i + 0.9, f"w{i}", klo=2, khi=8,
               value_range=(float(i), float(i + 7)))
            for i in range(4)])
        pcset.mark_disjoint(True)
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        sharded = solver.sharded_plan(None, "v", max_shards=2)
        assert sharded.is_sharded and sharded.strategy == "component"
        keyed = [(solver.shard_program_key(shard, None, "v"),
                  solver.shard_program(shard, None, "v"))
                 for shard in sharded]
        program = solver.program(None, "v")
        serial = program.bound(AggregateFunction.AVG)
        active = [p for key, prog in keyed for p in prog.active_profiles]
        low = min(p.value_lower for p in active)
        high = max(p.value_upper for p in active)
        return keyed, serial, low, high

    @pytest.mark.parametrize("speculative", [False, True])
    def test_endpoints_identical_to_serial(self, speculative):
        from repro.parallel.pool import WorkerPool, sharded_avg_range

        keyed, serial, low, high = self._sharded_setup()
        with WorkerPool(max_workers=8, mode="thread", name="spec") as pool:
            lower, upper = sharded_avg_range(
                pool, keyed, 0.0, 0.0, low, high,
                tolerance=1e-6, max_iterations=64, speculative=speculative)
        assert lower == serial.lower and upper == serial.upper

    def test_speculation_halves_rounds(self):
        from repro.parallel.pool import WorkerPool, sharded_avg_range

        keyed, _, low, high = self._sharded_setup()
        rounds = {}
        for speculative in (False, True):
            with WorkerPool(max_workers=8, mode="thread",
                            name=f"spec-{speculative}") as pool:
                sharded_avg_range(pool, keyed, 0.0, 0.0, low, high,
                                  tolerance=1e-6, max_iterations=64,
                                  speculative=speculative)
                rounds[speculative] = pool.statistics.rounds
        assert rounds[True] <= rounds[False] / 2 + 1

    def test_capacity_gate(self):
        from repro.parallel.pool import WorkerPool

        with WorkerPool(max_workers=8, mode="thread", name="gate") as pool:
            assert pool.speculative_capacity(4)
            assert not pool.speculative_capacity(8)
        serial_pool = WorkerPool(max_workers=1, name="gate-serial")
        assert not serial_pool.speculative_capacity(0)
