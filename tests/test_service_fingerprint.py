"""Tests for the content-fingerprinting layer of the service."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundOptions
from repro.core.cells import DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service.fingerprint import (
    combine_fingerprints,
    decomposition_namespace,
    fingerprint_bound_options,
    fingerprint_constraint,
    fingerprint_pcset,
    fingerprint_predicate,
    fingerprint_query,
    fingerprint_relation,
)
from repro.solvers.sat import AttributeDomain


def make_constraint(low: float, high: float, max_rows: int = 10,
                    name: str = "pc") -> PredicateConstraint:
    return PredicateConstraint(
        Predicate.range("utc", low, high),
        ValueConstraint({"price": (0.0, 100.0)}),
        FrequencyConstraint(0, max_rows), name=name)


class TestPredicateFingerprints:
    def test_equal_content_equal_fingerprint(self):
        first = Predicate.range("utc", 11, 12).with_equals("branch", "Chicago")
        second = Predicate.equals("branch", "Chicago").with_range("utc", 11, 12)
        assert first == second
        assert fingerprint_predicate(first) == fingerprint_predicate(second)

    def test_different_content_different_fingerprint(self):
        assert (fingerprint_predicate(Predicate.range("utc", 11, 12))
                != fingerprint_predicate(Predicate.range("utc", 11, 13)))
        assert (fingerprint_predicate(Predicate.range("utc", 11, 12))
                != fingerprint_predicate(Predicate.range("price", 11, 12)))

    def test_infinite_endpoints_are_stable(self):
        unbounded = Predicate.range("utc", low=0.0)
        assert fingerprint_predicate(unbounded) == fingerprint_predicate(
            Predicate.range("utc", 0.0, float("inf")))

    def test_membership_order_is_canonical(self):
        first = Predicate.isin("branch", ["Chicago", "Trenton"])
        second = Predicate.isin("branch", ["Trenton", "Chicago"])
        assert fingerprint_predicate(first) == fingerprint_predicate(second)


class TestConstraintAndSetFingerprints:
    def test_name_is_excluded(self):
        assert (fingerprint_constraint(make_constraint(11, 12, name="a"))
                == fingerprint_constraint(make_constraint(11, 12, name="b")))

    def test_frequency_and_values_matter(self):
        base = make_constraint(11, 12, max_rows=10)
        assert (fingerprint_constraint(base)
                != fingerprint_constraint(make_constraint(11, 12, max_rows=11)))
        other = PredicateConstraint(base.predicate,
                                    ValueConstraint({"price": (0.0, 99.0)}),
                                    base.frequency)
        assert fingerprint_constraint(base) != fingerprint_constraint(other)

    def test_pcset_order_sensitive(self):
        first = PredicateConstraintSet([make_constraint(11, 12),
                                        make_constraint(12, 13)])
        second = PredicateConstraintSet([make_constraint(12, 13),
                                         make_constraint(11, 12)])
        assert fingerprint_pcset(first) != fingerprint_pcset(second)

    def test_pcset_domains_matter(self):
        constraints = [make_constraint(11, 12)]
        plain = PredicateConstraintSet(constraints)
        domained = PredicateConstraintSet(
            constraints,
            {"branch": AttributeDomain.categorical(["Chicago", "Trenton"])})
        assert fingerprint_pcset(plain) != fingerprint_pcset(domained)

    def test_pcset_reproducible_across_instances(self):
        assert (fingerprint_pcset(PredicateConstraintSet([make_constraint(1, 2)]))
                == fingerprint_pcset(PredicateConstraintSet([make_constraint(1, 2)])))


class TestQueryAndOptionsFingerprints:
    def test_query_components_matter(self):
        region = Predicate.range("utc", 11, 13)
        base = fingerprint_query(ContingencyQuery.sum("price", region))
        assert base == fingerprint_query(ContingencyQuery.sum("price", region))
        assert base != fingerprint_query(ContingencyQuery.avg("price", region))
        assert base != fingerprint_query(ContingencyQuery.sum("utc", region))
        assert base != fingerprint_query(ContingencyQuery.sum("price"))

    def test_options_fingerprint(self):
        assert (fingerprint_bound_options(BoundOptions())
                == fingerprint_bound_options(BoundOptions()))
        assert (fingerprint_bound_options(BoundOptions())
                != fingerprint_bound_options(BoundOptions(early_stop_depth=2)))

    def test_decomposition_namespace_ignores_post_decomposition_knobs(self):
        pcset = PredicateConstraintSet([make_constraint(11, 12)])
        base = decomposition_namespace(pcset, BoundOptions())
        # The closure check and AVG tolerance act after decomposition.
        assert base == decomposition_namespace(
            pcset, BoundOptions(check_closure=False, avg_tolerance=1e-3))
        # Strategy and early stopping change the decomposition itself.
        assert base != decomposition_namespace(
            pcset, BoundOptions(strategy=DecompositionStrategy.NAIVE))
        assert base != decomposition_namespace(
            pcset, BoundOptions(early_stop_depth=1))


class TestRelationFingerprint:
    def test_content_changes_fingerprint(self):
        schema = Schema.from_pairs([("utc", ColumnType.FLOAT),
                                    ("price", ColumnType.FLOAT)])
        first = Relation.from_rows(schema, [(1.0, 2.0), (3.0, 4.0)], name="r")
        same = Relation.from_rows(schema, [(1.0, 2.0), (3.0, 4.0)], name="r")
        bigger = Relation.from_rows(schema, [(1.0, 2.0), (3.0, 9.0)], name="r")
        assert fingerprint_relation(first) == fingerprint_relation(same)
        assert fingerprint_relation(first) != fingerprint_relation(bigger)

    def test_fingerprint_is_exact_not_a_summary(self):
        """Relations sharing count/min/max/sum must still fingerprint apart.

        The fingerprint is used as session identity: a collision here would
        make re-registration silently keep serving stale reports.
        """
        schema = Schema.from_pairs([("price", ColumnType.FLOAT)])
        first = Relation.from_rows(schema, [(0.0,), (3.0,), (3.0,), (6.0,)])
        second = Relation.from_rows(schema, [(0.0,), (2.0,), (4.0,), (6.0,)])
        assert fingerprint_relation(first) != fingerprint_relation(second)

    def test_string_columns_participate(self):
        schema = Schema.from_pairs([("branch", ColumnType.STRING)])
        first = Relation.from_rows(schema, [("Chicago",), ("Trenton",)])
        second = Relation.from_rows(schema, [("Chicago",), ("Newark",)])
        assert fingerprint_relation(first) != fingerprint_relation(second)

    def test_name_is_excluded(self):
        schema = Schema.from_pairs([("price", ColumnType.FLOAT)])
        first = Relation.from_rows(schema, [(1.0,)], name="a")
        second = Relation.from_rows(schema, [(1.0,)], name="b")
        assert fingerprint_relation(first) == fingerprint_relation(second)

    def test_combine_is_order_sensitive(self):
        assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
        assert combine_fingerprints("a", "b") == combine_fingerprints("a", "b")
