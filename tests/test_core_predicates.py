"""Unit tests for repro.core.predicates."""

from __future__ import annotations

import pytest

from repro.core.predicates import AttributeMembership, AttributeRange, Predicate
from repro.exceptions import PredicateError
from repro.relational.expressions import TrueExpression
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


class TestAttributeRange:
    def test_validation(self):
        with pytest.raises(PredicateError):
            AttributeRange("x", 5, 1)

    def test_contains_and_interval(self):
        constraint = AttributeRange("x", 1, 5)
        assert constraint.contains(3)
        assert not constraint.contains(6)
        assert constraint.to_interval().low == 1

    def test_intersect(self):
        merged = AttributeRange("x", 0, 10).intersect(AttributeRange("x", 5, 20))
        assert (merged.low, merged.high) == (5, 10)
        with pytest.raises(PredicateError):
            AttributeRange("x", 0, 1).intersect(AttributeRange("y", 0, 1))
        with pytest.raises(PredicateError):
            AttributeRange("x", 0, 1).intersect(AttributeRange("x", 2, 3))


class TestAttributeMembership:
    def test_validation(self):
        with pytest.raises(PredicateError):
            AttributeMembership.of("tag", [])

    def test_intersect(self):
        merged = AttributeMembership.of("tag", ["a", "b"]).intersect(
            AttributeMembership.of("tag", ["b", "c"]))
        assert merged.values == frozenset({"b"})
        with pytest.raises(PredicateError):
            AttributeMembership.of("tag", ["a"]).intersect(
                AttributeMembership.of("tag", ["b"]))


class TestPredicateConstruction:
    def test_true_predicate(self):
        predicate = Predicate.true()
        assert predicate.is_tautology()
        assert predicate.matches_row({"anything": 1})
        assert isinstance(predicate.to_expression(), TrueExpression)
        assert "TRUE" in repr(predicate)

    def test_range_and_equality(self):
        predicate = Predicate.range("price", 0, 100).with_equals("branch", "Chicago")
        assert predicate.attributes() == {"price", "branch"}
        assert predicate.matches_row({"price": 50, "branch": "Chicago"})
        assert not predicate.matches_row({"price": 150, "branch": "Chicago"})
        assert not predicate.matches_row({"price": 50, "branch": "Trenton"})
        assert not predicate.matches_row({"price": 50})

    def test_box_constructor(self):
        predicate = Predicate.box({"x": (0, 1), "y": (2, 3)}, {"tag": ["a"]})
        assert predicate.attributes() == {"x", "y", "tag"}

    def test_conflicting_kinds_rejected(self):
        with pytest.raises(PredicateError):
            Predicate({"x": AttributeRange("x", 0, 1)},
                      {"x": AttributeMembership.of("x", ["a"])})

    def test_with_range_merges_intersection(self):
        predicate = Predicate.range("x", 0, 10).with_range("x", 5, 20)
        assert predicate.range_for("x").low == 5
        assert predicate.range_for("x").high == 10

    def test_with_membership_merges_intersection(self):
        predicate = Predicate.isin("tag", ["a", "b"]).with_membership("tag", ["b", "c"])
        assert predicate.membership_for("tag").values == frozenset({"b"})

    def test_conjoin(self):
        left = Predicate.range("x", 0, 10)
        right = Predicate.range("y", 5, 6).with_equals("tag", "a")
        combined = left.conjoin(right)
        assert combined.attributes() == {"x", "y", "tag"}
        with pytest.raises(PredicateError):
            left.conjoin(Predicate.range("x", 20, 30))


class TestPredicateCompilation:
    def test_to_expression_matches_rows(self):
        schema = Schema.from_pairs([("price", ColumnType.FLOAT),
                                    ("branch", ColumnType.STRING)])
        relation = Relation(schema, {
            "price": [10.0, 60.0, 80.0],
            "branch": ["Chicago", "Chicago", "Trenton"],
        })
        predicate = Predicate.range("price", 50, 100).with_equals("branch", "Chicago")
        mask = predicate.to_expression().evaluate(relation)
        assert mask.tolist() == [False, True, False]

    def test_to_box(self):
        predicate = Predicate.range("x", 0, 1).with_equals("tag", "a")
        box = predicate.to_box()
        assert box.contains_point({"x": 0.5, "tag": "a"})
        assert not box.contains_point({"x": 0.5, "tag": "b"})

    def test_expression_and_row_matching_agree(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT), ("tag", ColumnType.STRING)])
        relation = Relation(schema, {"x": [0.0, 1.0, 2.0, 3.0],
                                     "tag": ["a", "b", "a", "b"]})
        predicate = Predicate.range("x", 1, 2.5).with_membership("tag", ["a", "b"])
        mask = predicate.to_expression().evaluate(relation)
        rows = list(relation.iter_rows())
        assert [predicate.matches_row(row) for row in rows] == mask.tolist()


class TestPredicateOverlap:
    def test_overlapping_ranges(self):
        assert Predicate.range("x", 0, 5).overlaps(Predicate.range("x", 5, 10))
        assert not Predicate.range("x", 0, 4).overlaps(Predicate.range("x", 5, 10))

    def test_overlap_on_different_attributes_is_true(self):
        assert Predicate.range("x", 0, 1).overlaps(Predicate.range("y", 5, 6))

    def test_categorical_overlap(self):
        assert Predicate.equals("tag", "a").overlaps(Predicate.isin("tag", ["a", "b"]))
        assert not Predicate.equals("tag", "a").overlaps(Predicate.equals("tag", "b"))

    def test_tautology_overlaps_everything(self):
        assert Predicate.true().overlaps(Predicate.range("x", 0, 1))


class TestPredicateEquality:
    def test_equality_and_hash(self):
        first = Predicate.range("x", 0, 1).with_equals("tag", "a")
        second = Predicate.equals("tag", "a").with_range("x", 0, 1)
        assert first == second
        assert hash(first) == hash(second)
        assert first != Predicate.range("x", 0, 2)
