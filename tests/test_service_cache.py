"""Tests for the thread-safe LRU cache behind the service layer."""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.cache import CacheStatistics, LRUCache


class TestBasics:
    def test_get_put_and_counters(self):
        cache = LRUCache(max_entries=4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.statistics
        assert (stats.hits, stats.misses, stats.puts) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_peek_does_not_count(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        assert cache.peek("a") == 1
        assert cache.peek("b", "fallback") == "fallback"
        assert cache.statistics.lookups == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_entries=0)

    def test_contains_len_clear(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.put("b", 2)
        assert "a" in cache and len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.statistics.puts == 2  # statistics survive clear()


class TestEviction:
    def test_lru_eviction_order(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a": "b" is now least recently used
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.statistics.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = LRUCache(max_entries=2)
        cache.put("a", 1)
        cache.put("a", 2)
        cache.put("b", 3)
        assert cache.get("a") == 2
        assert cache.statistics.evictions == 0


class TestGetOrCompute:
    def test_computes_once_then_hits(self):
        cache = LRUCache(max_entries=4)
        calls = []
        factory = lambda: calls.append(1) or "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert cache.get_or_compute("k", factory) == "value"
        assert len(calls) == 1
        assert cache.statistics.hits == 1
        assert cache.statistics.misses == 1

    def test_concurrent_same_key_computes_once(self):
        cache = LRUCache(max_entries=8)
        calls = []
        barrier = threading.Barrier(8)

        def factory():
            calls.append(1)
            return "value"

        def worker():
            barrier.wait()
            return cache.get_or_compute("shared", factory)

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = [future.result()
                       for future in [pool.submit(worker) for _ in range(8)]]
        assert results == ["value"] * 8
        assert len(calls) == 1

    def test_different_keys_do_not_serialise(self):
        cache = LRUCache(max_entries=8)
        started = threading.Event()
        release = threading.Event()

        def slow_factory():
            started.set()
            assert release.wait(timeout=5.0)
            return "slow"

        with ThreadPoolExecutor(max_workers=2) as pool:
            slow = pool.submit(cache.get_or_compute, "slow-key", slow_factory)
            assert started.wait(timeout=5.0)
            # While the slow key computes, another key must go straight through.
            assert cache.get_or_compute("fast-key", lambda: "fast") == "fast"
            release.set()
            assert slow.result(timeout=5.0) == "slow"


class TestStatistics:
    def test_snapshot_is_frozen_copy(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        snapshot = cache.statistics.snapshot()
        cache.get("a")
        assert snapshot.hits == 0 and cache.statistics.hits == 1

    def test_as_dict(self):
        stats = CacheStatistics(hits=3, misses=1, evictions=2, puts=4)
        rendered = stats.as_dict()
        assert rendered["hits"] == 3 and rendered["hit_rate"] == 0.75

    def test_reset(self):
        cache = LRUCache(max_entries=4)
        cache.put("a", 1)
        cache.get("a")
        cache.reset_statistics()
        assert cache.statistics.lookups == 0
        assert cache.get("a") == 1  # entries themselves survive the reset
