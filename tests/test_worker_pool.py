"""Lifecycle, affinity and warm-cache behaviour of the persistent pool.

The pool's contract has three legs the soundness harness cannot see:

* **lifecycle** — idempotent shutdown, context management, lazy restart,
  and transparent recovery when a worker process is killed mid-service;
* **affinity** — a program key is pinned to one worker, so its warm cache
  is actually reused (observable as warm hits without program re-ships);
* **equivalence** — every mode (serial / thread / process) returns the
  endpoints and reports the direct in-process calls produce.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import build_partition_pcs
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.predicates import Predicate
from repro.exceptions import SolverError
from repro.parallel.pool import WorkerPool, shared_pool, shutdown_shared_pools
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import ContingencyService
from repro.solvers.registry import BackendCapabilities, register_backend

# Width-1 pools degrade to serial by design (pinned in TestModesAndFallbacks),
# so the lifecycle/affinity tests need at least two real workers even on the
# REPRO_TEST_WORKERS=1 CI leg.
WORKERS = max(2, int(os.environ.get("REPRO_TEST_WORKERS", "3")))


def make_relation(rows: int = 240, seed: int = 5) -> Relation:
    rng = np.random.default_rng(seed)
    schema = Schema.from_pairs([("t", ColumnType.FLOAT),
                                ("v", ColumnType.FLOAT)])
    data = np.column_stack([rng.uniform(0.0, 40.0, rows),
                            rng.uniform(1.0, 60.0, rows)])
    return Relation.from_rows(schema, [tuple(row) for row in data],
                              name="pool-test")


def keyed_shard_programs(solver: PCBoundSolver, attribute: str = "v",
                         shards: int = 3) -> list[tuple]:
    sharded = solver.sharded_plan(None, attribute, max_shards=shards)
    assert sharded.is_sharded
    return [(solver.shard_program_key(shard, None, attribute),
             solver.shard_program(shard, None, attribute))
            for shard in sharded]


@pytest.fixture
def solver() -> PCBoundSolver:
    pcset = build_partition_pcs(make_relation(), ["t"], 6)
    return PCBoundSolver(pcset, BoundOptions(check_closure=False))


def direct_endpoints(keyed, aggregate):
    return [(r.lower, r.upper, r.closed)
            for r in (program.bound(aggregate) for _, program in keyed)]


class TestLifecycle:
    def test_shutdown_is_idempotent_and_context_managed(self, solver):
        keyed = keyed_shard_programs(solver)
        with WorkerPool(max_workers=WORKERS, mode="process") as pool:
            endpoints = pool.solve_programs(keyed, AggregateFunction.SUM)
            assert endpoints == direct_endpoints(keyed, AggregateFunction.SUM)
            assert pool.alive_workers() == WORKERS
        assert pool.alive_workers() == 0
        pool.shutdown()  # second shutdown: no-op, no error
        pool.shutdown()

    def test_pool_restarts_lazily_after_shutdown(self, solver):
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        first = pool.solve_programs(keyed, AggregateFunction.COUNT)
        pool.shutdown()
        assert pool.alive_workers() == 0
        second = pool.solve_programs(keyed, AggregateFunction.COUNT)
        assert first == second
        pool.shutdown()

    def test_restart_bounces_workers(self, solver):
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        pool.solve_programs(keyed, AggregateFunction.SUM)
        pids = set(pool.worker_pids())
        pool.restart()
        assert pool.alive_workers() == WORKERS
        assert set(pool.worker_pids()).isdisjoint(pids)
        pool.shutdown()

    def test_killed_worker_is_respawned_and_round_completes(self, solver):
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            baseline = pool.solve_programs(keyed, AggregateFunction.SUM)
            victim = pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.1)
            recovered = pool.solve_programs(keyed, AggregateFunction.SUM)
            assert recovered == baseline
            assert pool.statistics.worker_restarts >= 1
            assert pool.alive_workers() == WORKERS
        finally:
            pool.shutdown()

    def test_worker_failure_propagates_as_exception(self, solver):
        pool = WorkerPool(max_workers=2, mode="process")
        try:
            with pytest.raises(SolverError, match="cache miss"):
                # A bare key with no program: the worker cannot resolve it.
                pool._locked_round([
                    ("solve", "no-such-key",
                     ("no-such-key", None, AggregateFunction.COUNT, 0.0, 0.0),
                     0),
                    ("solve", "no-such-key-2",
                     ("no-such-key-2", None, AggregateFunction.COUNT, 0.0, 0.0),
                     1)])
        finally:
            pool.shutdown()

    def test_large_rounds_do_not_deadlock(self, solver):
        """Rounds far larger than a pipe buffer complete: the in-flight cap
        keeps dispatch and collection interleaved, so a worker can never
        block sending results while the parent blocks sending tasks."""
        keyed = keyed_shard_programs(solver)
        big = [keyed[index % len(keyed)] for index in range(4000)]
        with WorkerPool(max_workers=2, mode="process") as pool:
            endpoints = pool.solve_programs(big, AggregateFunction.MIN)
        expected = direct_endpoints(keyed, AggregateFunction.MIN)
        assert endpoints == [expected[index % len(expected)]
                             for index in range(4000)]

    def test_shared_pools_are_reused_and_reaped(self):
        first = shared_pool(mode="thread", max_workers=WORKERS)
        second = shared_pool(mode="thread", max_workers=WORKERS)
        assert first is second
        other = shared_pool(mode="thread", max_workers=WORKERS + 1)
        assert other is not first
        shutdown_shared_pools()
        third = shared_pool(mode="thread", max_workers=WORKERS)
        assert third is not first

    def test_shared_pool_keyed_by_resolved_mode(self):
        """A process request that falls back to threads shares the thread
        registry entry instead of creating a duplicate thread pool."""
        register_backend(
            "test-shared-pool-unsafe",
            lambda model, time_limit=None: None,
            replace=True,
            capabilities=BackendCapabilities(process_safe=False))
        fallback = shared_pool(mode="process", max_workers=WORKERS,
                               backend="test-shared-pool-unsafe")
        assert fallback.mode == "thread"
        assert shared_pool(mode="thread", max_workers=WORKERS) is fallback


class TestModesAndFallbacks:
    def test_mode_validation(self):
        with pytest.raises(SolverError, match="unknown pool mode"):
            WorkerPool(mode="quantum")
        with pytest.raises(SolverError, match="must be positive"):
            WorkerPool(max_workers=0)

    def test_width_one_degrades_to_serial(self):
        assert WorkerPool(max_workers=1, mode="process").mode == "serial"

    def test_process_unsafe_backend_falls_back_to_threads(self):
        register_backend(
            "test-pool-native-handle",
            lambda model, time_limit=None: None,
            replace=True,
            capabilities=BackendCapabilities(process_safe=False))
        pool = WorkerPool(max_workers=2, mode="process",
                          backend="test-pool-native-handle")
        assert pool.mode == "thread"
        assert pool.requested_mode == "process"

    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_solve_programs_matches_direct_bounds(self, solver, mode):
        keyed = keyed_shard_programs(solver)
        workers = 1 if mode == "serial" else WORKERS
        with WorkerPool(max_workers=workers, mode=mode) as pool:
            for aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM,
                              AggregateFunction.MIN, AggregateFunction.MAX):
                assert pool.solve_programs(keyed, aggregate) == \
                    direct_endpoints(keyed, aggregate)

    @pytest.mark.parametrize("mode", ["thread", "process"])
    def test_avg_probes_match_direct_calls(self, solver, mode):
        keyed = keyed_shard_programs(solver)
        probes = [(10.0, True, True), (30.0, False, True), (50.0, True, False)]
        with WorkerPool(max_workers=WORKERS, mode=mode) as pool:
            pooled = pool.avg_probes(keyed, probes)
        direct = [[program.avg_probe_optima(target, at_least=at_least,
                                            with_floor=with_floor)
                   for _, program in keyed]
                  for target, at_least, with_floor in probes]
        assert pooled == direct


class TestAffinityAndWarmCaches:
    def test_affinity_is_sticky_and_balanced(self):
        pool = WorkerPool(max_workers=3, mode="process")
        keys = [f"key-{index}" for index in range(9)]
        first = [pool.worker_for(key) for key in keys]
        # Sticky: the same key always routes to the same worker.
        assert [pool.worker_for(key) for key in keys] == first
        # Balanced: 9 fresh keys over 3 workers land 3 per worker.
        assert sorted(first.count(index) for index in range(3)) == [3, 3, 3]
        pool.shutdown()

    def test_warm_cache_hits_skip_program_shipping(self, solver):
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            pool.warm(dict(keyed))
            shipped_after_warm = pool.statistics.programs_shipped
            assert shipped_after_warm == len(keyed)
            # Warming again is a no-op.
            pool.warm(dict(keyed))
            assert pool.statistics.programs_shipped == shipped_after_warm
            # Solves for warmed keys ship no programs: warm hits only.
            for _ in range(3):
                pool.solve_programs(keyed, AggregateFunction.SUM)
            assert pool.statistics.programs_shipped == shipped_after_warm
            assert pool.statistics.warm_hits >= 3 * len(keyed)
            assert pool.statistics.warm_hit_rate > 0.5
            # Every key is warm on exactly its affinity worker.
            for key, _ in keyed:
                assert key in pool.warm_keys_on(pool.worker_for(key))
        finally:
            pool.shutdown()

    def test_worker_lru_eviction_recovers_by_reshipping(self, solver,
                                                        monkeypatch):
        """Warm-key bookkeeping is advisory: a worker that evicted a
        program under memory pressure gets it re-shipped, not an error."""
        import repro.parallel.pool as pool_module

        monkeypatch.setattr(pool_module, "_WORKER_CACHE_ENTRIES", 1)
        keyed = keyed_shard_programs(solver)
        # Width 2: each worker holds several keys but caches only one, so
        # round-robin traffic forces evictions on every round.
        pool = WorkerPool(max_workers=2, mode="process")
        try:
            baseline = direct_endpoints(keyed, AggregateFunction.SUM)
            first = pool.solve_programs(keyed, AggregateFunction.SUM)
            shipped = pool.statistics.programs_shipped
            second = pool.solve_programs(keyed, AggregateFunction.SUM)
            assert first == baseline and second == baseline
            # The second round hit evicted entries: programs were
            # re-shipped instead of raising WorkerCacheMiss at the caller.
            assert pool.statistics.programs_shipped > shipped
        finally:
            pool.shutdown()

    def test_respawned_worker_is_rewarmed_transparently(self, solver):
        keyed = keyed_shard_programs(solver)
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            pool.warm(dict(keyed))
            baseline = pool.solve_programs(keyed, AggregateFunction.SUM)
            for pid in pool.worker_pids():
                os.kill(pid, signal.SIGKILL)
            time.sleep(0.1)
            shipped_before = pool.statistics.programs_shipped
            recovered = pool.solve_programs(keyed, AggregateFunction.SUM)
            assert recovered == baseline
            # Cold respawned workers were re-shipped their programs.  Only
            # workers with affinity keys had tasks to recover, so only they
            # are guaranteed a respawn.
            involved = {pool.worker_for(key) for key, _ in keyed}
            assert pool.statistics.programs_shipped > shipped_before
            assert pool.statistics.worker_restarts >= len(involved)
        finally:
            pool.shutdown()


class TestServiceIntegration:
    def make_service_scenario(self):
        relation = make_relation(seed=11)
        pcset = build_partition_pcs(relation, ["t"], 6)
        queries = [ContingencyQuery.sum("v", Predicate.range("t", 5.0 * i,
                                                             5.0 * i + 10.0))
                   for i in range(4)]
        queries += [ContingencyQuery.avg("v", Predicate.range("t", 5.0 * i,
                                                              5.0 * i + 10.0))
                    for i in range(4)]
        return relation, pcset, queries

    def test_process_pool_batches_reuse_warm_workers(self, monkeypatch):
        # This pins the warm-*worker* path: clearing the report cache must
        # re-dispatch to the pool.  A persistent tier (the REPRO_CACHE_DIR
        # CI leg) would answer the second batch from the store instead.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        relation, pcset, queries = self.make_service_scenario()
        with ContingencyService(max_workers=WORKERS,
                                pool_mode="process") as service:
            service.register("pool", pcset, observed=relation)
            first = service.execute_batch("pool", queries)
            service.report_cache.clear()
            second = service.execute_batch("pool", queries)
            assert [(r.lower, r.upper) for r in first.reports] == \
                [(r.lower, r.upper) for r in second.reports]
            # The second batch found every program warm on its affinity
            # worker: keys only, no skeleton pickling, no re-registration.
            assert second.statistics.pool_statistics["programs_shipped"] == 0
            assert second.statistics.pool_statistics["sessions_shipped"] == 0
            assert second.statistics.pool_statistics["warm_hits"] > 0
            # And the reports match a plain serial analyzer.
            analyzer = PCAnalyzer(pcset, observed=relation)
            for query, report in zip(queries, first.reports):
                serial = analyzer.analyze(query)
                assert report.lower == pytest.approx(serial.lower, rel=1e-9)
                assert report.upper == pytest.approx(serial.upper, rel=1e-9)
        assert service.worker_pool.alive_workers() == 0

    def test_service_batches_survive_worker_kill(self, monkeypatch):
        # Same pin as above: the recovery batch must reach the (restarted)
        # pool rather than be served from a persistent store.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        relation, pcset, queries = self.make_service_scenario()
        with ContingencyService(max_workers=WORKERS,
                                pool_mode="process") as service:
            service.register("pool", pcset, observed=relation)
            first = service.execute_batch("pool", queries)
            victim = service.worker_pool.worker_pids()[0]
            os.kill(victim, signal.SIGKILL)
            time.sleep(0.1)
            service.report_cache.clear()
            recovered = service.execute_batch("pool", queries)
            assert [(r.lower, r.upper) for r in first.reports] == \
                [(r.lower, r.upper) for r in recovered.reports]
            assert service.worker_pool.statistics.worker_restarts >= 1

    def test_injected_process_pool_gated_for_unsafe_backend(self):
        """A process-unsafe backend never reaches an injected process pool:
        the solver borrows a shared thread pool instead (same fallback the
        pool applies when it knows the backend at construction)."""
        from repro.solvers.milp import _solve_scipy

        register_backend(
            "test-pool-unsafe-solver",
            lambda model, time_limit=None: _solve_scipy(model),
            replace=True,
            capabilities=BackendCapabilities(process_safe=False))
        relation, pcset, _ = self.make_service_scenario()
        pool = WorkerPool(max_workers=WORKERS, mode="process", name="gated")
        try:
            solver = PCBoundSolver(
                pcset, BoundOptions(check_closure=False, solve_workers=2,
                                    milp_backend="test-pool-unsafe-solver"),
                worker_pool=pool)
            borrowed = solver.borrow_pool(2)
            assert borrowed is not pool
            assert borrowed.mode == "thread"
            serial = PCBoundSolver(pcset, BoundOptions(check_closure=False))
            pooled_range = solver.bound(AggregateFunction.SUM, "v")
            serial_range = serial.bound(AggregateFunction.SUM, "v")
            assert pooled_range.lower == pytest.approx(serial_range.lower,
                                                       rel=1e-9)
            assert pooled_range.upper == pytest.approx(serial_range.upper,
                                                       rel=1e-9)
            # The process pool never saw the unsafe backend's work.
            assert pool.statistics.tasks_dispatched == 0
        finally:
            pool.shutdown()

    def test_sharded_solver_borrows_injected_pool(self):
        relation, pcset, _ = self.make_service_scenario()
        pool = WorkerPool(max_workers=WORKERS, mode="process", name="injected")
        try:
            solver = PCBoundSolver(
                pcset, BoundOptions(check_closure=False, solve_workers=3),
                worker_pool=pool)
            serial = PCBoundSolver(pcset, BoundOptions(check_closure=False))
            for aggregate, attribute in [(AggregateFunction.COUNT, None),
                                         (AggregateFunction.SUM, "v"),
                                         (AggregateFunction.AVG, "v")]:
                pooled_range = solver.bound(aggregate, attribute)
                serial_range = serial.bound(aggregate, attribute)
                assert pooled_range.lower == pytest.approx(serial_range.lower,
                                                           rel=1e-9)
                assert pooled_range.upper == pytest.approx(serial_range.upper,
                                                           rel=1e-9)
            assert pool.statistics.tasks_dispatched > 0
        finally:
            pool.shutdown()


class TestWorkStealing:
    """Elastic re-routing of queued tasks from loaded workers to idle ones.

    All tasks are keyed to one affinity key, so routing concentrates the
    round on a single worker — the synthetic worst case of skew.  With
    stealing on, idle peers must take over the queued tail (and split a
    queued batch when idle workers outnumber queued tasks); with stealing
    off, the counters stay at zero.  Either way the results must equal the
    serial enumeration — stealing moves where a task runs, never what it
    computes.
    """

    def skewed_tasks(self, count: int) -> list[tuple]:
        from repro.core.cells import DecompositionStrategy

        pcset = build_partition_pcs(make_relation(), ["t"], 4)
        return [("hot-key", pcset, None, DecompositionStrategy.DFS_REWRITE,
                 None)] * count

    def serial_coverings(self, tasks):
        from repro.core.cells import CellDecomposer

        return {cell.covering
                for cell in CellDecomposer(tasks[0][1]).decompose().cells}

    def test_idle_workers_steal_queued_tasks(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEAL", raising=False)
        # batch_size=1 forces one single-shard task per entry: 40 tasks on
        # one affinity worker, capped at 16 in flight, leaves a deep queue
        # the idle workers must drain.
        tasks = self.skewed_tasks(40)
        expected = self.serial_coverings(tasks)
        with WorkerPool(max_workers=WORKERS, mode="process",
                        steal=True) as pool:
            results = pool.decompose_shards(tasks, batch_size=1)
            stolen = pool.statistics.tasks_stolen
        assert stolen > 0
        assert len(results) == len(tasks)
        assert all({cell.covering for cell in result.cells} == expected
                   for result in results)

    def test_stealing_off_keeps_affinity_routing(self, monkeypatch):
        monkeypatch.delenv("REPRO_STEAL", raising=False)
        tasks = self.skewed_tasks(40)
        expected = self.serial_coverings(tasks)
        with WorkerPool(max_workers=WORKERS, mode="process",
                        steal=False) as pool:
            assert not pool.stealing
            results = pool.decompose_shards(tasks, batch_size=1)
            statistics = pool.statistics
        assert statistics.tasks_stolen == 0
        assert statistics.batches_split == 0
        assert all({cell.covering for cell in result.cells} == expected
                   for result in results)

    def test_environment_wins_over_pool_configuration(self, monkeypatch):
        monkeypatch.setenv("REPRO_STEAL", "0")
        assert not WorkerPool(max_workers=2, mode="process",
                              steal=True).stealing
        monkeypatch.setenv("REPRO_STEAL", "1")
        assert WorkerPool(max_workers=2, mode="process",
                          steal=False).stealing
        monkeypatch.delenv("REPRO_STEAL", raising=False)
        assert WorkerPool(max_workers=2, mode="process").stealing

    def test_queued_batch_splits_when_thieves_outnumber_tasks(self,
                                                              monkeypatch):
        monkeypatch.delenv("REPRO_STEAL", raising=False)
        # batch_size=4 over 68 same-key tasks makes 17 decompose_batch
        # requests for one worker: 16 in flight, exactly one queued — fewer
        # queued tasks than idle workers, so the queued batch must split.
        tasks = self.skewed_tasks(68)
        expected = self.serial_coverings(tasks)
        with WorkerPool(max_workers=WORKERS, mode="process",
                        steal=True) as pool:
            results = pool.decompose_shards(tasks, batch_size=4)
            statistics = pool.statistics
        assert statistics.batches_split >= 1
        assert statistics.tasks_stolen >= 1
        assert len(results) == len(tasks)
        assert all({cell.covering for cell in result.cells} == expected
                   for result in results)

    def test_restart_resets_load_counters_but_keeps_sticky_map(self):
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        try:
            indexes = {key: pool.worker_for(key)
                       for key in ("k0", "k1", "k2", "k3")}
            assert sum(pool._assigned) == 4
            pool.restart()
            # The dead incarnation's load history is gone...
            assert pool._assigned == [0] * WORKERS
            # ...but sticky placement survives the bounce.
            for key, index in indexes.items():
                assert pool.worker_for(key) == index
        finally:
            pool.shutdown()

    def test_retire_affinity_returns_the_load_credit(self):
        pool = WorkerPool(max_workers=WORKERS, mode="process")
        index = pool.worker_for("transient")
        assert pool._assigned[index] == 1
        pool.retire_affinity("transient")
        assert pool._assigned[index] == 0
        assert "transient" not in pool._affinity
        pool.retire_affinity("transient")  # advisory: unknown keys ignored
        assert pool._assigned[index] == 0


class TestSpeculativeCapacity:
    def test_gated_on_live_tasks_not_just_width(self):
        pool = WorkerPool(max_workers=4, mode="thread")
        try:
            assert pool.speculative_capacity(2)  # 4 idle workers > 2
            pool._note_live(3)
            try:
                # Three tasks in flight leave one idle worker: speculating
                # two extra probes would queue behind live work.
                assert not pool.speculative_capacity(2)
                assert not pool.speculative_capacity(1)
            finally:
                pool._note_live(-3)
            assert pool.speculative_capacity(2)
        finally:
            pool.shutdown()

    def test_thread_fanout_occupies_live_slots(self):
        import threading

        pool = WorkerPool(max_workers=4, mode="thread")
        release = threading.Event()

        def blocked(_item):
            release.wait(10.0)
            return True

        worker = threading.Thread(
            target=lambda: pool._thread_map(blocked, [0, 1, 2],
                                            label="pool.block"))
        worker.start()
        try:
            deadline = time.time() + 5.0
            while pool.live_tasks != 3 and time.time() < deadline:
                time.sleep(0.005)
            assert pool.live_tasks == 3
            assert not pool.speculative_capacity(1)
        finally:
            release.set()
            worker.join(timeout=10.0)
            pool.shutdown()
        assert pool.live_tasks == 0
        assert pool.speculative_capacity(1)
