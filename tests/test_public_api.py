"""Tests of the package's public API surface and top-level invariants."""

from __future__ import annotations

import importlib

import pytest

import repro
from repro.baselines.base import MissingDataEstimator
from repro.experiments.estimators import CorrPCEstimator, PCFrameworkEstimator
from repro.exceptions import (
    ClosureError,
    ConstraintError,
    InfeasibleProblemError,
    PredicateError,
    QueryError,
    ReproError,
    SchemaError,
    SolverError,
    WorkloadError,
)


class TestTopLevelExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_string(self):
        assert repro.__version__.count(".") == 2

    def test_subpackages_importable(self):
        for module_name in ("repro.core", "repro.relational", "repro.solvers",
                            "repro.baselines", "repro.datasets", "repro.workloads",
                            "repro.experiments", "repro.cli"):
            module = importlib.import_module(module_name)
            assert module is not None

    def test_subpackage_all_lists_resolve(self):
        for module_name in ("repro.core", "repro.relational", "repro.solvers",
                            "repro.baselines", "repro.datasets", "repro.workloads"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exception_type", [
        SchemaError, QueryError, PredicateError, ConstraintError, ClosureError,
        SolverError, WorkloadError, InfeasibleProblemError,
    ])
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_infeasible_is_a_solver_error(self):
        assert issubclass(InfeasibleProblemError, SolverError)


class TestEstimatorContract:
    def test_pc_estimators_implement_the_baseline_interface(self):
        assert issubclass(PCFrameworkEstimator, MissingDataEstimator)
        assert issubclass(CorrPCEstimator, PCFrameworkEstimator)

    def test_estimator_requires_fit_before_estimate(self):
        from repro.core.engine import ContingencyQuery

        estimator = CorrPCEstimator("light", 4)
        with pytest.raises(Exception):
            estimator.estimate(ContingencyQuery.count())

    def test_unfitted_pcset_access_raises(self):
        from repro.exceptions import WorkloadError as WError

        estimator = CorrPCEstimator("light", 4)
        with pytest.raises(WError):
            _ = estimator.pcset


class TestDocumentationPresence:
    """Every public module and class carries a docstring (release hygiene)."""

    @pytest.mark.parametrize("module_name", [
        "repro", "repro.core.predicates", "repro.core.constraints",
        "repro.core.pcset", "repro.core.cells", "repro.core.bounds",
        "repro.core.engine", "repro.core.joins", "repro.core.builders",
        "repro.core.io", "repro.solvers.sat", "repro.solvers.lp",
        "repro.solvers.milp", "repro.solvers.fec", "repro.relational.relation",
        "repro.relational.query", "repro.baselines.sampling",
        "repro.baselines.histogram", "repro.baselines.gmm",
        "repro.experiments.harness", "repro.cli",
    ])
    def test_module_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20

    def test_public_classes_have_docstrings(self):
        from repro import (ContingencyQuery, PCAnalyzer, Predicate,
                           PredicateConstraint, PredicateConstraintSet, ResultRange)

        for cls in (ContingencyQuery, PCAnalyzer, Predicate, PredicateConstraint,
                    PredicateConstraintSet, ResultRange):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 10
