"""Unit tests for the workload generators (queries, missingness, noise)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_corr_pcs, build_overlapping_pcs
from repro.core.predicates import Predicate
from repro.datasets.intel_wireless import generate_intel_wireless
from repro.exceptions import WorkloadError
from repro.relational.aggregates import AggregateFunction
from repro.workloads.missing import remove_correlated, remove_random, remove_region
from repro.workloads.noise import corrupt_frequency_constraints, corrupt_value_constraints
from repro.workloads.queries import QueryWorkloadSpec, generate_query_workload, random_region


@pytest.fixture(scope="module")
def relation():
    return generate_intel_wireless(num_rows=3_000, seed=21)


class TestQueryWorkloads:
    def test_spec_validation(self):
        with pytest.raises(WorkloadError):
            QueryWorkloadSpec(AggregateFunction.COUNT, None, ("time",), num_queries=0)
        with pytest.raises(WorkloadError):
            QueryWorkloadSpec(AggregateFunction.COUNT, None, ("time",),
                              min_selectivity=0.5, max_selectivity=0.1)

    def test_random_region_within_data_range(self, relation):
        rng = np.random.default_rng(0)
        region = random_region(relation, ["time", "device_id"], rng)
        time_range = region.range_for("time")
        low, high = relation.column_range("time")
        assert low <= time_range.low <= time_range.high <= high
        with pytest.raises(WorkloadError):
            random_region(relation, [], rng)

    def test_generate_query_workload_is_deterministic(self, relation):
        spec = QueryWorkloadSpec(AggregateFunction.SUM, "light", ("time",),
                                 num_queries=10)
        first = generate_query_workload(relation, spec, seed=1)
        second = generate_query_workload(relation, spec, seed=1)
        assert len(first) == 10
        assert all(f.region == s.region for f, s in zip(first, second))

    def test_queries_have_nonzero_selectivity_on_average(self, relation):
        spec = QueryWorkloadSpec(AggregateFunction.COUNT, None, ("time",),
                                 num_queries=20)
        queries = generate_query_workload(relation, spec, seed=2)
        matched = [query.ground_truth(relation) for query in queries]
        assert np.mean(matched) > 0


class TestMissingScenarios:
    def test_remove_correlated_takes_extremes(self, relation):
        scenario = remove_correlated(relation, 0.3, "light", highest=True)
        assert scenario.total_rows == relation.num_rows
        assert scenario.actual_fraction == pytest.approx(0.3, abs=0.01)
        assert scenario.missing.column_min("light") >= scenario.observed.column_max("light") - 1e-9

    def test_remove_correlated_lowest(self, relation):
        scenario = remove_correlated(relation, 0.2, "light", highest=False)
        assert scenario.missing.column_max("light") <= scenario.observed.column_min("light") + 1e-9

    def test_remove_random_partitions_rows(self, relation):
        scenario = remove_random(relation, 0.25, rng=np.random.default_rng(3))
        assert scenario.total_rows == relation.num_rows
        assert scenario.mechanism == "random"

    def test_remove_region(self, relation):
        region = Predicate.range("device_id", 0, 10)
        scenario = remove_region(relation, region)
        assert (scenario.missing.column("device_id") <= 10).all()
        assert (scenario.observed.column("device_id") > 10).all()

    def test_invalid_fraction(self, relation):
        with pytest.raises(WorkloadError):
            remove_correlated(relation, 1.5, "light")
        with pytest.raises(WorkloadError):
            remove_random(relation, -0.1)


class TestNoiseInjection:
    def test_value_noise_perturbs_bounds(self, relation):
        pcset = build_corr_pcs(relation, "light", 16,
                               candidates=["device_id", "time"])
        noisy = corrupt_value_constraints(pcset, 1.0, np.random.default_rng(4))
        assert len(noisy) == len(pcset)
        changed = 0
        for original, corrupted in zip(pcset, noisy):
            if original.values.bounds != corrupted.values.bounds:
                changed += 1
            # Bounds stay well-ordered even after corruption.
            for low, high in corrupted.values.bounds.values():
                assert low <= high
        assert changed > 0

    def test_zero_noise_is_identity_on_bounds(self, relation):
        pcset = build_corr_pcs(relation, "light", 9, candidates=["device_id", "time"])
        unchanged = corrupt_value_constraints(pcset, 0.0)
        for original, copy in zip(pcset, unchanged):
            assert original.values.bounds == copy.values.bounds

    def test_structural_hints_preserved(self, relation):
        pcset = build_corr_pcs(relation, "light", 9, candidates=["device_id", "time"])
        noisy = corrupt_value_constraints(pcset, 0.5, np.random.default_rng(5))
        assert noisy.is_pairwise_disjoint() == pcset.is_pairwise_disjoint()

    def test_overlapping_sets_survive_corruption(self, relation):
        pcset = build_overlapping_pcs(relation, ["time"], 6, overlap_fraction=0.5,
                                      value_attributes=["light"])
        noisy = corrupt_value_constraints(pcset, 2.0, np.random.default_rng(6))
        assert len(noisy) == len(pcset)

    def test_frequency_noise(self, relation):
        pcset = build_corr_pcs(relation, "light", 9, candidates=["device_id", "time"])
        noisy = corrupt_frequency_constraints(pcset, 0.5, np.random.default_rng(7))
        assert len(noisy) == len(pcset)
        for constraint in noisy:
            assert constraint.frequency.lower <= constraint.frequency.upper

    def test_negative_noise_rejected(self, relation):
        pcset = build_corr_pcs(relation, "light", 4, candidates=["device_id", "time"])
        with pytest.raises(WorkloadError):
            corrupt_value_constraints(pcset, -1.0)
        with pytest.raises(WorkloadError):
            corrupt_frequency_constraints(pcset, -1.0)
