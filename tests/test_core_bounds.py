"""Unit and property tests for the MILP bounding engine (paper §4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import BoundOptions, PCBoundSolver, ResultRange
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import DisjointRangeError, SolverError
from repro.relational.aggregates import AggregateFunction
from repro.solvers.milp import MILPBackend

NO_CLOSURE = BoundOptions(check_closure=False)


def pc(predicate, bounds, lo, hi, name="pc"):
    return PredicateConstraint(predicate, ValueConstraint(bounds),
                               FrequencyConstraint(lo, hi), name=name)


class TestResultRange:
    def test_contains_and_width(self):
        result = ResultRange(1.0, 5.0)
        assert result.contains(1.0) and result.contains(5.0) and result.contains(3.0)
        assert not result.contains(0.5) and not result.contains(5.5)
        assert result.contains(None)
        assert result.width == 4.0
        assert result.is_bounded

    def test_unbounded_and_undefined(self):
        assert ResultRange(None, None).width == math.inf
        assert not ResultRange(0.0, math.inf).is_bounded
        assert ResultRange(None, 5.0).contains(-1000.0)

    def test_over_estimation_rate(self):
        assert ResultRange(0.0, 10.0).over_estimation_rate(5.0) == 2.0
        assert ResultRange(0.0, 10.0).over_estimation_rate(0.0) == math.inf
        assert ResultRange(0.0, 0.0).over_estimation_rate(0.0) == 1.0
        assert ResultRange(0.0, math.inf).over_estimation_rate(5.0) == math.inf

    def test_shifted(self):
        shifted = ResultRange(1.0, 2.0).shifted(10.0)
        assert (shifted.lower, shifted.upper) == (11.0, 12.0)
        assert ResultRange(None, 2.0).shifted(1.0).lower is None

    def test_intersect_tightens_and_treats_none_as_unbounded(self):
        combined = ResultRange(1.0, 10.0).intersect(ResultRange(4.0, 20.0))
        assert (combined.lower, combined.upper) == (4.0, 10.0)
        open_ended = ResultRange(None, 10.0).intersect(ResultRange(2.0, None))
        assert (open_ended.lower, open_ended.upper) == (2.0, 10.0)
        untouched = ResultRange(None, None).intersect(ResultRange(None, None))
        assert (untouched.lower, untouched.upper) == (None, None)

    def test_intersect_disjoint_raises_dedicated_error(self):
        """Disjoint ranges raise DisjointRangeError, never an inverted range."""
        first = ResultRange(0.0, 1.0)
        second = ResultRange(5.0, 9.0)
        with pytest.raises(DisjointRangeError) as excinfo:
            first.intersect(second)
        # The alarm carries both offending ranges for monitoring.
        assert excinfo.value.first is first
        assert excinfo.value.second is second
        # The dedicated error stays catchable as the SolverError family.
        with pytest.raises(SolverError):
            second.intersect(first)

    def test_intersect_touching_endpoints_is_not_disjoint(self):
        touching = ResultRange(0.0, 5.0).intersect(ResultRange(5.0, 9.0))
        assert (touching.lower, touching.upper) == (5.0, 5.0)


class TestPaperNumericalExamples:
    """The worked examples of §4.4 must reproduce exactly."""

    def test_disjoint_sum_bounds(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "price")
        assert result.lower == pytest.approx(99.0)
        assert result.upper == pytest.approx(27_998.0)

    def test_overlapping_sum_bounds(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "price")
        assert result.lower == pytest.approx(74.25)
        assert result.upper == pytest.approx(17_748.75)

    def test_overlapping_count_bounds(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        result = solver.bound(AggregateFunction.COUNT)
        assert result.lower == pytest.approx(75.0)
        assert result.upper == pytest.approx(125.0)

    def test_overlapping_max_min(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        maximum = solver.bound(AggregateFunction.MAX, "price")
        assert maximum.upper == pytest.approx(149.99)
        assert maximum.lower == pytest.approx(0.99)  # rows are forced to exist
        minimum = solver.bound(AggregateFunction.MIN, "price")
        assert minimum.lower == pytest.approx(0.99)
        assert minimum.upper == pytest.approx(129.99)

    def test_overlapping_avg(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        result = solver.bound(AggregateFunction.AVG, "price")
        # Max average: 50 rows at 129.99 plus 75 rows at 149.99.
        expected_upper = (50 * 129.99 + 75 * 149.99) / 125
        assert result.upper == pytest.approx(expected_upper, rel=1e-4)
        assert result.lower == pytest.approx(0.99, rel=1e-4)


class TestChicagoExample:
    """The §3.1 running example: c1/c2 interact through the shared domain."""

    def setup_method(self):
        self.c1 = pc(Predicate.equals("branch", "Chicago"),
                     {"price": (0.0, 149.99)}, 0, 5, name="c1")
        self.c2 = pc(Predicate.true(), {"price": (0.0, 149.99)}, 0, 100, name="c2")
        from repro.solvers.sat import AttributeDomain
        self.pcset = PredicateConstraintSet(
            [self.c1, self.c2],
            domains={"branch": AttributeDomain.categorical(
                ["Chicago", "New York", "Trenton"])})

    def test_interacting_constraints(self):
        solver = PCBoundSolver(self.pcset, NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "price")
        # All 100 rows can price at 149.99 (c1 restricts only Chicago's count,
        # not its price ceiling, which matches c2's ceiling).
        assert result.upper == pytest.approx(100 * 149.99)
        count = solver.bound(AggregateFunction.COUNT)
        assert count.upper == pytest.approx(100.0)

    def test_chicago_only_query(self):
        solver = PCBoundSolver(self.pcset, NO_CLOSURE)
        region = Predicate.equals("branch", "Chicago")
        result = solver.bound(AggregateFunction.SUM, "price", region)
        assert result.upper == pytest.approx(5 * 149.99)

    def test_tighter_value_bound_wins_in_overlap(self):
        c1_cheap = pc(Predicate.equals("branch", "Chicago"),
                      {"price": (0.0, 20.0)}, 0, 5, name="c1")
        pcset = PredicateConstraintSet([c1_cheap, self.c2], domains=self.pcset.domains)
        solver = PCBoundSolver(pcset, NO_CLOSURE)
        region = Predicate.equals("branch", "Chicago")
        result = solver.bound(AggregateFunction.SUM, "price", region)
        # Within Chicago the 20.0 ceiling is the most restrictive.
        assert result.upper == pytest.approx(5 * 20.0)


class TestQueryRegions:
    def test_region_clips_value_bounds(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        region = Predicate.range("utc", 11, 11.5)
        result = solver.bound(AggregateFunction.SUM, "price", region)
        assert result.upper == pytest.approx(100 * 129.99)

    def test_region_outside_all_constraints(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        region = Predicate.range("utc", 50, 60)
        result = solver.bound(AggregateFunction.SUM, "price", region)
        assert result.upper == pytest.approx(0.0)
        assert result.lower == pytest.approx(0.0)

    def test_mandatory_rows_may_live_outside_region(self):
        """kl > 0 must not force rows into the query region (slack variables)."""
        constraint = pc(Predicate.range("x", 0, 10), {"v": (-50.0, -10.0)}, 5, 5,
                        name="mandatory")
        pcset = PredicateConstraintSet([constraint])
        solver = PCBoundSolver(pcset, NO_CLOSURE)
        region = Predicate.range("x", 0, 1)
        result = solver.bound(AggregateFunction.SUM, "v", region)
        # All five (negative-valued) rows can be placed outside [0, 1], so the
        # query's maximum contribution is zero, not 5 * -10.
        assert result.upper == pytest.approx(0.0)
        assert result.lower == pytest.approx(5 * -50.0)

    def test_closure_check_widens_open_world(self):
        constraint = pc(Predicate.range("x", 0, 10), {"v": (0.0, 1.0)}, 0, 5)
        pcset = PredicateConstraintSet([constraint])
        closed_region = Predicate.range("x", 2, 3)
        open_region = Predicate.range("x", 5, 20)
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=True))
        closed_result = solver.bound(AggregateFunction.COUNT, region=closed_region)
        assert closed_result.closed
        assert closed_result.upper == pytest.approx(5.0)
        open_result = solver.bound(AggregateFunction.COUNT, region=open_region)
        assert not open_result.closed
        assert open_result.upper == math.inf


class TestEdgeCases:
    def test_empty_pcset_gives_zero_bounds(self):
        solver = PCBoundSolver(PredicateConstraintSet(), NO_CLOSURE)
        assert solver.bound(AggregateFunction.COUNT).upper == 0.0
        assert solver.bound(AggregateFunction.SUM, "v").upper == 0.0
        assert solver.bound(AggregateFunction.MAX, "v").upper is None

    def test_missing_attribute_gives_unbounded_sum(self):
        constraint = pc(Predicate.range("x", 0, 1), {}, 0, 5)
        solver = PCBoundSolver(PredicateConstraintSet([constraint]), NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "unconstrained_value")
        assert result.upper == math.inf

    def test_sum_requires_attribute(self):
        solver = PCBoundSolver(PredicateConstraintSet(), NO_CLOSURE)
        with pytest.raises(SolverError):
            solver.bound(AggregateFunction.SUM)

    def test_negative_values_affect_lower_bound(self):
        constraint = pc(Predicate.range("x", 0, 1), {"v": (-10.0, 10.0)}, 0, 4)
        solver = PCBoundSolver(PredicateConstraintSet([constraint]), NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "v")
        assert result.upper == pytest.approx(40.0)
        assert result.lower == pytest.approx(-40.0)

    def test_conflicting_value_constraints_zero_out_cell(self):
        first = pc(Predicate.range("x", 0, 10), {"v": (0.0, 5.0)}, 0, 10, name="lo")
        second = pc(Predicate.range("x", 5, 15), {"v": (50.0, 60.0)}, 0, 10, name="hi")
        solver = PCBoundSolver(PredicateConstraintSet([first, second]), NO_CLOSURE)
        result = solver.bound(AggregateFunction.SUM, "v")
        # The overlap cell admits no legal value, so the best allocation uses
        # the exclusive parts of each constraint: 10 rows at 5 plus 10 at 60.
        assert result.upper == pytest.approx(10 * 5.0 + 10 * 60.0)

    def test_mandatory_constraint_outside_region_is_feasible(self):
        forced = PredicateConstraint(Predicate.range("x", 0, 1), ValueConstraint({}),
                                     FrequencyConstraint(1, 1), name="forced")
        solver = PCBoundSolver(PredicateConstraintSet([forced]), NO_CLOSURE)
        # The forced row lives outside the query region; the slack variable
        # keeps the program feasible and the query's own bound at zero.
        result = solver.bound(AggregateFunction.COUNT, region=Predicate.range("x", 5, 6))
        assert result.upper == pytest.approx(0.0)

    def test_min_max_with_region_clipping(self):
        constraint = pc(Predicate.range("x", 0, 10), {"v": (0.0, 100.0)}, 0, 5)
        solver = PCBoundSolver(PredicateConstraintSet([constraint]), NO_CLOSURE)
        region = Predicate.range("v", 0, 30)
        result = solver.bound(AggregateFunction.MAX, "v", region)
        assert result.upper == pytest.approx(30.0)

    def test_avg_with_known_partition(self):
        constraint = pc(Predicate.range("x", 0, 10), {"v": (0.0, 100.0)}, 0, 5)
        solver = PCBoundSolver(PredicateConstraintSet([constraint]), NO_CLOSURE)
        result = solver.bound(AggregateFunction.AVG, "v",
                              known_sum=50.0, known_count=5.0)
        # Observed average is 10; five extra rows at 100 push it to at most 55,
        # and five extra rows at 0 pull it down to at least 5.
        assert result.upper == pytest.approx((50.0 + 5 * 100.0) / 10.0, rel=1e-3)
        assert result.lower == pytest.approx(50.0 / 10.0, rel=1e-3)

    def test_branch_and_bound_backend_matches_scipy(self, paper_overlapping_pcs):
        scipy_solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        bb_solver = PCBoundSolver(
            paper_overlapping_pcs,
            BoundOptions(check_closure=False,
                         milp_backend=MILPBackend.BRANCH_AND_BOUND))
        for aggregate in (AggregateFunction.SUM, AggregateFunction.COUNT):
            attribute = "price" if aggregate is AggregateFunction.SUM else None
            first = scipy_solver.bound(aggregate, attribute)
            second = bb_solver.bound(aggregate, attribute)
            assert first.upper == pytest.approx(second.upper, rel=1e-6)
            assert first.lower == pytest.approx(second.lower, rel=1e-6)


# --------------------------------------------------------------------- #
# Property test: bounds are sound for randomly generated instances.
# --------------------------------------------------------------------- #
segment_strategy = st.tuples(
    st.integers(min_value=0, max_value=8),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=20),
    st.integers(min_value=0, max_value=50),
)


@st.composite
def random_instances(draw):
    """A random PC set plus a random relation instance that satisfies it."""
    segments = draw(st.lists(segment_strategy, min_size=1, max_size=4))
    rng_seed = draw(st.integers(min_value=0, max_value=10_000))
    constraints = []
    rows_x: list[float] = []
    rows_v: list[float] = []
    rng = np.random.default_rng(rng_seed)
    for index, (start, width, value_cap, max_rows) in enumerate(segments):
        predicate = Predicate.range("x", float(start), float(start + width))
        constraints.append(PredicateConstraint(
            predicate, ValueConstraint({"v": (0.0, float(value_cap))}),
            FrequencyConstraint(0, max_rows), name=f"seg{index}"))
    pcset = PredicateConstraintSet(constraints)
    # Build a satisfying instance: for each row pick a constraint, then a
    # point inside it respecting *all* constraints that cover that point.
    for index, (start, width, value_cap, max_rows) in enumerate(segments):
        count = int(rng.integers(0, max_rows + 1)) if max_rows else 0
        count = min(count, 10)
        for _ in range(count):
            x = float(rng.uniform(start, start + width))
            ceiling = min(cap for (s, w, cap, _m) in segments
                          if s <= x <= s + w)
            rows_x.append(x)
            rows_v.append(float(rng.uniform(0, ceiling)))
    # Respect every frequency constraint by trimming if needed.
    return pcset, segments, rows_x, rows_v


class TestBoundSoundnessProperty:
    @given(instance=random_instances())
    @settings(max_examples=40, deadline=None)
    def test_true_aggregates_fall_inside_bounds(self, instance):
        pcset, segments, rows_x, rows_v = instance
        from repro.relational.relation import Relation
        from repro.relational.schema import ColumnType, Schema

        schema = Schema.from_pairs([("x", ColumnType.FLOAT), ("v", ColumnType.FLOAT)])
        relation = Relation(schema, {"x": rows_x, "v": rows_v})
        # Only keep instances that actually satisfy the constraint set (the
        # generator usually does, but trimming interactions can break it).
        if pcset.validate_against(relation):
            return
        solver = PCBoundSolver(pcset, NO_CLOSURE)
        true_sum = float(np.sum(rows_v)) if rows_v else 0.0
        true_count = float(len(rows_v))
        sum_bound = solver.bound(AggregateFunction.SUM, "v")
        count_bound = solver.bound(AggregateFunction.COUNT)
        assert sum_bound.contains(true_sum)
        assert count_bound.contains(true_count)
        if rows_v:
            max_bound = solver.bound(AggregateFunction.MAX, "v")
            min_bound = solver.bound(AggregateFunction.MIN, "v")
            avg_bound = solver.bound(AggregateFunction.AVG, "v")
            assert max_bound.contains(max(rows_v))
            assert min_bound.contains(min(rows_v))
            assert avg_bound.contains(float(np.mean(rows_v)))
