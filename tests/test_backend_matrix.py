"""Backend-equivalence matrix: every registry backend against the oracle.

The cross-backend verification mode is only as trustworthy as the claim that
independent backends agree.  This matrix pins that claim down for every
backend registered in :mod:`repro.solvers.registry`, using the registered
capability flags instead of a hard-coded name list, so an extension backend
is automatically drafted into the oracle the moment it registers:

* **exact** backends must return ranges *equal* to the scipy reference on
  the soundness scenario;
* **inexact** backends (the LP relaxation) must return ranges that
  *contain* the reference — sound but possibly looser;
* backends that cannot solve coupled models (``greedy``) are exercised only
  on the disjoint scenario that matches their declared capability;
* unknown/unavailable backends skip rather than fail, keeping the matrix
  usable on trimmed-down installs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import (
    build_partition_pcs,
    build_random_overlapping_boxes,
)
from repro.core.predicates import Predicate
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.solvers.registry import (
    available_backends,
    backend_capabilities,
    has_backend,
)

REFERENCE = "scipy"

AGGREGATES = [
    (AggregateFunction.COUNT, None),
    (AggregateFunction.SUM, "v"),
    (AggregateFunction.AVG, "v"),
    (AggregateFunction.MIN, "v"),
    (AggregateFunction.MAX, "v"),
]


def _scenario_relation() -> Relation:
    rng = np.random.default_rng(77)
    schema = Schema.from_pairs([("t", ColumnType.FLOAT), ("v", ColumnType.FLOAT)])
    t = rng.uniform(0.0, 50.0, 300)
    v = np.round(rng.normal(20.0, 8.0, 300), 3)
    return Relation.from_rows(schema, list(zip(t.tolist(), v.tolist())),
                              name="matrix")


@pytest.fixture(scope="module")
def scenarios():
    relation = _scenario_relation()
    disjoint = build_partition_pcs(relation, ["t"], 6)
    coupled = build_random_overlapping_boxes(
        relation, ["t"], 5, rng=np.random.default_rng(5))
    regions = [None, Predicate.range("t", 10.0, 35.0)]
    return {"disjoint": (disjoint, regions), "coupled": (coupled, regions)}


def _ranges(pcset, regions, backend: str):
    solver = PCBoundSolver(pcset, BoundOptions(milp_backend=backend,
                                               check_closure=False))
    results = []
    for region in regions:
        for aggregate, attribute in AGGREGATES:
            results.append((aggregate, region,
                            solver.bound(aggregate, attribute, region,
                                         known_sum=100.0, known_count=5.0)))
    return results


def _backend_matrix() -> list[str]:
    # Materialised at collection time; has_backend re-checks at run time so
    # a backend deregistered between collection and execution skips cleanly.
    return sorted(available_backends())


@pytest.mark.parametrize("backend", _backend_matrix())
@pytest.mark.parametrize("kind", ["disjoint", "coupled"])
def test_backend_matches_reference_on_soundness_scenario(scenarios, backend,
                                                         kind):
    if not has_backend(backend):
        pytest.skip(f"backend {backend!r} is not available in this install")
    capabilities = backend_capabilities(backend)
    if kind == "coupled" and not capabilities.supports_coupling:
        pytest.skip(f"backend {backend!r} does not solve coupled models")
    pcset, regions = scenarios[kind]
    reference = _ranges(pcset, regions, REFERENCE)
    candidate = _ranges(pcset, regions, backend)
    for (aggregate, region, expected), (_, _, actual) in zip(reference,
                                                             candidate):
        label = (backend, kind, aggregate.value, repr(region))
        if capabilities.exact:
            _assert_equal_range(expected, actual, label)
        else:
            _assert_contains_range(actual, expected, label)


def _assert_equal_range(expected, actual, label) -> None:
    for first, second in ((expected.lower, actual.lower),
                          (expected.upper, actual.upper)):
        if first is None or second is None:
            assert first == second, (label, str(expected), str(actual))
        else:
            assert second == pytest.approx(first, rel=1e-6, abs=1e-6), \
                (label, str(expected), str(actual))


def _assert_contains_range(outer, inner, label) -> None:
    """``outer`` (the inexact backend) must contain ``inner`` (exact)."""
    if inner.lower is not None and outer.lower is not None:
        assert outer.lower <= inner.lower + 1e-6, \
            (label, str(outer), str(inner))
    if inner.upper is not None and outer.upper is not None:
        assert outer.upper >= inner.upper - 1e-6, \
            (label, str(outer), str(inner))


def test_every_backend_declares_capabilities():
    """The matrix premise: capability flags exist for all registered names."""
    for backend in available_backends():
        capabilities = backend_capabilities(backend)
        assert isinstance(capabilities.exact, bool)
        assert isinstance(capabilities.process_safe, bool)
        assert isinstance(capabilities.supports_coupling, bool)
