"""Unit and property tests for repro.relational.expressions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PredicateError
from repro.relational.expressions import (
    And,
    Between,
    Comparison,
    ComparisonOperator,
    FalseExpression,
    IsIn,
    Not,
    Or,
    TrueExpression,
    conjunction,
    disjunction,
)
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema

_SCHEMA = Schema.from_pairs([("x", ColumnType.FLOAT), ("tag", ColumnType.STRING)])


def make_relation(xs, tags) -> Relation:
    return Relation(_SCHEMA, {"x": xs, "tag": tags})


@pytest.fixture
def relation() -> Relation:
    return make_relation([1.0, 2.0, 3.0, 4.0], ["a", "b", "a", "c"])


class TestOperators:
    def test_apply_all_operators(self):
        assert ComparisonOperator.EQ.apply(2, 2)
        assert ComparisonOperator.NE.apply(2, 3)
        assert ComparisonOperator.LT.apply(1, 2)
        assert ComparisonOperator.LE.apply(2, 2)
        assert ComparisonOperator.GT.apply(3, 2)
        assert ComparisonOperator.GE.apply(2, 2)

    def test_negate_is_involutive(self):
        for operator in ComparisonOperator:
            assert operator.negate().negate() is operator


class TestLeafExpressions:
    def test_true_false(self, relation):
        assert TrueExpression().evaluate(relation).all()
        assert not FalseExpression().evaluate(relation).any()
        assert TrueExpression().matches_row({"x": 0})
        assert not FalseExpression().matches_row({"x": 0})
        assert TrueExpression().attributes() == set()

    def test_comparison(self, relation):
        expr = Comparison("x", ComparisonOperator.GE, 3.0)
        assert expr.evaluate(relation).tolist() == [False, False, True, True]
        assert expr.matches_row({"x": 3.5})
        assert expr.attributes() == {"x"}

    def test_between(self, relation):
        expr = Between("x", 2.0, 3.0)
        assert expr.evaluate(relation).tolist() == [False, True, True, False]
        assert expr.matches_row({"x": 2.5})
        assert not expr.matches_row({"x": 5.0})

    def test_between_rejects_inverted_bounds(self):
        with pytest.raises(PredicateError):
            Between("x", 3.0, 2.0)

    def test_isin(self, relation):
        expr = IsIn("tag", ["a", "c"])
        assert expr.evaluate(relation).tolist() == [True, False, True, True]
        assert expr.matches_row({"tag": "a"})
        assert not expr.matches_row({"tag": "b"})

    def test_isin_requires_values(self):
        with pytest.raises(PredicateError):
            IsIn("tag", [])

    def test_isin_equality_and_hash(self):
        assert IsIn("tag", ["a", "b"]) == IsIn("tag", ["b", "a"])
        assert hash(IsIn("tag", ["a"])) == hash(IsIn("tag", ["a"]))


class TestCompoundExpressions:
    def test_and_or_not(self, relation):
        in_range = Between("x", 2.0, 4.0)
        is_a = IsIn("tag", ["a"])
        both = And([in_range, is_a])
        either = Or([in_range, is_a])
        negated = Not(is_a)
        assert both.evaluate(relation).tolist() == [False, False, True, False]
        assert either.evaluate(relation).tolist() == [True, True, True, True]
        assert negated.evaluate(relation).tolist() == [False, True, False, True]
        assert both.attributes() == {"x", "tag"}

    def test_operator_sugar(self, relation):
        expr = Between("x", 2.0, 4.0) & ~IsIn("tag", ["c"])
        assert expr.evaluate(relation).tolist() == [False, True, True, False]
        union = Between("x", 0.0, 1.0) | Between("x", 4.0, 5.0)
        assert union.evaluate(relation).tolist() == [True, False, False, True]

    def test_matches_row_consistency(self, relation):
        expr = (Between("x", 1.5, 3.5) & IsIn("tag", ["a", "b"])) | \
            Comparison("x", ComparisonOperator.EQ, 4.0)
        mask = expr.evaluate(relation)
        for index, row in enumerate(relation.iter_rows()):
            assert expr.matches_row(row) == bool(mask[index])

    def test_equality_of_compounds(self):
        first = And((Between("x", 0, 1), IsIn("tag", ["a"])))
        second = And((Between("x", 0, 1), IsIn("tag", ["a"])))
        assert first == second
        assert hash(first) == hash(second)


class TestSimplifiers:
    def test_conjunction_simplification(self):
        assert isinstance(conjunction([]), TrueExpression)
        assert isinstance(conjunction([TrueExpression()]), TrueExpression)
        single = Between("x", 0, 1)
        assert conjunction([single, TrueExpression()]) is single
        assert isinstance(conjunction([single, FalseExpression()]), FalseExpression)
        assert isinstance(conjunction([single, Between("x", 2, 3)]), And)

    def test_disjunction_simplification(self):
        assert isinstance(disjunction([]), FalseExpression)
        single = Between("x", 0, 1)
        assert disjunction([single, FalseExpression()]) is single
        assert isinstance(disjunction([single, TrueExpression()]), TrueExpression)
        assert isinstance(disjunction([single, Between("x", 2, 3)]), Or)


class TestVectorisedAgainstRowAtATime:
    """Property: vectorised evaluation agrees with row-at-a-time evaluation."""

    @given(
        xs=st.lists(st.floats(min_value=-100, max_value=100,
                              allow_nan=False), min_size=1, max_size=30),
        low=st.floats(min_value=-50, max_value=50, allow_nan=False),
        width=st.floats(min_value=0, max_value=60, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_between_agrees(self, xs, low, width):
        tags = ["a"] * len(xs)
        relation = make_relation(xs, tags)
        expr = Between("x", low, low + width)
        mask = expr.evaluate(relation)
        expected = [expr.matches_row(row) for row in relation.iter_rows()]
        assert mask.tolist() == expected

    @given(
        xs=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=1, max_size=25),
        threshold=st.floats(min_value=-100, max_value=100, allow_nan=False),
        operator=st.sampled_from(list(ComparisonOperator)),
    )
    @settings(max_examples=60, deadline=None)
    def test_comparison_agrees(self, xs, threshold, operator):
        relation = make_relation(xs, ["t"] * len(xs))
        expr = Comparison("x", operator, threshold)
        mask = expr.evaluate(relation)
        expected = [expr.matches_row(row) for row in relation.iter_rows()]
        assert mask.tolist() == expected
