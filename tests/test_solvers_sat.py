"""Unit and property tests for the box satisfiability solver (Z3 substitute)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solvers.sat import (
    AttributeDomain,
    Box,
    BoxSolver,
    CategoricalSet,
    Interval,
)


class TestInterval:
    def test_emptiness(self):
        assert Interval(3, 2).is_empty()
        assert not Interval(2, 3).is_empty()
        assert Interval(2.2, 2.8, integral=True).is_empty()
        assert not Interval(2.2, 3.1, integral=True).is_empty()
        assert not Interval(integral=True).is_empty()  # unbounded integers

    def test_contains(self):
        assert Interval(1, 5).contains(3)
        assert not Interval(1, 5).contains(6)
        assert Interval(1, 5, integral=True).contains(3)
        assert not Interval(1, 5, integral=True).contains(3.5)

    def test_intersect(self):
        merged = Interval(0, 10).intersect(Interval(5, 20, integral=True))
        assert merged.low == 5 and merged.high == 10 and merged.integral

    def test_complement_pieces_cover_everything_else(self):
        pieces = Interval(2, 5).complement_pieces()
        assert len(pieces) == 2
        below, above = pieces
        assert below.high < 2
        assert above.low > 5

    def test_complement_of_unbounded_side(self):
        assert len(Interval(low=0).complement_pieces()) == 1
        assert len(Interval().complement_pieces()) == 0

    def test_integral_complement_excludes_endpoints(self):
        below, above = Interval(2, 5, integral=True).complement_pieces()
        assert below.high == 1
        assert above.low == 6

    def test_sample_point(self):
        assert Interval(1, 3).contains(Interval(1, 3).sample_point())
        assert Interval(low=4).contains(Interval(low=4).sample_point())
        assert Interval(high=-4).contains(Interval(high=-4).sample_point())
        assert Interval(2.5, 7.5, integral=True).contains(
            Interval(2.5, 7.5, integral=True).sample_point())


class TestCategoricalSet:
    def test_operations(self):
        first = CategoricalSet.of(["a", "b", "c"])
        second = CategoricalSet.of(["b", "c", "d"])
        assert first.contains("a")
        assert not first.is_empty()
        assert first.intersect(second).values == frozenset({"b", "c"})
        assert first.difference(second).values == frozenset({"a"})
        assert CategoricalSet.of([]).is_empty()

    def test_sample_point(self):
        values = CategoricalSet.of(["x", "y"])
        assert values.contains(values.sample_point())


class TestBox:
    def test_intersect_and_empty(self):
        first = Box({"x": Interval(0, 10)})
        second = Box({"x": Interval(5, 20), "y": Interval(0, 1)})
        merged = first.intersect(second)
        assert merged.constraint_for("x").low == 5
        assert not merged.is_empty()
        disjoint = first.intersect(Box({"x": Interval(11, 12)}))
        assert disjoint.is_empty()

    def test_mixed_kind_intersection_rejected(self):
        first = Box({"x": Interval(0, 1)})
        second = Box({"x": CategoricalSet.of(["a"])})
        with pytest.raises(TypeError):
            first.intersect(second)

    def test_contains_point(self):
        box = Box({"x": Interval(0, 10), "tag": CategoricalSet.of(["a"])})
        assert box.contains_point({"x": 5, "tag": "a"})
        assert not box.contains_point({"x": 50, "tag": "a"})
        assert not box.contains_point({"x": 5, "tag": "b"})
        assert not box.contains_point({"x": 5})

    def test_sample_point_respects_constraints(self):
        box = Box({"x": Interval(2, 4), "tag": CategoricalSet.of(["u", "v"])})
        point = box.sample_point()
        assert box.contains_point(point)

    def test_equality_and_repr(self):
        assert Box({"x": Interval(0, 1)}) == Box({"x": Interval(0, 1)})
        assert "TRUE" in repr(Box())


class TestBoxSolverBasics:
    def test_positive_only(self):
        solver = BoxSolver()
        assert solver.is_satisfiable([Box({"x": Interval(0, 5)}),
                                      Box({"x": Interval(3, 8)})])
        assert not solver.is_satisfiable([Box({"x": Interval(0, 2)}),
                                          Box({"x": Interval(3, 8)})])

    def test_single_negation(self):
        solver = BoxSolver()
        region = Box({"x": Interval(0, 10)})
        hole = Box({"x": Interval(0, 10)})
        assert not solver.is_satisfiable([region], [hole])
        partial_hole = Box({"x": Interval(2, 3)})
        assert solver.is_satisfiable([region], [partial_hole])

    def test_union_of_negations_covering_region(self):
        solver = BoxSolver()
        region = Box({"x": Interval(0, 10)})
        left = Box({"x": Interval(-1, 5)})
        right = Box({"x": Interval(5, 11)})
        assert not solver.is_satisfiable([region], [left, right])
        gap = Box({"x": Interval(6, 11)})
        assert solver.is_satisfiable([region], [left, gap])

    def test_two_dimensional_coverage(self):
        solver = BoxSolver()
        region = Box({"x": Interval(0, 4), "y": Interval(0, 4)})
        quadrants = [
            Box({"x": Interval(0, 2), "y": Interval(0, 2)}),
            Box({"x": Interval(0, 2), "y": Interval(2, 4)}),
            Box({"x": Interval(2, 4), "y": Interval(0, 2)}),
        ]
        # One quadrant is not excluded, so a witness exists there.
        assert solver.is_satisfiable([region], quadrants)
        quadrants.append(Box({"x": Interval(2, 4), "y": Interval(2, 4)}))
        assert not solver.is_satisfiable([region], quadrants)

    def test_categorical_negation_needs_domain(self):
        region = Box({"tag": CategoricalSet.of(["a", "b"])})
        hole = Box({"tag": CategoricalSet.of(["a"])})
        solver = BoxSolver()
        assert solver.is_satisfiable([region], [hole])
        # Negating an equality without a region constraint requires a domain.
        with pytest.raises(ValueError):
            solver.is_satisfiable([], [hole])
        solver_with_domain = BoxSolver({"tag": AttributeDomain.categorical(["a"])})
        assert not solver_with_domain.is_satisfiable([], [hole])
        wider = BoxSolver({"tag": AttributeDomain.categorical(["a", "z"])})
        assert wider.is_satisfiable([], [hole])

    def test_negation_of_true_box_excludes_everything(self):
        solver = BoxSolver()
        assert not solver.is_satisfiable([Box({"x": Interval(0, 1)})], [Box()])

    def test_integral_domain_gap(self):
        solver = BoxSolver({"k": AttributeDomain.numeric(integral=True)})
        region = Box({"k": Interval(0, 2, integral=True)})
        holes = [Box({"k": Interval(0, 0, integral=True)}),
                 Box({"k": Interval(1, 1, integral=True)}),
                 Box({"k": Interval(2, 2, integral=True)})]
        assert not solver.is_satisfiable([region], holes)
        assert solver.is_satisfiable([region], holes[:2])

    def test_find_witness(self):
        solver = BoxSolver()
        region = Box({"x": Interval(0, 10)})
        hole = Box({"x": Interval(0, 9)})
        witness = solver.find_witness([region], [hole])
        assert witness is not None
        assert 9 < witness["x"] <= 10
        assert solver.find_witness([region], [Box({"x": Interval(-1, 11)})]) is None

    def test_statistics_counted(self):
        solver = BoxSolver()
        solver.is_satisfiable([Box({"x": Interval(0, 1)})])
        assert solver.statistics.satisfiability_checks == 1


# --------------------------------------------------------------------- #
# Property test: the solver agrees with brute-force grid enumeration.
# --------------------------------------------------------------------- #
_GRID = [float(v) for v in range(0, 11)]

interval_strategy = st.tuples(
    st.integers(min_value=0, max_value=10),
    st.integers(min_value=0, max_value=10),
).map(lambda pair: Interval(float(min(pair)), float(max(pair))))

box_strategy = st.fixed_dictionaries({}, optional={
    "x": interval_strategy,
    "y": interval_strategy,
}).map(Box)


def brute_force_satisfiable(positives, negatives) -> bool:
    """Exhaustively check every integer grid point of the [0, 10]^2 domain."""
    for x in _GRID:
        for y in _GRID:
            point = {"x": x, "y": y}
            satisfies_positives = all(_contains_with_defaults(box, point)
                                      for box in positives)
            hits_negative = any(_contains_with_defaults(box, point)
                                for box in negatives)
            if satisfies_positives and not hits_negative:
                return True
    return False


def _contains_with_defaults(box: Box, point: dict) -> bool:
    for attribute, constraint in box.constraints.items():
        if attribute not in point:
            return False
        if not constraint.contains(point[attribute]):
            return False
    return True


class TestBoxSolverProperty:
    @given(
        positives=st.lists(box_strategy, min_size=0, max_size=3),
        negatives=st.lists(box_strategy, min_size=0, max_size=4),
    )
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_grid_enumeration(self, positives, negatives):
        """On integer-grid instances the solver matches brute force.

        The grid restricts attention to integer points, so a grid 'UNSAT' can
        still be solver-SAT (a witness between grid points); but whenever the
        grid finds a witness the solver must agree, and whenever the solver
        says UNSAT the grid must find no witness.
        """
        domains = {"x": AttributeDomain.numeric(0, 10),
                   "y": AttributeDomain.numeric(0, 10)}
        solver = BoxSolver(domains)
        solver_result = solver.is_satisfiable(positives, negatives)
        grid_result = brute_force_satisfiable(positives, negatives)
        if grid_result:
            assert solver_result
        if not solver_result:
            assert not grid_result

    @given(
        positives=st.lists(box_strategy, min_size=0, max_size=3),
        negatives=st.lists(box_strategy, min_size=0, max_size=3),
    )
    @settings(max_examples=80, deadline=None)
    def test_witness_actually_satisfies(self, positives, negatives):
        domains = {"x": AttributeDomain.numeric(0, 10),
                   "y": AttributeDomain.numeric(0, 10)}
        solver = BoxSolver(domains)
        witness = solver.find_witness(positives, negatives)
        if witness is None:
            return
        for box in positives:
            assert _contains_with_defaults(box, witness)
        for box in negatives:
            assert not _contains_with_defaults(box, witness)
