"""Tests for the persistent cache tier: the sqlite store, the LRU cache's
write-through/read-on-miss integration, and the service-level warm-restart
acceptance (write -> kill the process' state -> reopen -> bit-identical
answers without recomputation; a corrupted store degrades to a cold miss,
never an error).
"""

from __future__ import annotations

import sqlite3

from repro.core.bounds import BoundOptions
from repro.core.engine import ContingencyQuery
from repro.core.predicates import Predicate
from repro.service import ContingencyService, LRUCache, PersistentStore
from repro.service.store import SCHEMA_VERSION, default_cache_dir

from test_service import build_observed, build_pcset, mixed_queries

FAST = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                    avg_max_iterations=16)


class TestPersistentStore:
    def test_round_trip_across_reopen(self, tmp_path):
        store = PersistentStore(tmp_path)
        key = ("decomposition", "abc123", Predicate.range("utc", 11, 13))
        store.write("decomposition", key, {"cells": [1, 2, 3]})
        store.close()

        reopened = PersistentStore(tmp_path)
        assert reopened.read("decomposition", key) == {"cells": [1, 2, 3]}
        assert reopened.statistics.hits == 1
        reopened.close()

    def test_miss_returns_none_and_counts_read(self, tmp_path):
        store = PersistentStore(tmp_path)
        assert store.read("report", ("missing",)) is None
        assert store.statistics.reads == 1
        assert store.statistics.hits == 0
        store.close()

    def test_kinds_do_not_collide(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.write("decomposition", ("k",), "cells")
        store.write("report", ("k",), "report")
        assert store.read("decomposition", ("k",)) == "cells"
        assert store.read("report", ("k",)) == "report"
        assert store.entry_count() == 2
        assert store.entry_count("report") == 1
        store.close()

    def test_bad_row_is_a_miss_and_is_dropped(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.write("report", ("k",), "value")
        # Corrupt the pickled value in place: the row decodes no more.
        digest, _ = PersistentStore._encode_key(("k",))
        connection = sqlite3.connect(str(store.path))
        connection.execute(
            "UPDATE entries SET value = ? WHERE kind = ? AND key = ?",
            (b"not a pickle", "report", digest))
        connection.commit()
        connection.close()

        assert store.read("report", ("k",)) is None  # miss, not an exception
        assert store.statistics.errors >= 1
        assert store.entry_count("report") == 0  # the bad row was deleted
        store.close()

    def test_corrupted_file_is_recreated(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.write("report", ("k",), "value")
        store.close()
        store.path.write_bytes(b"this is not a sqlite database file")

        reopened = PersistentStore(tmp_path)
        assert reopened.read("report", ("k",)) is None  # cold, not fatal
        reopened.write("report", ("k",), "fresh")  # and usable again
        assert reopened.read("report", ("k",)) == "fresh"
        store_errors = reopened.statistics.errors
        assert store_errors >= 1
        reopened.close()

    def test_schema_version_mismatch_drops_table(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.write("report", ("k",), "value")
        store.close()
        connection = sqlite3.connect(str(store.path))
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION + 7}")
        connection.commit()
        connection.close()

        reopened = PersistentStore(tmp_path)
        assert reopened.read("report", ("k",)) is None  # unknown layout: drop
        assert reopened.entry_count() == 0
        reopened.close()

    def test_unpicklable_key_or_value_is_swallowed(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.write("report", ("k",), lambda: None)  # unpicklable value
        assert store.statistics.writes == 0
        assert store.statistics.errors == 1
        assert store.read("report", ("k",)) is None
        store.close()

    def test_keys_and_invalidate_where(self, tmp_path):
        store = PersistentStore(tmp_path)
        for index in range(4):
            store.write("report", ("fp", index), index * 10)
        assert sorted(store.keys("report")) == [("fp", 0), ("fp", 1),
                                                ("fp", 2), ("fp", 3)]
        removed = store.invalidate_where("report", lambda key: key[1] % 2 == 0)
        assert removed == 2
        assert sorted(store.keys("report")) == [("fp", 1), ("fp", 3)]
        assert store.read("report", ("fp", 1)) == 10
        store.close()

    def test_closed_store_is_inert(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.close()
        store.write("report", ("k",), "value")  # no-ops, no exceptions
        assert store.read("report", ("k",)) is None
        assert store.entry_count() == -1

    def test_unusable_directory_is_inert(self, tmp_path):
        # A file where the directory should be: mkdir fails, and the
        # store must degrade to a permanently cold tier, not raise.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        store = PersistentStore(blocker / "cache")
        assert store.statistics.errors == 1
        store.write("report", ("k",), "value")
        assert store.read("report", ("k",)) is None
        assert store.statistics.hits == 0
        assert store.statistics.writes == 0
        assert store.entry_count() == -1
        store.close()

    def test_default_cache_dir_reads_environment(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert default_cache_dir() is None
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
        monkeypatch.setenv("REPRO_CACHE_DIR", "   ")
        assert default_cache_dir() is None


class TestLRUCacheStoreIntegration:
    def test_put_writes_through_and_miss_promotes(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = LRUCache(max_entries=8, name="report")
        cache.attach_store(store)
        cache.put(("k",), "value")
        assert store.entry_count("report") == 1

        cache.clear()  # drop memory; the store keeps the entry
        assert cache.get(("k",)) == "value"  # promoted from the store
        assert cache.statistics.misses == 1  # memory miss still counted
        assert store.statistics.hits == 1
        assert cache.peek(("k",)) == "value"  # now resident in memory
        # Promotion must not write back: still exactly one store write.
        assert store.statistics.writes == 1
        store.close()

    def test_capacity_eviction_keeps_store_rows(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = LRUCache(max_entries=2, name="report")
        cache.attach_store(store)
        for index in range(4):
            cache.put(("k", index), index)
        assert cache.statistics.evictions == 2
        assert store.entry_count("report") == 4  # evicted but not erased
        assert cache.get(("k", 0)) == 0  # re-readable from disk
        store.close()

    def test_invalidate_where_removes_both_tiers(self, tmp_path):
        store = PersistentStore(tmp_path)
        cache = LRUCache(max_entries=8, name="report")
        cache.attach_store(store)
        cache.put(("keep",), 1)
        cache.put(("drop",), 2)
        removed = cache.invalidate_where(lambda key: key[0] == "drop")
        assert removed == 1
        assert cache.statistics.invalidations == 1
        assert cache.statistics.evictions == 0  # invalidation != eviction
        assert store.entry_count("report") == 1
        cache.clear()
        assert cache.get(("drop",)) is None  # cannot resurrect from disk
        assert cache.get(("keep",)) == 1
        store.close()

    def test_invalidate_where_without_store(self):
        cache = LRUCache(max_entries=8, name="plain")
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.invalidate_where(lambda key: key == "a") == 1
        assert cache.statistics.invalidations == 1
        assert "a" not in cache and "b" in cache


class TestServiceWarmRestart:
    def test_restart_answers_from_store_without_recompute(self, tmp_path):
        """Acceptance: write -> kill -> reopen -> bit-identical, no solves."""
        query = ContingencyQuery.sum("price", Predicate.range("utc", 11, 13))
        with ContingencyService(max_workers=2,
                                cache_dir=str(tmp_path)) as cold:
            cold.register("outage", build_pcset(), observed=build_observed(),
                          options=FAST)
            first = cold.analyze("outage", query)
            assert cold.store.statistics.writes >= 1

        with ContingencyService(max_workers=2,
                                cache_dir=str(tmp_path)) as warm:
            warm.register("outage", build_pcset(), observed=build_observed(),
                          options=FAST)
            second = warm.analyze("outage", ContingencyQuery.sum(
                "price", Predicate.range("utc", 11, 13)))
            statistics = warm.statistics()
            assert statistics.decompositions_computed == 0  # nothing solved
            assert statistics.store is not None
            assert statistics.store["hits"] >= 1
            assert "persistent store" in statistics.summary()

        assert second.result_range.lower == first.result_range.lower
        assert second.result_range.upper == first.result_range.upper
        assert second.missing_range.lower == first.missing_range.lower
        assert second.missing_range.upper == first.missing_range.upper
        assert second.observed_value == first.observed_value

    def test_restart_batch_round_trip_bit_identical(self, tmp_path):
        queries = mixed_queries(15)
        with ContingencyService(max_workers=2,
                                cache_dir=str(tmp_path)) as cold:
            cold.register("outage", build_pcset(), observed=build_observed(),
                          options=FAST)
            first = cold.execute_batch("outage", queries)

        with ContingencyService(max_workers=2,
                                cache_dir=str(tmp_path)) as warm:
            warm.register("outage", build_pcset(), observed=build_observed(),
                          options=FAST)
            second = warm.execute_batch("outage", queries)
            assert warm.statistics().decompositions_computed == 0

        for a, b in zip(first.reports, second.reports):
            assert a.result_range.lower == b.result_range.lower
            assert a.result_range.upper == b.result_range.upper
            assert a.missing_range.lower == b.missing_range.lower
            assert a.missing_range.upper == b.missing_range.upper
            assert a.observed_value == b.observed_value

    def test_corrupted_store_degrades_to_cold_miss(self, tmp_path):
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        with ContingencyService(max_workers=1,
                                cache_dir=str(tmp_path)) as cold:
            cold.register("outage", build_pcset(), observed=build_observed(),
                          options=FAST)
            first = cold.analyze("outage", query)
            store_path = cold.store.path
        store_path.write_bytes(b"\x00" * 64)  # truncated garbage

        with ContingencyService(max_workers=1,
                                cache_dir=str(tmp_path)) as recovered:
            recovered.register("outage", build_pcset(),
                               observed=build_observed(), options=FAST)
            second = recovered.analyze("outage", ContingencyQuery.count(
                Predicate.range("utc", 11, 13)))
            # Cold recompute, same answer; the file was recreated in place.
            assert recovered.statistics().decompositions_computed >= 1
        assert second.result_range.lower == first.result_range.lower
        assert second.result_range.upper == first.result_range.upper

    def test_environment_toggle_enables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with ContingencyService(max_workers=1) as service:
            assert service.store is not None
            assert service.store.path.parent == tmp_path

    def test_no_cache_dir_means_no_store(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        with ContingencyService(max_workers=1) as service:
            assert service.store is None
            assert service.statistics().store is None

    def test_store_survives_cache_clear(self, tmp_path):
        """clear_caches is a memory valve: the store still warms a restart."""
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        with ContingencyService(max_workers=1,
                                cache_dir=str(tmp_path)) as service:
            service.register("outage", build_pcset(), options=FAST)
            service.analyze("outage", query)
            service.clear_caches()
            service.analyze("outage", ContingencyQuery.count(
                Predicate.range("utc", 11, 13)))
            # The post-clear query was answered from the persistent tier.
            assert service.statistics().decompositions_computed == 1
            assert service.store.statistics.hits >= 1
