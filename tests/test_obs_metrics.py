"""The metrics registry: instruments, thread safety, timed() plumbing."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
    timed,
)


@pytest.fixture
def registry():
    """Swap in a fresh global registry, restoring the previous afterwards."""
    fresh = MetricsRegistry()
    previous = set_registry(fresh)
    yield fresh
    set_registry(previous)


class TestCounter:
    def test_counts_and_exposes_value(self):
        counter = Counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increments(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3.0


class TestHistogram:
    def test_percentiles_on_known_inputs(self):
        """1..1000 ms uniformly: percentiles land within bucket resolution."""
        histogram = Histogram("latency")
        values = [i / 1000.0 for i in range(1, 1001)]  # 1ms .. 1000ms
        for value in values:
            histogram.observe(value)
        assert histogram.count == 1000
        assert histogram.sum == pytest.approx(sum(values))
        # Exact percentiles are 0.5s / 0.95s / 0.99s; the fixed buckets
        # around them are (0.25, 0.5], (0.5, 1.0] — interpolation must land
        # inside the right bucket, i.e. within a factor ~2 of truth.
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 0.25 <= p50 <= 0.75
        assert 0.5 <= p95 <= 1.0
        assert 0.5 <= p99 <= 1.0
        assert p50 <= p95 <= p99

    def test_percentiles_clamped_to_observed_extremes(self):
        histogram = Histogram("latency")
        for _ in range(10):
            histogram.observe(0.003)
        assert histogram.percentile(0.0) == pytest.approx(0.003)
        assert histogram.percentile(1.0) == pytest.approx(0.003)
        assert histogram.percentile(0.5) == pytest.approx(0.003)

    def test_empty_percentile_is_none(self):
        assert Histogram("latency").percentile(0.5) is None

    def test_overflow_bucket_catches_outliers(self):
        histogram = Histogram("latency", buckets=[0.1, 1.0])
        histogram.observe(50.0)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["max"] == 50.0
        assert snapshot["p99"] == pytest.approx(50.0)

    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            Histogram("latency").percentile(1.5)


class TestRegistry:
    def test_create_on_first_use_and_identity(self, registry):
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1

    def test_kind_conflict_raises(self, registry):
        registry.counter("x")
        with pytest.raises(ValueError, match="already a counter"):
            registry.gauge("x")

    def test_empty_snapshot_and_render(self, registry):
        snapshot = registry.snapshot()
        assert snapshot == {"counters": {}, "gauges": {}, "histograms": {}}
        assert registry.render() == "(no metrics recorded)"

    def test_snapshot_is_plain_data(self, registry):
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3.0}
        assert snapshot["gauges"] == {"g": 1.5}
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_thread_safety_under_concurrent_increments(self, registry):
        """N threads x M increments on one counter lose no updates."""
        threads_count, per_thread = 8, 2500
        counter = registry.counter("contested")
        histogram = registry.histogram("contested_latency")
        barrier = threading.Barrier(threads_count)

        def hammer():
            barrier.wait()
            for _ in range(per_thread):
                counter.inc()
                histogram.observe(0.001)

        threads = [threading.Thread(target=hammer)
                   for _ in range(threads_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == threads_count * per_thread
        assert histogram.count == threads_count * per_thread

    def test_concurrent_instrument_creation_yields_one_instrument(self,
                                                                  registry):
        instruments = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            instruments.append(registry.counter("raced"))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(instrument) for instrument in instruments}) == 1


class TestTimed:
    def test_records_into_named_histogram(self, registry):
        with timed("block_seconds") as timer:
            pass
        assert timer.seconds >= 0.0
        assert registry.histogram("block_seconds").count == 1

    def test_timer_seconds_live_then_final(self, registry):
        with timed("block_seconds") as timer:
            live = timer.seconds
            assert live >= 0.0
        final = timer.seconds
        assert final == timer.seconds  # frozen after exit

    def test_decorator_form(self, registry):
        @timed("fn_seconds")
        def work(x):
            return x * 2

        assert work(21) == 42
        assert registry.histogram("fn_seconds").count == 1

    def test_explicit_registry_wins(self, registry):
        private = MetricsRegistry()
        with timed("t", registry=private):
            pass
        assert private.histogram("t").count == 1
        assert get_registry().histogram("t").count == 0

    def test_records_even_when_block_raises(self, registry):
        with pytest.raises(RuntimeError):
            with timed("err_seconds"):
                raise RuntimeError("boom")
        assert registry.histogram("err_seconds").count == 1
