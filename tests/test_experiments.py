"""Tests for the experiment harness and tiny-scale runs of every experiment.

Each paper figure/table has a smoke test at a very small scale that checks
the *shape* the paper reports (hard-bound methods never fail, informed PCs
are tighter than random ones, the edge-cover bound beats elastic
sensitivity, DFS prunes cells, ...).  The benchmarks re-run the same
entry points at a larger scale.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import (
    Figure1Config,
    Figure3Config,
    Figure5Config,
    Figure6Config,
    Figure7Config,
    Figure8Config,
    Figure9Config,
    Figure10Config,
    Figure12Config,
    MissingRatioSweepConfig,
    Table1Config,
    Table2Config,
    airbnb_setup,
    border_setup,
    evaluate_estimator,
    intel_setup,
    run_figure1,
    run_figure3,
    run_figure5,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure12,
    run_missing_ratio_sweep,
    run_table1,
    run_table2,
    standard_estimators,
)
from repro.experiments.estimators import CorrPCEstimator, RandPCEstimator
from repro.experiments.harness import EvaluationMetrics
from repro.experiments.reporting import format_mapping_table, format_series, format_table
from repro.core.engine import ContingencyQuery
from repro.relational.aggregates import AggregateFunction
from repro.workloads.missing import remove_correlated
from repro.workloads.queries import QueryWorkloadSpec, generate_query_workload


# --------------------------------------------------------------------- #
# Harness and reporting
# --------------------------------------------------------------------- #
class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", math.inf]])
        assert "a" in text and "inf" in text and "|" in text

    def test_format_mapping_table(self):
        text = format_mapping_table([{"k": 1, "v": 2}, {"k": 3, "v": 4}])
        assert "k" in text and "3" in text
        assert format_mapping_table([]) == "(no rows)"

    def test_format_series(self):
        text = format_series("demo", [1, 2], [3, 4])
        assert text.startswith("# demo")


class TestHarness:
    @pytest.fixture(scope="class")
    def workload(self):
        setup = intel_setup(num_rows=2_000, num_constraints=36)
        scenario = remove_correlated(setup.relation, 0.4, setup.target)
        spec = QueryWorkloadSpec(AggregateFunction.SUM, setup.target,
                                 setup.predicate_attributes, num_queries=15)
        queries = generate_query_workload(setup.relation, spec, seed=3)
        return setup, scenario, queries

    def test_metrics_accumulate(self, workload):
        setup, scenario, queries = workload
        estimator = CorrPCEstimator(setup.target, setup.num_constraints,
                                    candidates=list(setup.pc_attributes))
        estimator.fit(scenario.missing)
        metrics = evaluate_estimator(estimator, queries, scenario.missing)
        assert metrics.num_queries == len(queries)
        assert metrics.num_failures == 0
        assert metrics.median_over_estimation >= 1.0
        assert metrics.seconds_per_query >= 0.0
        row = metrics.as_row()
        assert row["failures"] == 0

    def test_empty_metrics_defaults(self):
        metrics = EvaluationMetrics(estimator="none")
        assert metrics.failure_rate == 0.0
        assert metrics.median_over_estimation == 1.0
        assert metrics.seconds_per_query == 0.0

    def test_standard_estimator_lineup(self):
        setup = intel_setup(num_rows=1_000, num_constraints=16)
        estimators = standard_estimators(setup, include=("Corr-PC", "US-1n", "Gen"))
        assert set(estimators) == {"Corr-PC", "US-1n", "Gen"}
        with pytest.raises(KeyError):
            standard_estimators(setup, include=("Unknown",))

    def test_pc_estimators_never_fail_and_corr_is_tighter(self, workload):
        """The paper's central claims at miniature scale."""
        setup, scenario, queries = workload
        corr = CorrPCEstimator(setup.target, setup.num_constraints,
                               candidates=list(setup.pc_attributes))
        rand = RandPCEstimator(setup.pc_attributes, setup.num_constraints,
                               target=setup.target, seed=11)
        corr.fit(scenario.missing)
        rand.fit(scenario.missing)
        corr_metrics = evaluate_estimator(corr, queries, scenario.missing)
        rand_metrics = evaluate_estimator(rand, queries, scenario.missing)
        assert corr_metrics.num_failures == 0
        assert rand_metrics.num_failures == 0
        assert corr_metrics.median_over_estimation <= \
            rand_metrics.median_over_estimation * 1.5


# --------------------------------------------------------------------- #
# Per-figure smoke tests (tiny scale)
# --------------------------------------------------------------------- #
class TestFigureRuns:
    def test_figure1_error_grows_with_missingness(self):
        result = run_figure1(Figure1Config(num_rows=2_000,
                                           missing_fractions=(0.1, 0.5, 0.9)))
        errors = [row["relative_error"] for row in result.rows]
        assert errors[0] < errors[-1]
        assert errors[-1] > 0.5
        assert "Figure 1" in result.to_text()

    def test_figure3_hard_bounds_never_fail(self):
        config = Figure3Config(num_rows=2_000, num_constraints=36, num_queries=12,
                               missing_fractions=(0.3, 0.7))
        result = run_figure3(config)
        for row in result.rows:
            if row["estimator"] in ("Corr-PC", "Rand-PC", "Histogram"):
                assert row["failures"] == 0
        assert result.series("Corr-PC", "failure_%")

    def test_missing_ratio_sweep_sum(self):
        setup = intel_setup(num_rows=2_000, num_constraints=36)
        result = run_missing_ratio_sweep(
            setup, MissingRatioSweepConfig(aggregate=AggregateFunction.SUM,
                                           missing_fractions=(0.5,),
                                           num_queries=10,
                                           estimators=("Corr-PC", "US-1n")))
        assert len(result.rows) == 2

    def test_table1_tradeoff(self):
        result = run_table1(Table1Config(confidence_levels=(0.8, 0.9999),
                                         num_queries=20, num_rows=2_000,
                                         num_constraints=36))
        assert result.corr_pc_failure_percent == 0.0
        low_conf, high_conf = result.sampling_rows
        assert low_conf["over_estimation"] <= high_conf["over_estimation"] + 1e-9
        assert "Table 1" in result.to_text()

    def test_figure5_sampling_tightens_with_size(self):
        result = run_figure5(Figure5Config(sample_multipliers=(1, 10),
                                           num_queries=15, num_rows=2_000,
                                           num_constraints=36))
        sum_rows = [row for row in result.rows if row["aggregate"] == "SUM"
                    and row["estimator"].startswith("US")]
        assert sum_rows[0]["median_overest"] >= sum_rows[-1]["median_overest"] - 1e-9

    def test_figure6_noise_increases_failures(self):
        result = run_figure6(Figure6Config(noise_levels=(0.0, 3.0), num_queries=15,
                                           num_rows=2_000, num_constraints=25,
                                           overlapping_constraints=6))
        clean = [row for row in result.rows if row["noise_sd"] == 0.0]
        noisy = [row for row in result.rows if row["noise_sd"] == 3.0]
        assert all(row["failure_%"] == 0.0 for row in clean
                   if row["technique"] != "US-10n")
        assert sum(row["failure_%"] for row in noisy) >= \
            sum(row["failure_%"] for row in clean)

    def test_figure7_optimisations_prune(self):
        result = run_figure7(Figure7Config(num_constraints=8, num_rows=1_000))
        naive = result.cells_evaluated("naive")
        dfs = result.cells_evaluated("dfs")
        rewrite = result.cells_evaluated("dfs-rewrite")
        assert naive == 2 ** 8
        assert rewrite <= dfs
        # All strategies agree on the satisfiable cells.
        satisfiable = {row["satisfiable_cells"] for row in result.rows}
        assert len(satisfiable) == 1

    def test_figure8_latency_grows_with_partitions(self):
        result = run_figure8(Figure8Config(partition_sizes=(25, 100), num_queries=4,
                                           num_rows=2_000))
        assert len(result.rows) == 2
        assert all(row["ms_per_query"] > 0 for row in result.rows)

    def test_figure9_min_max_optimal(self):
        result = run_figure9(Figure9Config(num_queries=10, num_rows=2_000,
                                           num_constraints=36))
        by_aggregate = {row["aggregate"]: row for row in result.rows}
        assert by_aggregate["MIN"]["failure_%"] == 0.0
        assert by_aggregate["MAX"]["failure_%"] == 0.0
        assert by_aggregate["AVG"]["failure_%"] == 0.0
        assert by_aggregate["MAX"]["median_overest"] >= 1.0

    def test_figure10_airbnb_shapes(self):
        config = Figure10Config(num_rows=2_000, num_constraints=36, num_queries=12)
        result = run_figure10(config)
        corr = result.median_overestimation("SUM", "Corr-PC")
        rand = result.median_overestimation("SUM", "Rand-PC")
        assert corr <= rand * 1.5
        for row in result.rows:
            if row["estimator"] in ("Corr-PC", "Rand-PC", "Histogram"):
                assert row["failures"] == 0

    def test_figure12_fec_tighter_than_elastic(self):
        result = run_figure12(Figure12Config(table_sizes=(10, 1000),
                                             exact_join_limit=100))
        for rows in (result.triangle_rows, result.chain_rows):
            for row in rows:
                assert row["fec_bound"] <= row["elastic_bound"] + 1e-9
        # The gap grows with the table size (orders of magnitude at 1000).
        large_triangle = result.bound("triangle", 1000, "elastic_bound") / \
            result.bound("triangle", 1000, "fec_bound")
        small_triangle = result.bound("triangle", 10, "elastic_bound") / \
            result.bound("triangle", 10, "fec_bound")
        assert large_triangle > small_triangle
        # True counts (when computed) are dominated by every bound.
        for row in result.triangle_rows:
            if "true_count" in row:
                assert row["true_count"] <= row["fec_bound"] + 1e-9

    def test_table2_hard_bounds_have_zero_failures(self):
        config = Table2Config(datasets=("intel_wireless",), num_queries=10,
                              num_rows=2_000, num_constraints=36,
                              estimators=("Corr-PC", "Histogram", "US-1p", "US-1n"))
        result = run_table2(config)
        assert len(result.rows) == 6  # 2 query types x 3 predicate-attribute sets
        for row in result.rows:
            assert row["Corr-PC"] == 0
            assert row["Histogram"] == 0
        assert "Table 2" in result.to_text()
        assert result.failures("intel_wireless", "COUNT(*)", "device_id", "Corr-PC") == 0
