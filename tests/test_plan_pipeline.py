"""Tests for the plan pipeline: IR, optimizer passes, compiled programs.

Two properties anchor this module:

* **optimizer passes preserve bounds** — every pass (region pruning,
  duplicate merging) yields the same result range as the unoptimized plan,
  and strategy selection under a cell budget can only loosen, never cross,
  the exact range;
* **compile-once equals rebuild-per-solve** — the compiled-program path
  (skeleton + parameter patching) returns the same ranges as the
  pre-pipeline behaviour of rebuilding every MILP from scratch, across the
  soundness suite's scenario and all five aggregates.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import build_corr_pcs
from repro.core.cells import DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.core.ranges import ResultRange
from repro.datasets.intel_wireless import generate_intel_wireless
from repro.exceptions import SolverError
from repro.experiments.reporting import format_result_range_table, intersect_ranges
from repro.plan import BoundQuery, build_plan, optimize_plan
from repro.plan.passes import (
    ConstraintMergingPass,
    ObservedCellStatistics,
    RegionPruningPass,
    StrategySelectionPass,
)
from repro.relational.aggregates import AggregateFunction
from repro.service import ContingencyService
from repro.solvers.registry import (
    available_backends,
    register_backend,
    resolve_backend,
)
from repro.workloads.missing import remove_correlated
from repro.workloads.queries import QueryWorkloadSpec, generate_query_workload

NO_CLOSURE = BoundOptions(check_closure=False)
ALL_AGGREGATES = [
    (AggregateFunction.COUNT, None),
    (AggregateFunction.SUM, "price"),
    (AggregateFunction.AVG, "price"),
    (AggregateFunction.MIN, "price"),
    (AggregateFunction.MAX, "price"),
]


def pc(low, high, value_high, max_rows, min_rows=0, name="pc"):
    return PredicateConstraint(
        Predicate.range("utc", low, high),
        ValueConstraint({"price": (0.0, value_high)}),
        FrequencyConstraint(min_rows, max_rows), name=name)


def window_pcset() -> PredicateConstraintSet:
    """Six hour-window constraints, two of them far from the query region."""
    return PredicateConstraintSet([
        pc(10, 12, 100.0, 20, name="w1"),
        pc(11, 13, 150.0, 25, name="w2"),
        pc(12, 14, 120.0, 15, name="w3"),
        pc(40, 42, 500.0, 30, name="far-optional"),
        pc(50, 52, 700.0, 10, min_rows=3, name="far-mandatory"),
        pc(60, 62, 900.0, 5, name="far-optional-2"),
    ])


def assert_ranges_equal(left: ResultRange, right: ResultRange,
                        rel: float = 1e-9) -> None:
    for a, b in ((left.lower, right.lower), (left.upper, right.upper)):
        if a is None or b is None:
            assert a == b
        else:
            assert a == pytest.approx(b, rel=rel, abs=1e-9)


class TestBoundPlanIR:
    def test_build_plan_from_contingency_query(self):
        pcset = window_pcset()
        query = ContingencyQuery.sum("price", Predicate.range("utc", 11, 13))
        plan = build_plan(query, pcset, NO_CLOSURE)
        assert plan.query.aggregate is AggregateFunction.SUM
        assert plan.query.attribute == "price"
        assert plan.pcset is pcset and plan.source_pcset is pcset
        assert not plan.is_optimized

    def test_describe_renders_trace(self):
        pcset = window_pcset()
        plan = optimize_plan(build_plan(
            ContingencyQuery.count(Predicate.range("utc", 11, 13)),
            pcset, NO_CLOSURE))
        text = plan.describe()
        assert "plan: COUNT(*)" in text
        assert "region-pruning" in text

    def test_analyzer_plan_for_is_introspection_only(self):
        analyzer = PCAnalyzer(window_pcset(), options=NO_CLOSURE)
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        plan = analyzer.plan_for(query)
        assert plan.num_constraints < len(window_pcset())
        # Introspection did not compile anything.
        assert analyzer.solver.programs_compiled == 0


class TestRegionPruningPass:
    def test_constraints_outside_region_are_dropped(self):
        plan = build_plan(
            BoundQuery(AggregateFunction.COUNT, None,
                       Predicate.range("utc", 11, 13)),
            window_pcset(), NO_CLOSURE)
        optimized = RegionPruningPass()(plan)
        names = [pc.name for pc in optimized.pcset]
        # Overlapping windows stay; far optional constraints go; the far
        # *mandatory* constraint must stay (it forces rows to exist).
        assert names == ["w1", "w2", "w3", "far-mandatory"]
        assert optimized.trace and "region-pruning" in optimized.trace[0]

    def test_no_region_means_no_pruning(self):
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), window_pcset(),
                          NO_CLOSURE)
        assert RegionPruningPass()(plan) is plan

    @pytest.mark.parametrize("aggregate,attribute", ALL_AGGREGATES)
    def test_pruning_preserves_bounds(self, aggregate, attribute):
        region = Predicate.range("utc", 11, 13)
        optimized = PCBoundSolver(window_pcset(), NO_CLOSURE)
        raw = PCBoundSolver(window_pcset(),
                            BoundOptions(check_closure=False, optimize=False))
        assert_ranges_equal(
            optimized.bound(aggregate, attribute, region,
                            known_sum=30.0, known_count=2.0),
            raw.bound(aggregate, attribute, region,
                      known_sum=30.0, known_count=2.0),
            rel=1e-6)


class TestConstraintMergingPass:
    def duplicated_pcset(self) -> PredicateConstraintSet:
        return PredicateConstraintSet([
            pc(10, 12, 100.0, 20, name="a"),
            pc(10, 12, 80.0, 30, min_rows=1, name="b"),  # same predicate as a
            pc(12, 14, 120.0, 15, name="c"),
        ])

    def test_identical_predicates_merge(self):
        plan = build_plan(BoundQuery(AggregateFunction.COUNT),
                          self.duplicated_pcset(), NO_CLOSURE)
        optimized = ConstraintMergingPass()(plan)
        assert len(optimized.pcset) == 2
        merged = optimized.pcset[0]
        assert merged.name == "a&b"
        # Frequency intervals intersect, value constraints intersect.
        assert merged.min_rows() == 1 and merged.max_rows() == 20
        assert merged.values.upper("price") == 80.0

    def test_mandatory_member_with_wider_values_left_unmerged(self):
        """Merging must not tighten MIN/MAX's forced-extremum scan.

        The mandatory constraint's own value bounds (0..10) are wider than
        the group intersection (5..10); merging would change MAX's lower
        endpoint from 0 to 5 — sound but not identical, so it is skipped.
        """
        pcset = PredicateConstraintSet([
            PredicateConstraint(Predicate.range("utc", 10, 12),
                                ValueConstraint({"price": (0.0, 10.0)}),
                                FrequencyConstraint(1, 20), name="wide-mandatory"),
            PredicateConstraint(Predicate.range("utc", 10, 12),
                                ValueConstraint({"price": (5.0, 10.0)}),
                                FrequencyConstraint(0, 30), name="narrow"),
        ])
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset, NO_CLOSURE)
        assert len(ConstraintMergingPass()(plan).pcset) == 2
        for aggregate, attribute in ALL_AGGREGATES:
            assert_ranges_equal(
                PCBoundSolver(pcset, NO_CLOSURE).bound(aggregate, attribute),
                PCBoundSolver(pcset, BoundOptions(
                    check_closure=False, optimize=False)).bound(aggregate,
                                                                attribute),
                rel=1e-6)

    def test_incompatible_frequencies_left_unmerged(self):
        pcset = PredicateConstraintSet([
            pc(10, 12, 100.0, 5, name="low"),
            pc(10, 12, 100.0, 20, min_rows=10, name="high"),
        ])
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset, NO_CLOSURE)
        optimized = ConstraintMergingPass()(plan)
        assert len(optimized.pcset) == 2  # jointly unsatisfiable, kept as-is

    @pytest.mark.parametrize("aggregate,attribute", ALL_AGGREGATES)
    def test_merging_preserves_bounds(self, aggregate, attribute):
        optimized = PCBoundSolver(self.duplicated_pcset(), NO_CLOSURE)
        raw = PCBoundSolver(self.duplicated_pcset(),
                            BoundOptions(check_closure=False, optimize=False))
        assert_ranges_equal(
            optimized.bound(aggregate, attribute),
            raw.bound(aggregate, attribute),
            rel=1e-6)


class TestStrategySelectionPass:
    def overlapping_pcset(self, count=10) -> PredicateConstraintSet:
        constraints = [pc(i * 0.5, i * 0.5 + 1.0, 50.0 + i, 10, name=f"o{i}")
                       for i in range(count)]
        return PredicateConstraintSet(constraints)

    def test_budget_sets_early_stop_depth(self):
        options = BoundOptions(check_closure=False, cell_budget=16)
        plan = optimize_plan(build_plan(BoundQuery(AggregateFunction.COUNT),
                                        self.overlapping_pcset(), options))
        assert plan.early_stop_depth == 4
        assert any("strategy-selection" in note for note in plan.trace)

    def test_no_budget_keeps_exact_enumeration(self):
        plan = optimize_plan(build_plan(BoundQuery(AggregateFunction.COUNT),
                                        self.overlapping_pcset(), NO_CLOSURE))
        assert plan.early_stop_depth is None

    def test_explicit_depth_wins_over_budget(self):
        options = BoundOptions(check_closure=False, cell_budget=16,
                               early_stop_depth=7)
        plan = optimize_plan(build_plan(BoundQuery(AggregateFunction.COUNT),
                                        self.overlapping_pcset(), options))
        assert plan.early_stop_depth == 7

    def test_disjoint_sets_ignore_budget(self):
        pcset = PredicateConstraintSet(
            [pc(float(i), i + 0.5, 10.0, 5, name=f"d{i}") for i in range(10)])
        options = BoundOptions(check_closure=False, cell_budget=4)
        plan = optimize_plan(build_plan(BoundQuery(AggregateFunction.COUNT),
                                        pcset, options))
        assert plan.early_stop_depth is None

    def test_budgeted_bounds_contain_exact_bounds(self):
        """Early stopping may loosen but never cross the exact range."""
        pcset = self.overlapping_pcset()
        exact = PCBoundSolver(pcset, NO_CLOSURE)
        budgeted = PCBoundSolver(
            self.overlapping_pcset(),
            BoundOptions(check_closure=False, cell_budget=8))
        for aggregate, attribute in ALL_AGGREGATES:
            tight = exact.bound(aggregate, attribute)
            loose = budgeted.bound(aggregate, attribute)
            if tight.lower is not None and loose.lower is not None:
                assert loose.lower <= tight.lower + 1e-6
            if tight.upper is not None and loose.upper is not None:
                assert loose.upper >= tight.upper - 1e-6


class TestAdaptiveCellBudget:
    """Measured cell counts replace the worst-case 2^n estimate."""

    def statistics(self, num_constraints: int, cells: int, assumed: int = 0):
        from repro.core.cells import DecompositionStatistics

        return DecompositionStatistics(num_constraints=num_constraints,
                                       satisfiable_cells=cells,
                                       assumed_satisfiable=assumed)

    def test_feed_needs_minimum_samples(self):
        feed = ObservedCellStatistics()
        feed.observe(self.statistics(8, 20))
        feed.observe(self.statistics(8, 24))
        assert feed.estimate(10) is None
        feed.observe(self.statistics(8, 16))
        assert feed.estimate(10) is not None

    def test_feed_ignores_early_stopped_decompositions(self):
        feed = ObservedCellStatistics()
        for _ in range(5):
            feed.observe(self.statistics(8, 200, assumed=64))
        assert feed.sample_count == 0
        assert feed.estimate(10) is None

    def test_estimate_scales_max_observed_density(self):
        feed = ObservedCellStatistics()
        # Densities: 17/255, 25/255, 20/255 — the max (25/255) wins, so
        # the estimate stays conservative on the cost axis.
        for cells in (17, 25, 20):
            feed.observe(self.statistics(8, cells))
        estimate = feed.estimate(10)
        assert estimate == math.ceil((25 / 255) * 1023)
        # Larger-set samples never inform a smaller set: scaling a big
        # sparse set's density down would bypass the cell-budget guard.
        assert feed.estimate(2) is None
        feed.observe(self.statistics(8, 255))  # density 1.0
        assert feed.estimate(10) == 1023

    def sparse_feed(self) -> ObservedCellStatistics:
        """A feed whose measurements say: ~2% of subsets are satisfiable."""
        feed = ObservedCellStatistics()
        for cells in (5, 6, 5):
            feed.observe(self.statistics(8, cells))
        return feed

    def test_observed_estimate_avoids_needless_early_stop(self):
        pcset = TestStrategySelectionPass().overlapping_pcset()
        options = BoundOptions(check_closure=False, cell_budget=64)
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset, options)
        # Worst case (2^10) blows the budget: early stop engages...
        worst_case = StrategySelectionPass()(plan)
        assert worst_case.early_stop_depth is not None
        # ...but measured density (~24 cells predicted) fits it: exact.
        adaptive = StrategySelectionPass(self.sparse_feed())(plan)
        assert adaptive.early_stop_depth is None

    def test_observed_estimate_still_early_stops_dense_sets(self):
        feed = ObservedCellStatistics()
        for cells in (200, 210, 205):  # dense (but measured) overlap
            feed.observe(self.statistics(8, cells))
        pcset = TestStrategySelectionPass().overlapping_pcset()
        options = BoundOptions(check_closure=False, cell_budget=64)
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset, options)
        adaptive = StrategySelectionPass(feed)(plan)
        assert adaptive.early_stop_depth is not None
        assert any("observed" in note for note in adaptive.trace)

    def test_large_sparse_sample_never_disables_budget_for_small_sets(self):
        """A near-disjoint 30-constraint sample (vanishing density) must not
        talk a dense 10-constraint set out of its cell budget."""
        feed = ObservedCellStatistics()
        for _ in range(3):
            feed.observe(self.statistics(30, 35))  # density ~3e-8
        assert feed.estimate(10) is None
        pcset = TestStrategySelectionPass().overlapping_pcset()
        options = BoundOptions(check_closure=False, cell_budget=16)
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset, options)
        guarded = StrategySelectionPass(feed)(plan)
        assert guarded.early_stop_depth is not None  # budget guard intact

    def test_adaptive_depth_is_pinned_and_travels_in_the_pickle(self):
        """Cache keys stay stable as the feed learns, and a pickled solver
        (a pool worker's copy) computes the parent's keys for resolved
        pairs — the warm-shipping protocol depends on it."""
        import pickle

        pcset = TestStrategySelectionPass().overlapping_pcset()
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False,
                                                   cell_budget=16))
        key_before = solver.program_key(None, "price")
        # Learning new densities must not move an already-resolved pair.
        for cells in (5, 6, 5):
            solver.cell_statistics.observe(
                TestAdaptiveCellBudget().statistics(8, cells))
        assert solver.program_key(None, "price") == key_before
        worker_copy = pickle.loads(pickle.dumps(solver))
        assert worker_copy.program_key(None, "price") == key_before

    def test_worker_pin_matches_parent_keys_for_late_pairs(self):
        """The analyze-task depth handshake: a worker whose copy predates a
        pair's resolution adopts the parent's decision and computes the
        parent's program key (pre-ship warm programs depend on it)."""
        import pickle

        pcset = TestStrategySelectionPass().overlapping_pcset()
        parent = PCBoundSolver(pcset, BoundOptions(check_closure=False,
                                                   cell_budget=16))
        worker = pickle.loads(pickle.dumps(parent))  # no pairs resolved yet
        # Parent learns sparse densities, then resolves a brand-new pair —
        # possibly to a different depth than a fresh feed would choose.
        for cells in (5, 6, 5):
            parent.cell_statistics.observe(
                TestAdaptiveCellBudget().statistics(8, cells))
        parent_key = parent.program_key(None, "price")
        depth = parent.resolved_early_stop_depth(None, "price")
        worker.pin_early_stop_depth(None, "price", depth)
        assert worker.program_key(None, "price") == parent_key

    def test_solver_feeds_its_own_decompositions(self):
        """A solver's exact decompositions adapt its later budget decisions."""
        pcset = TestStrategySelectionPass().overlapping_pcset(count=6)
        solver = PCBoundSolver(pcset, NO_CLOSURE)
        assert solver.cell_statistics.sample_count == 0
        solver.bound(AggregateFunction.COUNT)
        assert solver.cell_statistics.sample_count == 1

    def test_service_shares_one_feed_across_sessions(self):
        service = ContingencyService()
        pcset = TestStrategySelectionPass().overlapping_pcset(count=6)
        service.register("a", pcset, options=NO_CLOSURE)
        service.register("b", pcset, options=BoundOptions(check_closure=False,
                                                          cell_budget=1024))
        service.analyze("a", ContingencyQuery.count())
        assert service.cell_statistics.sample_count >= 1
        session_b = service.session("b")
        assert session_b.analyzer.solver.cell_statistics is service.cell_statistics


class TestCompiledProgramEquivalence:
    """Acceptance: compile-once results == rebuild-per-solve results."""

    @pytest.fixture(scope="class")
    def scenario(self):
        relation = generate_intel_wireless(num_rows=2_000, seed=31)
        scenario = remove_correlated(relation, 0.5, "light", highest=True)
        pcset_args = (scenario.missing, "light", 20)
        spec = QueryWorkloadSpec(AggregateFunction.SUM, "light",
                                 ("device_id", "time"), num_queries=6)
        queries = generate_query_workload(
            scenario.observed.concat(scenario.missing), spec, seed=17)
        return pcset_args, queries

    def build_solver(self, pcset_args, reuse: bool) -> PCBoundSolver:
        pcset = build_corr_pcs(*pcset_args, candidates=["device_id", "time"])
        return PCBoundSolver(pcset, BoundOptions(check_closure=False,
                                                 program_reuse=reuse))

    def test_identical_ranges_on_soundness_scenario(self, scenario):
        pcset_args, queries = scenario
        compiled = self.build_solver(pcset_args, reuse=True)
        rebuilt = self.build_solver(pcset_args, reuse=False)
        for query in queries:
            assert_ranges_equal(
                compiled.bound(query.aggregate, query.attribute, query.region),
                rebuilt.bound(query.aggregate, query.attribute, query.region),
                rel=1e-6)

    def test_identical_ranges_across_aggregates(self, scenario):
        pcset_args, _queries = scenario
        compiled = self.build_solver(pcset_args, reuse=True)
        rebuilt = self.build_solver(pcset_args, reuse=False)
        for aggregate, attribute in [
                (AggregateFunction.COUNT, None),
                (AggregateFunction.SUM, "light"),
                (AggregateFunction.AVG, "light"),
                (AggregateFunction.MIN, "light"),
                (AggregateFunction.MAX, "light")]:
            assert_ranges_equal(
                compiled.bound(aggregate, attribute,
                               known_sum=120.0, known_count=10.0),
                rebuilt.bound(aggregate, attribute,
                              known_sum=120.0, known_count=10.0),
                rel=1e-6)

    def test_program_compiled_once_per_region_attribute(self):
        solver = PCBoundSolver(window_pcset(), NO_CLOSURE)
        region = Predicate.range("utc", 11, 13)
        for _ in range(3):
            solver.bound(AggregateFunction.SUM, "price", region)
            solver.bound(AggregateFunction.AVG, "price", region)
            solver.bound(AggregateFunction.MAX, "price", region)
        assert solver.programs_compiled == 1  # one (region, attribute) pair
        solver.bound(AggregateFunction.COUNT, None, region)
        assert solver.programs_compiled == 2  # COUNT has attribute None


class TestPrivateCacheConcurrency:
    def test_parallel_warm_compiles_each_pair_once(self):
        """Cache-less analyzers warm distinct pairs in parallel, exactly once.

        Programs for one region but different attributes share a single
        decomposition even when compiled concurrently (per-key locking in
        the private caches).
        """
        from repro.service import BatchExecutor

        analyzer = PCAnalyzer(window_pcset(), options=NO_CLOSURE)
        regions = [Predicate.range("utc", 11, 12.5),
                   Predicate.range("utc", 12, 13.5)]
        queries = []
        for region in regions:
            queries += [ContingencyQuery.count(region),
                        ContingencyQuery.sum("price", region),
                        ContingencyQuery.max("price", region)]
        result = BatchExecutor(max_workers=4).execute(analyzer, queries * 3)
        assert len(result.reports) == len(queries) * 3
        assert analyzer.solver.decompositions_computed == len(regions)
        assert analyzer.solver.programs_compiled == 2 * len(regions)


class TestServiceProgramCache:
    def build_pcset(self):
        return PredicateConstraintSet([
            pc(10, 12, 100.0, 20, name="w1"),
            pc(11, 13, 150.0, 25, name="w2"),
        ])

    def test_warm_queries_hit_program_cache(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", self.build_pcset(), options=NO_CLOSURE)
        region = Predicate.range("utc", 11, 12.5)
        # Distinct aggregates over one (region, attribute) pair: one compile.
        service.analyze("outage", ContingencyQuery.sum("price", region))
        service.analyze("outage", ContingencyQuery.avg("price", region))
        service.analyze("outage", ContingencyQuery.max("price", region))
        statistics = service.statistics()
        assert statistics.programs_compiled == 1
        assert statistics.program_cache.hits >= 2
        assert "program cache" in statistics.summary()

    def test_clear_caches_drops_programs(self, monkeypatch):
        # Pin the memory-only semantics: with a persistent tier attached
        # (the REPRO_CACHE_DIR CI leg) clear() is just a memory valve and
        # the second analyze would warm from the store instead.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        service = ContingencyService(max_workers=1)
        service.register("outage", self.build_pcset(), options=NO_CLOSURE)
        query = ContingencyQuery.sum("price", Predicate.range("utc", 11, 12))
        service.analyze("outage", query)
        service.clear_caches()
        service.analyze("outage", query)
        assert service.statistics().programs_compiled == 2

    def test_batch_statistics_report_program_groups(self):
        service = ContingencyService(max_workers=2)
        service.register("outage", self.build_pcset(), options=NO_CLOSURE)
        region = Predicate.range("utc", 11, 12.5)
        queries = [ContingencyQuery.count(region),
                   ContingencyQuery.sum("price", region),
                   ContingencyQuery.avg("price", region)]
        result = service.execute_batch("outage", queries)
        # One region, two attributes (None and "price").
        assert result.statistics.region_groups == 1
        assert result.statistics.program_groups == 2
        assert result.statistics.as_dict()["program_groups"] == 2


class TestBackendRegistry:
    def test_unknown_backend_lists_known_names(self):
        with pytest.raises(SolverError, match="scipy"):
            resolve_backend("simplex-of-doom")

    def test_builtins_registered(self):
        names = available_backends()
        for name in ("scipy", "branch-and-bound", "relaxation", "greedy"):
            assert name in names

    def test_custom_backend_usable_from_bound_options(self):
        calls = []

        def counting_backend(model, time_limit=None):
            calls.append(model)
            return resolve_backend("branch-and-bound")(model, time_limit)

        register_backend("counting-test-backend", counting_backend,
                         replace=True)
        pcset = PredicateConstraintSet([
            pc(10, 12, 100.0, 5, name="w1"),
            pc(11, 13, 150.0, 5, name="w2"),
        ])
        custom = PCBoundSolver(pcset, BoundOptions(
            check_closure=False, milp_backend="counting-test-backend"))
        default = PCBoundSolver(pcset, NO_CLOSURE)
        assert_ranges_equal(custom.bound(AggregateFunction.SUM, "price"),
                            default.bound(AggregateFunction.SUM, "price"),
                            rel=1e-6)
        assert calls  # the custom backend actually solved something


class TestResultRangeHelpers:
    def test_intersect_tightens(self):
        first = ResultRange(0.0, 10.0, AggregateFunction.SUM, "price")
        second = ResultRange(2.0, 15.0)
        combined = first.intersect(second)
        assert (combined.lower, combined.upper) == (2.0, 10.0)
        assert combined.aggregate is AggregateFunction.SUM
        assert combined.width == 8.0

    def test_intersect_treats_none_as_unbounded(self):
        partial = ResultRange(None, 10.0)
        other = ResultRange(3.0, None)
        combined = partial.intersect(other)
        assert (combined.lower, combined.upper) == (3.0, 10.0)

    def test_disjoint_intersection_raises(self):
        with pytest.raises(SolverError):
            ResultRange(0.0, 1.0).intersect(ResultRange(5.0, 6.0))

    def test_as_interval_and_midpoint(self):
        assert ResultRange(None, 4.0).as_interval() == (-np.inf, 4.0)
        assert ResultRange(2.0, 4.0).midpoint == 3.0
        assert ResultRange(None, 4.0).midpoint is None

    def test_intersect_ranges_folds(self):
        ranges = [ResultRange(0.0, 10.0), ResultRange(2.0, 12.0),
                  ResultRange(-5.0, 9.0)]
        combined = intersect_ranges(ranges)
        assert (combined.lower, combined.upper) == (2.0, 9.0)

    def test_format_result_range_table_uses_range_algebra(self):
        entries = [("SUM(price)", ResultRange(0.0, 10.0)),
                   ("MAX(price)", ResultRange(None, 7.0))]
        text = format_result_range_table(entries,
                                         truths={"SUM(price)": 4.0,
                                                 "MAX(price)": 99.0})
        assert "width" in text and "covers" in text
        lines = text.splitlines()
        assert any("yes" in line for line in lines)
        assert any("NO" in line for line in lines)
