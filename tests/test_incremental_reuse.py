"""Tests for incremental, versioned result reuse.

Three layers, each checked for the same invariant — reuse is *provably
bit-identical* to cold computation:

* slice-level decomposition caching: a shifted query region over a
  region-sharded plan recomputes only the uncovered slices and still
  produces exactly the serial answer, on all five aggregates;
* lineage-aware fingerprints: :meth:`Relation.append` remembers its deltas,
  ``fingerprint_relation`` hashes only the delta bytes, and the digest
  equals a cold full-content pass;
* delta-aware invalidation: :meth:`ContingencyService.append_rows` migrates
  cached reports whose query region the delta provably cannot touch and
  drops (only) the intersecting ones.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundOptions
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import ReproError
from repro.obs.metrics import get_registry
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import ContingencyService, LRUCache
from repro.service.fingerprint import (
    RelationVersion,
    fingerprint_relation,
    relation_version,
)

from test_service import build_observed, build_pcset

FAST = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                    avg_max_iterations=16)

ALL_AGGREGATES = [
    lambda region: ContingencyQuery.count(region),
    lambda region: ContingencyQuery.sum("price", region),
    lambda region: ContingencyQuery.avg("price", region),
    lambda region: ContingencyQuery.min("price", region),
    lambda region: ContingencyQuery.max("price", region),
]


def observed_schema() -> Schema:
    return Schema.from_pairs([("utc", ColumnType.FLOAT),
                              ("price", ColumnType.FLOAT)])


def assert_reports_identical(actual, expected):
    assert actual.result_range.lower == expected.result_range.lower
    assert actual.result_range.upper == expected.result_range.upper
    assert actual.missing_range.lower == expected.missing_range.lower
    assert actual.missing_range.upper == expected.missing_range.upper
    assert actual.observed_value == expected.observed_value


# --------------------------------------------------------------------- #
# Layer 1: slice-level decomposition caching
# --------------------------------------------------------------------- #
def chained_pcset() -> PredicateConstraintSet:
    """One overlap component spanning utc in [20, 78] (forces region cuts)."""
    constraints = []
    for index in range(8):
        low = 20.0 + 6 * index
        constraints.append(PredicateConstraint(
            Predicate.range("utc", low, low + 10),
            ValueConstraint({"price": (1.0, 50.0 + index)}),
            FrequencyConstraint(0, 10 + index), name=f"c{index}"))
    return PredicateConstraintSet(constraints)


SLICED = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                      avg_max_iterations=16, solve_workers=4,
                      shard_strategy="region")


class TestSliceReuse:
    def test_shifted_region_reuses_interior_slices(self):
        """Acceptance: slice hits > 0, recomputed < total, bit-identical."""
        registry = get_registry()
        cache = LRUCache(max_entries=256, name="decomposition")
        warm = PCAnalyzer(chained_pcset(), options=SLICED,
                          decomposition_cache=cache)
        warm.analyze(ContingencyQuery.count(Predicate.range("utc", 10, 90)))

        hits_before = registry.counter("cache.slice_hits").value
        recomputed_before = registry.counter("cache.slice_recomputed").value
        shifted = Predicate.range("utc", 12, 92)
        reports = [warm.analyze(maker(shifted)) for maker in ALL_AGGREGATES]

        hits = registry.counter("cache.slice_hits").value - hits_before
        recomputed = (registry.counter("cache.slice_recomputed").value
                      - recomputed_before)
        assert hits > 0  # interior slices came from the first region
        assert recomputed > 0  # the moved edges were genuinely recomputed
        assert recomputed < hits + recomputed  # partial, not full, recompute

        cold = PCAnalyzer(chained_pcset(), options=SLICED)
        for maker, report in zip(ALL_AGGREGATES, reports):
            assert_reports_identical(report, cold.analyze(maker(shifted)))

    def test_identical_region_is_a_whole_region_hit(self):
        """Equal regions skip the pooled slice path entirely (plain hit)."""
        registry = get_registry()
        cache = LRUCache(max_entries=256, name="decomposition")
        analyzer = PCAnalyzer(chained_pcset(), options=SLICED,
                              decomposition_cache=cache)
        region = Predicate.range("utc", 10, 90)
        analyzer.analyze(ContingencyQuery.count(region))
        hits_before = registry.counter("cache.slice_hits").value
        analyzer.analyze(ContingencyQuery.sum(
            "price", Predicate.range("utc", 10, 90)))
        # Served from the whole-region decomposition entry: no slice events.
        assert registry.counter("cache.slice_hits").value == hits_before

    def test_sliced_answers_match_serial_solver(self):
        """The slice-cached sharded path equals the serial single-program
        path on both the warm and the cold region."""
        serial_options = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                                      avg_max_iterations=16)
        cache = LRUCache(max_entries=256, name="decomposition")
        sharded = PCAnalyzer(chained_pcset(), options=SLICED,
                             decomposition_cache=cache)
        serial = PCAnalyzer(chained_pcset(), options=serial_options)
        for region in (Predicate.range("utc", 10, 90),
                       Predicate.range("utc", 12, 92),
                       Predicate.range("utc", 30, 70)):
            for maker in ALL_AGGREGATES:
                assert_reports_identical(sharded.analyze(maker(region)),
                                         serial.analyze(maker(region)))


# --------------------------------------------------------------------- #
# Layer 2: append lineage + incremental fingerprints
# --------------------------------------------------------------------- #
class TestAppendLineage:
    def test_append_records_lineage(self):
        base = build_observed()
        appended = base.append([(13.5, 45.0)])
        assert appended.num_rows == base.num_rows + 1
        lineage_base, deltas = appended.append_lineage
        assert lineage_base is base
        assert len(deltas) == 1 and deltas[0].num_rows == 1
        assert base.append_lineage is None  # the base is untouched

    def test_chained_appends_share_one_base(self):
        base = build_observed()
        twice = base.append([(13.5, 45.0)]).append([{"utc": 14.0,
                                                     "price": 50.0}])
        lineage_base, deltas = twice.append_lineage
        assert lineage_base is base
        assert [delta.num_rows for delta in deltas] == [1, 1]
        assert twice.num_rows == base.num_rows + 2

    def test_append_accepts_relation_dicts_and_tuples(self):
        base = build_observed()
        as_relation = base.append(
            Relation.from_rows(observed_schema(), [(14.0, 50.0)]))
        as_dicts = base.append([{"utc": 14.0, "price": 50.0}])
        as_tuples = base.append([(14.0, 50.0)])
        fingerprints = {fingerprint_relation(r)
                        for r in (as_relation, as_dicts, as_tuples)}
        assert len(fingerprints) == 1  # same content, same identity

    def test_incremental_fingerprint_equals_cold_pass(self):
        rows = [(10.0, 5.0), (10.5, 15.0), (11.2, 25.0), (12.5, 35.0)]
        delta = [(13.5, 45.0), (14.0, 55.0)]
        appended = Relation.from_rows(observed_schema(), rows).append(delta)
        cold = Relation.from_rows(observed_schema(), rows + delta)
        assert fingerprint_relation(appended) == fingerprint_relation(cold)

    def test_incremental_fingerprint_with_string_columns(self):
        schema = Schema.from_pairs([("branch", ColumnType.STRING),
                                    ("price", ColumnType.FLOAT)])
        rows = [("New York", 3.0), ("Chicago", 6.7)]
        delta = [("Trenton", 19.0)]
        appended = Relation.from_rows(schema, rows).append(delta)
        cold = Relation.from_rows(schema, rows + delta)
        assert fingerprint_relation(appended) == fingerprint_relation(cold)

    def test_fingerprint_memoized_and_base_isolated(self):
        base = build_observed()
        base_fingerprint = fingerprint_relation(base)
        assert fingerprint_relation(base) is base_fingerprint  # memo hit
        appended = base.append([(13.5, 45.0)])
        assert fingerprint_relation(appended) != base_fingerprint
        # Hashing the appended relation must not corrupt the base's state.
        assert fingerprint_relation(base) == base_fingerprint

    def test_relation_version_tracks_delta_chain(self):
        base = build_observed()
        version = relation_version(base)
        assert version.delta_count == 0
        assert version.base == fingerprint_relation(base)
        assert version.describe() == f"base {version.base[:12]}"

        appended = base.append([(13.5, 45.0)]).append([(14.0, 50.0)])
        appended_version = relation_version(appended)
        assert appended_version.base == version.base
        assert appended_version.delta_count == 2
        assert appended_version.describe().endswith("+2 delta(s)")
        # The combined chain digest distinguishes versions.
        assert appended_version.fingerprint != version.fingerprint
        assert RelationVersion(version.base).fingerprint == version.fingerprint

    def test_session_describe_reports_relation_version(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        service.append_rows("outage", [(13.5, 45.0)])
        description = service.session("outage").describe()
        assert "+1 delta(s)" in description["relation_version"]
        service.shutdown()


# --------------------------------------------------------------------- #
# Layer 3: delta-aware report migration
# --------------------------------------------------------------------- #
class TestDeltaInvalidation:
    def test_only_intersecting_reports_invalidated(self):
        service = ContingencyService(max_workers=2)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        q_far = ContingencyQuery.sum("price", Predicate.range("utc", 11, 12))
        q_near = ContingencyQuery.count(Predicate.range("utc", 12, 13))
        far_before = service.analyze("outage", q_far)
        service.analyze("outage", q_near)

        session = service.append_rows("outage", [(12.6, 9.0)])
        assert session.version == 2
        statistics = service.statistics()
        assert statistics.delta_migrations == 1  # q_far: region untouched
        assert statistics.delta_invalidations == 1  # q_near: row lands inside
        assert "1 report(s) migrated / 1 invalidated" in statistics.summary()

        # The migrated report answers from cache — no new solve.
        hits = service.report_cache.statistics.hits
        misses = service.report_cache.statistics.misses
        far_after = service.analyze("outage", ContingencyQuery.sum(
            "price", Predicate.range("utc", 11, 12)))
        assert service.report_cache.statistics.hits == hits + 1
        assert_reports_identical(far_after, far_before)

        # The invalidated one is a genuine miss and recomputes cold.
        near_after = service.analyze("outage", ContingencyQuery.count(
            Predicate.range("utc", 12, 13)))
        assert service.report_cache.statistics.misses == misses + 1
        assert near_after.observed_value == 2.0  # 12.5 and the new 12.6
        service.shutdown()

    def test_append_matches_cold_registration(self):
        """The appended session fingerprints identically to registering the
        concatenated relation from scratch — so migrated entries are exactly
        the entries a cold service would cache."""
        rows = [(10.0, 5.0), (10.5, 15.0), (11.2, 25.0), (12.5, 35.0)]
        delta = [(13.5, 45.0)]
        service = ContingencyService(max_workers=1)
        service.register(
            "outage", build_pcset(),
            observed=Relation.from_rows(observed_schema(), rows),
            options=FAST)
        appended = service.append_rows("outage", delta)

        cold = ContingencyService(max_workers=1)
        cold_session = cold.register(
            "outage", build_pcset(),
            observed=Relation.from_rows(observed_schema(), rows + delta),
            options=FAST)
        assert appended.fingerprint == cold_session.fingerprint
        service.shutdown()
        cold.shutdown()

    def test_empty_delta_is_a_no_op(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        session = service.append_rows("outage", [])
        assert session.version == 1  # same fingerprint, no version fork
        assert service.statistics().delta_migrations == 0
        service.shutdown()

    def test_append_requires_observed_relation(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), options=FAST)
        with pytest.raises(ReproError):
            service.append_rows("outage", [(13.5, 45.0)])
        service.shutdown()

    def test_old_version_stays_queryable_after_append(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        query = ContingencyQuery.count(Predicate.range("utc", 12, 13))
        before = service.analyze("outage", query)
        service.append_rows("outage", [(12.6, 9.0)])
        # Version 1 still answers from its own (untouched) cache entry.
        again = service.analyze("outage", query, version=1)
        assert_reports_identical(again, before)
        assert service.analyze("outage", query).observed_value \
            == before.observed_value + 1
        service.shutdown()

    @pytest.mark.parametrize("strategy", ["component", "region", "auto"])
    def test_appended_session_matches_cold_analyzer(self, strategy):
        """Property: after an append, every aggregate over every probed
        region is bit-identical to a cold analyzer on the full data."""
        options = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                               avg_max_iterations=16, solve_workers=2,
                               shard_strategy=strategy)
        rows = [(10.0, 5.0), (10.5, 15.0), (11.2, 25.0), (12.5, 35.0)]
        delta = [(12.6, 9.0), (10.1, 2.0)]
        regions = [Predicate.range("utc", 11, 12),
                   Predicate.range("utc", 12, 13),
                   Predicate.range("utc", 11, 13)]

        service = ContingencyService(max_workers=2)
        service.register(
            "outage", build_pcset(),
            observed=Relation.from_rows(observed_schema(), rows),
            options=options)
        for region in regions:  # warm the caches pre-append
            for maker in ALL_AGGREGATES:
                service.analyze("outage", maker(region))
        service.append_rows("outage", delta)

        cold = PCAnalyzer(
            build_pcset(),
            observed=Relation.from_rows(observed_schema(), rows + delta),
            options=options)
        for region in regions:
            for maker in ALL_AGGREGATES:
                assert_reports_identical(service.analyze("outage",
                                                         maker(region)),
                                         cold.analyze(maker(region)))
        service.shutdown()

    def test_append_with_persistent_store_migrates_on_disk(self, tmp_path):
        """Migrated reports written through the store warm the *new* version
        after a restart."""
        q_far = ContingencyQuery.sum("price", Predicate.range("utc", 11, 12))
        with ContingencyService(max_workers=1,
                                cache_dir=str(tmp_path)) as service:
            service.register("outage", build_pcset(),
                             observed=build_observed(), options=FAST)
            before = service.analyze("outage", q_far)
            service.append_rows("outage", [(13.5, 45.0)])

        with ContingencyService(max_workers=1,
                                cache_dir=str(tmp_path)) as warm:
            warm.register(
                "outage", build_pcset(),
                observed=build_observed().append([(13.5, 45.0)]),
                options=FAST)
            after = warm.analyze("outage", ContingencyQuery.sum(
                "price", Predicate.range("utc", 11, 12)))
            assert warm.statistics().decompositions_computed == 0
        assert_reports_identical(after, before)
