"""Unit tests for predicate-constraint sets and cell decomposition."""

from __future__ import annotations

import pytest

from repro.core.cells import Cell, CellDecomposer, DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import ClosureError, ConstraintError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.solvers.sat import AttributeDomain


def pc(predicate: Predicate, bounds=None, max_rows=10, min_rows=0, name="pc"):
    return PredicateConstraint(predicate, ValueConstraint(bounds or {}),
                               FrequencyConstraint(min_rows, max_rows), name=name)


class TestPredicateConstraintSet:
    def test_add_and_iterate(self):
        pcset = PredicateConstraintSet()
        pcset.add(pc(Predicate.range("x", 0, 1), name="a"))
        pcset.extend([pc(Predicate.range("x", 1, 2), name="b")])
        assert len(pcset) == 2
        assert [c.name for c in pcset] == ["a", "b"]
        assert pcset[0].name == "a"

    def test_duplicate_names_get_renamed(self):
        pcset = PredicateConstraintSet()
        pcset.add(pc(Predicate.range("x", 0, 1), name="dup"))
        pcset.add(pc(Predicate.range("x", 1, 2), name="dup"))
        names = [c.name for c in pcset]
        assert len(set(names)) == 2

    def test_add_rejects_non_constraint(self):
        pcset = PredicateConstraintSet()
        with pytest.raises(ConstraintError):
            pcset.add("not a constraint")

    def test_attributes_and_totals(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), {"v": (0, 5)}, max_rows=3, min_rows=1),
            pc(Predicate.range("y", 0, 1), max_rows=4),
        ])
        assert pcset.attributes() == {"x", "y", "v"}
        assert pcset.total_max_rows() == 7
        assert pcset.total_min_rows() == 1
        assert pcset.has_mandatory_rows()

    def test_pairwise_disjoint_detection(self):
        disjoint = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="a"),
            pc(Predicate.range("x", 2, 3), name="b"),
        ])
        overlapping = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 5), name="a"),
            pc(Predicate.range("x", 3, 8), name="b"),
        ])
        assert disjoint.is_pairwise_disjoint()
        assert not overlapping.is_pairwise_disjoint()

    def test_disjoint_hint_is_cleared_on_add(self):
        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 1))])
        pcset.mark_disjoint(True)
        assert pcset.is_pairwise_disjoint()
        pcset.add(pc(Predicate.range("x", 0, 1), name="overlap"))
        assert not pcset.is_pairwise_disjoint()

    def test_validation_against_relation(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        relation = Relation(schema, {"x": [0.5, 1.5, 7.0]})
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), {"x": (0, 1)}, max_rows=5, name="low"),
            pc(Predicate.range("x", 1, 10), {"x": (1, 5)}, max_rows=5, name="high"),
        ])
        violations = pcset.validate_against(relation)
        assert any(v.constraint_name == "high" for v in violations)
        assert not pcset.is_satisfied_by(relation)

    def test_closure_check(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 5)),
            pc(Predicate.range("x", 5, 10)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert pcset.is_closed()
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert not open_set.is_closed()
        witness = open_set.closure_counterexample()
        assert witness is not None and witness["x"] > 4
        with pytest.raises(ClosureError):
            open_set.require_closed()

    def test_closure_over_region(self):
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert open_set.is_closed(Predicate.range("x", 1, 3))
        assert not open_set.is_closed(Predicate.range("x", 3, 6))

    def test_closed_hint_shortcuts_search(self):
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        open_set.mark_closed(True)
        assert open_set.is_closed()

    def test_restricted_to_keeps_mandatory_constraints(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="inside"),
            pc(Predicate.range("x", 5, 6), name="outside"),
            pc(Predicate.range("x", 8, 9), min_rows=1, name="mandatory"),
        ])
        restricted = pcset.restricted_to(Predicate.range("x", 0, 2))
        names = {c.name for c in restricted}
        assert names == {"inside", "mandatory"}

    def test_map_constraints(self):
        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 1), name="a")])
        renamed = pcset.map_constraints(lambda c: c.rename(c.name + "_new"))
        assert [c.name for c in renamed] == ["a_new"]


class TestCell:
    def test_requires_covering(self):
        with pytest.raises(ConstraintError):
            Cell(frozenset())
        cell = Cell(frozenset({1, 3}))
        assert cell.size == 2
        assert cell.is_covered_by(3)
        assert not cell.is_covered_by(2)


class TestCellDecomposition:
    def overlapping_pcset(self) -> PredicateConstraintSet:
        """Figure 2-style overlapping predicates on one attribute."""
        return PredicateConstraintSet([
            pc(Predicate.range("x", 0, 6), name="p0"),
            pc(Predicate.range("x", 4, 10), name="p1"),
            pc(Predicate.range("x", 5, 7), name="p2"),
        ])

    def test_paper_example_cells(self, paper_overlapping_pcs):
        decomposition = CellDecomposer(paper_overlapping_pcs).decompose()
        covers = {tuple(sorted(cell.covering)) for cell in decomposition.cells}
        # c1 = t1 ∧ t2, c2 = ¬t1 ∧ t2 are satisfiable; c3 = t1 ∧ ¬t2 is not.
        assert covers == {(0, 1), (1,)}

    def test_all_strategies_find_the_same_cells(self):
        pcset = self.overlapping_pcset()
        results = {}
        for strategy in DecompositionStrategy:
            cells = CellDecomposer(pcset, strategy).decompose().cells
            results[strategy] = {tuple(sorted(cell.covering)) for cell in cells}
        assert results[DecompositionStrategy.NAIVE] == results[DecompositionStrategy.DFS]
        assert results[DecompositionStrategy.DFS] == \
            results[DecompositionStrategy.DFS_REWRITE]

    def clustered_pcset(self) -> PredicateConstraintSet:
        """Two clusters of overlapping predicates; cross-cluster cells are empty."""
        constraints = []
        for index, (low, high) in enumerate([(0, 6), (2, 8), (4, 10),
                                             (20, 26), (22, 28), (24, 30)]):
            constraints.append(pc(Predicate.range("x", low, high), name=f"p{index}"))
        pcset = PredicateConstraintSet(constraints)
        pcset.mark_disjoint(False)
        return pcset

    def test_dfs_issues_fewer_solver_calls_than_naive(self):
        pcset = self.clustered_pcset()
        naive = CellDecomposer(pcset, DecompositionStrategy.NAIVE).decompose()
        dfs = CellDecomposer(pcset, DecompositionStrategy.DFS).decompose()
        rewrite = CellDecomposer(pcset, DecompositionStrategy.DFS_REWRITE).decompose()
        assert naive.statistics.solver_calls == 2 ** 6
        assert dfs.statistics.solver_calls < naive.statistics.solver_calls
        assert rewrite.statistics.solver_calls <= dfs.statistics.solver_calls
        assert rewrite.statistics.rewrites_saved >= 1
        assert dfs.statistics.subtrees_pruned > 0
        # All strategies agree on the satisfiable cells.
        naive_covers = {tuple(sorted(cell.covering)) for cell in naive.cells}
        dfs_covers = {tuple(sorted(cell.covering)) for cell in dfs.cells}
        rewrite_covers = {tuple(sorted(cell.covering)) for cell in rewrite.cells}
        assert naive_covers == dfs_covers == rewrite_covers

    def test_disjoint_fast_path(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="a"),
            pc(Predicate.range("x", 2, 3), name="b"),
        ])
        decomposition = CellDecomposer(pcset).decompose()
        assert len(decomposition.cells) == 2
        assert all(cell.size == 1 for cell in decomposition.cells)

    def test_query_pushdown_prunes_cells(self):
        pcset = self.overlapping_pcset()
        full = CellDecomposer(pcset).decompose()
        pushed = CellDecomposer(pcset).decompose(Predicate.range("x", 0, 3))
        assert len(pushed.cells) < len(full.cells)
        # Only p0 overlaps [0, 3].
        assert {tuple(sorted(cell.covering)) for cell in pushed.cells} == {(0,)}

    def test_early_stopping_only_adds_cells(self):
        pcset = self.overlapping_pcset()
        exact = CellDecomposer(pcset).decompose()
        approximate = CellDecomposer(pcset, early_stop_depth=1).decompose()
        exact_covers = {tuple(sorted(cell.covering)) for cell in exact.cells}
        approx_covers = {tuple(sorted(cell.covering)) for cell in approximate.cells}
        assert exact_covers <= approx_covers
        assert approximate.statistics.assumed_satisfiable > 0

    def test_empty_pcset(self):
        decomposition = CellDecomposer(PredicateConstraintSet()).decompose()
        assert len(decomposition) == 0

    def test_cells_covered_by(self):
        pcset = self.overlapping_pcset()
        decomposition = CellDecomposer(pcset).decompose()
        positions = decomposition.cells_covered_by(2)
        for position in positions:
            assert decomposition.cells[position].is_covered_by(2)

    def test_categorical_cells(self, sales_domains):
        pcset = PredicateConstraintSet([
            pc(Predicate.equals("branch", "Chicago"), name="chi"),
            pc(Predicate.true(), name="all"),
        ], domains=sales_domains)
        decomposition = CellDecomposer(pcset).decompose()
        covers = {tuple(sorted(cell.covering)) for cell in decomposition.cells}
        # "Chicago and everything" plus "everything except Chicago"; the cell
        # "Chicago but not everything" is unsatisfiable.
        assert covers == {(0, 1), (1,)}
