"""Unit tests for predicate-constraint sets and cell decomposition."""

from __future__ import annotations

import pytest

from repro.core.cells import Cell, CellDecomposer, DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import ClosureError, ConstraintError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.solvers.sat import AttributeDomain


def pc(predicate: Predicate, bounds=None, max_rows=10, min_rows=0, name="pc"):
    return PredicateConstraint(predicate, ValueConstraint(bounds or {}),
                               FrequencyConstraint(min_rows, max_rows), name=name)


class TestPredicateConstraintSet:
    def test_add_and_iterate(self):
        pcset = PredicateConstraintSet()
        pcset.add(pc(Predicate.range("x", 0, 1), name="a"))
        pcset.extend([pc(Predicate.range("x", 1, 2), name="b")])
        assert len(pcset) == 2
        assert [c.name for c in pcset] == ["a", "b"]
        assert pcset[0].name == "a"

    def test_duplicate_names_get_renamed(self):
        pcset = PredicateConstraintSet()
        pcset.add(pc(Predicate.range("x", 0, 1), name="dup"))
        pcset.add(pc(Predicate.range("x", 1, 2), name="dup"))
        names = [c.name for c in pcset]
        assert len(set(names)) == 2

    def test_add_rejects_non_constraint(self):
        pcset = PredicateConstraintSet()
        with pytest.raises(ConstraintError):
            pcset.add("not a constraint")

    def test_attributes_and_totals(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), {"v": (0, 5)}, max_rows=3, min_rows=1),
            pc(Predicate.range("y", 0, 1), max_rows=4),
        ])
        assert pcset.attributes() == {"x", "y", "v"}
        assert pcset.total_max_rows() == 7
        assert pcset.total_min_rows() == 1
        assert pcset.has_mandatory_rows()

    def test_pairwise_disjoint_detection(self):
        disjoint = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="a"),
            pc(Predicate.range("x", 2, 3), name="b"),
        ])
        overlapping = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 5), name="a"),
            pc(Predicate.range("x", 3, 8), name="b"),
        ])
        assert disjoint.is_pairwise_disjoint()
        assert not overlapping.is_pairwise_disjoint()

    def test_disjoint_hint_is_cleared_on_add(self):
        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 1))])
        pcset.mark_disjoint(True)
        assert pcset.is_pairwise_disjoint()
        pcset.add(pc(Predicate.range("x", 0, 1), name="overlap"))
        assert not pcset.is_pairwise_disjoint()

    def test_validation_against_relation(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        relation = Relation(schema, {"x": [0.5, 1.5, 7.0]})
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), {"x": (0, 1)}, max_rows=5, name="low"),
            pc(Predicate.range("x", 1, 10), {"x": (1, 5)}, max_rows=5, name="high"),
        ])
        violations = pcset.validate_against(relation)
        assert any(v.constraint_name == "high" for v in violations)
        assert not pcset.is_satisfied_by(relation)

    def test_closure_check(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 5)),
            pc(Predicate.range("x", 5, 10)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert pcset.is_closed()
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert not open_set.is_closed()
        witness = open_set.closure_counterexample()
        assert witness is not None and witness["x"] > 4
        with pytest.raises(ClosureError):
            open_set.require_closed()

    def test_closure_over_region(self):
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        assert open_set.is_closed(Predicate.range("x", 1, 3))
        assert not open_set.is_closed(Predicate.range("x", 3, 6))

    def test_closed_hint_shortcuts_search(self):
        open_set = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 4)),
        ], domains={"x": AttributeDomain.numeric(0, 10)})
        open_set.mark_closed(True)
        assert open_set.is_closed()

    def test_restricted_to_keeps_mandatory_constraints(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="inside"),
            pc(Predicate.range("x", 5, 6), name="outside"),
            pc(Predicate.range("x", 8, 9), min_rows=1, name="mandatory"),
        ])
        restricted = pcset.restricted_to(Predicate.range("x", 0, 2))
        names = {c.name for c in restricted}
        assert names == {"inside", "mandatory"}

    def test_map_constraints(self):
        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 1), name="a")])
        renamed = pcset.map_constraints(lambda c: c.rename(c.name + "_new"))
        assert [c.name for c in renamed] == ["a_new"]


class TestCell:
    def test_requires_covering(self):
        with pytest.raises(ConstraintError):
            Cell(frozenset())
        cell = Cell(frozenset({1, 3}))
        assert cell.size == 2
        assert cell.is_covered_by(3)
        assert not cell.is_covered_by(2)


class TestCellDecomposition:
    def overlapping_pcset(self) -> PredicateConstraintSet:
        """Figure 2-style overlapping predicates on one attribute."""
        return PredicateConstraintSet([
            pc(Predicate.range("x", 0, 6), name="p0"),
            pc(Predicate.range("x", 4, 10), name="p1"),
            pc(Predicate.range("x", 5, 7), name="p2"),
        ])

    def test_paper_example_cells(self, paper_overlapping_pcs):
        decomposition = CellDecomposer(paper_overlapping_pcs).decompose()
        covers = {tuple(sorted(cell.covering)) for cell in decomposition.cells}
        # c1 = t1 ∧ t2, c2 = ¬t1 ∧ t2 are satisfiable; c3 = t1 ∧ ¬t2 is not.
        assert covers == {(0, 1), (1,)}

    def test_all_strategies_find_the_same_cells(self):
        pcset = self.overlapping_pcset()
        results = {}
        for strategy in DecompositionStrategy:
            cells = CellDecomposer(pcset, strategy).decompose().cells
            results[strategy] = {tuple(sorted(cell.covering)) for cell in cells}
        assert results[DecompositionStrategy.NAIVE] == results[DecompositionStrategy.DFS]
        assert results[DecompositionStrategy.DFS] == \
            results[DecompositionStrategy.DFS_REWRITE]

    def clustered_pcset(self) -> PredicateConstraintSet:
        """Two clusters of overlapping predicates; cross-cluster cells are empty."""
        constraints = []
        for index, (low, high) in enumerate([(0, 6), (2, 8), (4, 10),
                                             (20, 26), (22, 28), (24, 30)]):
            constraints.append(pc(Predicate.range("x", low, high), name=f"p{index}"))
        pcset = PredicateConstraintSet(constraints)
        pcset.mark_disjoint(False)
        return pcset

    def test_dfs_issues_fewer_solver_calls_than_naive(self):
        pcset = self.clustered_pcset()
        naive = CellDecomposer(pcset, DecompositionStrategy.NAIVE).decompose()
        dfs = CellDecomposer(pcset, DecompositionStrategy.DFS).decompose()
        rewrite = CellDecomposer(pcset, DecompositionStrategy.DFS_REWRITE).decompose()
        assert naive.statistics.solver_calls == 2 ** 6
        assert dfs.statistics.solver_calls < naive.statistics.solver_calls
        assert rewrite.statistics.solver_calls <= dfs.statistics.solver_calls
        assert rewrite.statistics.rewrites_saved >= 1
        assert dfs.statistics.subtrees_pruned > 0
        # All strategies agree on the satisfiable cells.
        naive_covers = {tuple(sorted(cell.covering)) for cell in naive.cells}
        dfs_covers = {tuple(sorted(cell.covering)) for cell in dfs.cells}
        rewrite_covers = {tuple(sorted(cell.covering)) for cell in rewrite.cells}
        assert naive_covers == dfs_covers == rewrite_covers

    def test_disjoint_fast_path(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 1), name="a"),
            pc(Predicate.range("x", 2, 3), name="b"),
        ])
        decomposition = CellDecomposer(pcset).decompose()
        assert len(decomposition.cells) == 2
        assert all(cell.size == 1 for cell in decomposition.cells)

    def test_query_pushdown_prunes_cells(self):
        pcset = self.overlapping_pcset()
        full = CellDecomposer(pcset).decompose()
        pushed = CellDecomposer(pcset).decompose(Predicate.range("x", 0, 3))
        assert len(pushed.cells) < len(full.cells)
        # Only p0 overlaps [0, 3].
        assert {tuple(sorted(cell.covering)) for cell in pushed.cells} == {(0,)}

    def test_early_stopping_only_adds_cells(self):
        pcset = self.overlapping_pcset()
        exact = CellDecomposer(pcset).decompose()
        approximate = CellDecomposer(pcset, early_stop_depth=1).decompose()
        exact_covers = {tuple(sorted(cell.covering)) for cell in exact.cells}
        approx_covers = {tuple(sorted(cell.covering)) for cell in approximate.cells}
        assert exact_covers <= approx_covers
        assert approximate.statistics.assumed_satisfiable > 0

    def test_empty_pcset(self):
        decomposition = CellDecomposer(PredicateConstraintSet()).decompose()
        assert len(decomposition) == 0

    def test_cells_covered_by(self):
        pcset = self.overlapping_pcset()
        decomposition = CellDecomposer(pcset).decompose()
        positions = decomposition.cells_covered_by(2)
        for position in positions:
            assert decomposition.cells[position].is_covered_by(2)

    def test_categorical_cells(self, sales_domains):
        pcset = PredicateConstraintSet([
            pc(Predicate.equals("branch", "Chicago"), name="chi"),
            pc(Predicate.true(), name="all"),
        ], domains=sales_domains)
        decomposition = CellDecomposer(pcset).decompose()
        covers = {tuple(sorted(cell.covering)) for cell in decomposition.cells}
        # "Chicago and everything" plus "everything except Chicago"; the cell
        # "Chicago but not everything" is unsatisfiable.
        assert covers == {(0, 1), (1,)}


class TestCellDecomposerEdgeCases:
    """Degenerate decompositions that must still produce sound bounds."""

    def test_zero_constraints_bound_to_empty_partition(self):
        from repro.core.bounds import BoundOptions, PCBoundSolver
        from repro.relational.aggregates import AggregateFunction

        pcset = PredicateConstraintSet()
        decomposition = CellDecomposer(pcset).decompose()
        assert len(decomposition) == 0
        assert decomposition.statistics.solver_calls == 0
        # With nothing covering the missing partition the COUNT is exactly 0.
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        result = solver.bound(AggregateFunction.COUNT)
        assert (result.lower, result.upper) == (0.0, 0.0)

    def test_single_constraint_with_unsatisfiable_negation(self):
        # The domain restricts x to [0, 10]; the predicate covers all of it,
        # so NOT psi is unsatisfiable and the only cell is {0}.  Force the
        # DFS path (a singleton set is trivially "disjoint" otherwise).
        pcset = PredicateConstraintSet(
            [pc(Predicate.range("x", 0, 10), name="everything")],
            domains={"x": AttributeDomain.numeric(0, 10)})
        pcset.mark_disjoint(False)
        decomposition = CellDecomposer(
            pcset, DecompositionStrategy.DFS).decompose()
        assert [tuple(sorted(cell.covering)) for cell in decomposition.cells] \
            == [(0,)]
        # The exclude branch was pruned, not recursed into.
        assert decomposition.statistics.subtrees_pruned == 1

    def test_early_stop_depth_zero_assumes_every_cell(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 2), name="a"),
            pc(Predicate.range("x", 5, 6), name="b"),   # disjoint from a
            pc(Predicate.range("x", 1, 3), name="c"),
        ])
        pcset.mark_disjoint(False)
        assumed = CellDecomposer(pcset, early_stop_depth=0).decompose()
        # Depth 0 skips every satisfiability check: all 2^n - 1 covered
        # subsets survive, including impossible ones like {a, b}.
        assert len(assumed.cells) == 2 ** len(pcset) - 1
        assert assumed.statistics.solver_calls == 0
        assert assumed.statistics.assumed_satisfiable > 0
        exact = CellDecomposer(pcset).decompose()
        exact_covers = {tuple(sorted(cell.covering)) for cell in exact.cells}
        assumed_covers = {tuple(sorted(cell.covering)) for cell in assumed.cells}
        assert exact_covers < assumed_covers

    def test_early_stop_depth_zero_only_loosens_bounds(self):
        from repro.core.bounds import BoundOptions, PCBoundSolver
        from repro.relational.aggregates import AggregateFunction

        def build():
            pcset = PredicateConstraintSet([
                pc(Predicate.range("x", 0, 2), {"v": (0.0, 5.0)},
                   max_rows=4, min_rows=1, name="a"),
                pc(Predicate.range("x", 5, 6), {"v": (-3.0, 2.0)},
                   max_rows=3, name="b"),
                pc(Predicate.range("x", 1, 3), {"v": (1.0, 9.0)},
                   max_rows=2, name="c"),
            ])
            pcset.mark_disjoint(False)
            return pcset

        exact_solver = PCBoundSolver(build(), BoundOptions(check_closure=False))
        loose_solver = PCBoundSolver(build(), BoundOptions(check_closure=False,
                                                           early_stop_depth=0))
        for aggregate, attribute in [(AggregateFunction.COUNT, None),
                                     (AggregateFunction.SUM, "v"),
                                     (AggregateFunction.AVG, "v"),
                                     (AggregateFunction.MIN, "v"),
                                     (AggregateFunction.MAX, "v")]:
            exact = exact_solver.bound(aggregate, attribute)
            loose = loose_solver.bound(aggregate, attribute)
            # Assumed-satisfiable cells can only widen the range: the loose
            # interval must contain the exact one, never cut into it.
            if exact.lower is not None:
                assert loose.lower is not None and loose.lower <= exact.lower
            if exact.upper is not None:
                assert loose.upper is not None and loose.upper >= exact.upper


class TestDecomposeCached:
    def test_without_cache_computes_every_time(self):
        from repro.core.cells import decompose_cached

        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 2))])
        computed = []
        decompose_cached(pcset, on_compute=computed.append)
        decompose_cached(pcset, on_compute=computed.append)
        assert len(computed) == 2

    def test_shared_cache_reuses_by_namespace_and_region(self):
        from repro.core.cells import decompose_cached
        from repro.service.cache import LRUCache

        pcset = PredicateConstraintSet([pc(Predicate.range("x", 0, 2))])
        cache = LRUCache(max_entries=8)
        computed = []
        region = Predicate.range("x", 0, 1)
        first = decompose_cached(pcset, region, cache=cache, namespace="ns",
                                 on_compute=computed.append)
        again = decompose_cached(pcset, Predicate.range("x", 0, 1),
                                 cache=cache, namespace="ns",
                                 on_compute=computed.append)
        assert again is first and len(computed) == 1
        # A different namespace (other constraint set / strategy) recomputes.
        decompose_cached(pcset, region, cache=cache, namespace="other",
                         on_compute=computed.append)
        assert len(computed) == 2

    def test_default_namespace_is_content_derived(self):
        """Omitting the namespace must never mix up constraint sets."""
        from repro.core.cells import decompose_cached
        from repro.service.cache import LRUCache

        cache = LRUCache(max_entries=8)
        one_constraint = PredicateConstraintSet([pc(Predicate.range("x", 0, 2))])
        two_constraints = PredicateConstraintSet([
            pc(Predicate.range("x", 0, 2), name="a"),
            pc(Predicate.range("x", 5, 6), name="b"),
        ])
        first = decompose_cached(one_constraint, cache=cache)
        second = decompose_cached(two_constraints, cache=cache)
        assert second is not first
        assert len(second.cells) == 2 and len(first.cells) == 1
        # Equal content (fresh objects) still shares the entry.
        equal = PredicateConstraintSet([pc(Predicate.range("x", 0, 2))])
        assert decompose_cached(equal, cache=cache) is first
        # Different strategy knobs key separately even for equal content.
        assert decompose_cached(equal, cache=cache,
                                early_stop_depth=0) is not first
