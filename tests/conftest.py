"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.solvers.sat import AttributeDomain


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path_factory, monkeypatch):
    """Give each test a private persistent-store directory under the CI leg.

    The CI matrix runs the whole functional suite with ``REPRO_CACHE_DIR``
    set, which makes every :class:`~repro.service.ContingencyService` attach
    a persistent tier.  Several tests assert exact cache hit/miss counts, so
    a store warmed by an earlier test must never leak into a later one: when
    the toggle is on, repoint it at a fresh per-test directory.
    """
    if os.environ.get("REPRO_CACHE_DIR"):
        monkeypatch.setenv(
            "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("repro-cache")))
    yield


@pytest.fixture
def sales_schema() -> Schema:
    """The paper's running example schema: Sales(utc, branch, price)."""
    return Schema.from_pairs([
        ("utc", ColumnType.FLOAT),
        ("branch", ColumnType.STRING),
        ("price", ColumnType.FLOAT),
    ])


@pytest.fixture
def sales_relation(sales_schema: Schema) -> Relation:
    """A small concrete sales table used across relational tests."""
    rows = [
        (10.2, "New York", 3.02),
        (10.3, "Chicago", 6.71),
        (11.0, "Chicago", 149.99),
        (11.5, "New York", 80.00),
        (12.1, "Trenton", 18.99),
        (12.4, "Chicago", 5.00),
        (13.0, "New York", 42.50),
        (13.7, "Trenton", 7.25),
    ]
    return Relation.from_rows(sales_schema, rows, name="sales")


@pytest.fixture
def sales_domains() -> dict[str, AttributeDomain]:
    return {
        "utc": AttributeDomain.numeric(),
        "branch": AttributeDomain.categorical(["New York", "Chicago", "Trenton"]),
        "price": AttributeDomain.numeric(),
    }


@pytest.fixture
def paper_overlapping_pcs() -> PredicateConstraintSet:
    """The overlapping predicate-constraints of the paper's §4.4 example."""
    t1 = PredicateConstraint(
        Predicate.range("utc", 11, 12),
        ValueConstraint({"price": (0.99, 129.99)}),
        FrequencyConstraint.between(50, 100), name="t1")
    t2 = PredicateConstraint(
        Predicate.range("utc", 11, 13),
        ValueConstraint({"price": (0.99, 149.99)}),
        FrequencyConstraint.between(75, 125), name="t2")
    return PredicateConstraintSet([t1, t2])


@pytest.fixture
def paper_disjoint_pcs() -> PredicateConstraintSet:
    """The disjoint predicate-constraints of the paper's §4.4 example."""
    t1 = PredicateConstraint(
        Predicate.range("utc", 11, 11.999),
        ValueConstraint({"price": (0.99, 129.99)}),
        FrequencyConstraint.between(50, 100), name="t1")
    t2 = PredicateConstraint(
        Predicate.range("utc", 12, 13),
        ValueConstraint({"price": (0.99, 149.99)}),
        FrequencyConstraint.between(50, 100), name="t2")
    return PredicateConstraintSet([t1, t2])


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
