"""Unit tests for the PCAnalyzer facade and ContingencyQuery."""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundOptions
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import QueryError
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema

NO_CLOSURE = BoundOptions(check_closure=False)


@pytest.fixture
def observed() -> Relation:
    schema = Schema.from_pairs([("utc", ColumnType.FLOAT), ("price", ColumnType.FLOAT)])
    rows = [(10.0, 5.0), (10.5, 15.0), (11.2, 25.0), (12.5, 35.0)]
    return Relation.from_rows(schema, rows, name="observed_sales")


@pytest.fixture
def outage_pcs() -> PredicateConstraintSet:
    """Constraints describing a two-day outage window."""
    day1 = PredicateConstraint(Predicate.range("utc", 11, 12),
                               ValueConstraint({"price": (1.0, 100.0)}),
                               FrequencyConstraint(0, 10), name="day1")
    day2 = PredicateConstraint(Predicate.range("utc", 12, 13),
                               ValueConstraint({"price": (1.0, 200.0)}),
                               FrequencyConstraint(2, 5), name="day2")
    return PredicateConstraintSet([day1, day2])


class TestContingencyQuery:
    def test_constructors_and_validation(self):
        assert ContingencyQuery.count().aggregate is AggregateFunction.COUNT
        assert ContingencyQuery.sum("price").attribute == "price"
        with pytest.raises(QueryError):
            ContingencyQuery(AggregateFunction.SUM, None)
        with pytest.raises(QueryError):
            ContingencyQuery(AggregateFunction.COUNT, "price")

    def test_ground_truth(self, observed):
        query = ContingencyQuery.sum("price", Predicate.range("utc", 10, 11))
        assert query.ground_truth(observed) == 20.0
        assert ContingencyQuery.count().ground_truth(observed) == 4.0

    def test_describe(self):
        query = ContingencyQuery.max("price", Predicate.range("utc", 0, 1))
        text = query.describe()
        assert "MAX(price)" in text and "WHERE" in text
        assert ContingencyQuery.count().describe() == "COUNT(*)"


class TestPCAnalyzerMissingOnly:
    def test_bound_missing_matches_solver(self, outage_pcs):
        analyzer = PCAnalyzer(outage_pcs, options=NO_CLOSURE)
        result = analyzer.bound_missing(ContingencyQuery.sum("price"))
        assert result.upper == pytest.approx(10 * 100.0 + 5 * 200.0)
        assert result.lower == pytest.approx(2 * 1.0)

    def test_bound_without_observed_equals_missing(self, outage_pcs):
        analyzer = PCAnalyzer(outage_pcs, options=NO_CLOSURE)
        query = ContingencyQuery.count()
        assert analyzer.bound(query).upper == analyzer.bound_missing(query).upper


class TestPCAnalyzerCombined:
    def test_sum_combination(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        report = analyzer.analyze(ContingencyQuery.sum("price"))
        observed_total = 80.0
        assert report.observed_value == pytest.approx(observed_total)
        assert report.lower == pytest.approx(observed_total + 2.0)
        assert report.upper == pytest.approx(observed_total + 10 * 100.0 + 5 * 200.0)
        assert report.elapsed_seconds >= 0.0
        assert "SUM(price)" in report.summary()

    def test_count_combination_with_region(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        region = Predicate.range("utc", 11, 12.4)
        report = analyzer.analyze(ContingencyQuery.count(region))
        # Observed rows at utc 11.2 only; missing day1 rows (up to 10) plus
        # day2 rows that could fall inside [12, 12.4].
        assert report.observed_value == 1.0
        assert report.lower <= 1.0 + 2.0
        assert report.upper == pytest.approx(1.0 + 10.0 + 5.0)

    def test_max_combination(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        report = analyzer.analyze(ContingencyQuery.max("price"))
        # Observed max is 35; missing day2 rows are mandatory and worth >= 1,
        # at most 200.
        assert report.upper == pytest.approx(200.0)
        assert report.lower == pytest.approx(35.0)

    def test_min_combination(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        report = analyzer.analyze(ContingencyQuery.min("price"))
        assert report.lower == pytest.approx(1.0)
        assert report.upper == pytest.approx(5.0)

    def test_avg_combination_contains_possible_truth(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        report = analyzer.analyze(ContingencyQuery.avg("price"))
        observed_average = 20.0
        assert report.lower <= observed_average <= report.upper
        # Extreme: 5 extra rows at 200 and 10 at 100.
        best_case = (80.0 + 10 * 100.0 + 5 * 200.0) / (4 + 15)
        assert report.upper >= best_case - 1e-6

    def test_bound_all(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        queries = [ContingencyQuery.count(), ContingencyQuery.sum("price")]
        reports = analyzer.bound_all(queries)
        assert len(reports) == 2

    def test_validate_constraints(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        violations = analyzer.validate_constraints(observed)
        # The observed data has no rows in [12, 13] x >= 2, so day2's minimum
        # frequency is violated on historical data — exactly the kind of
        # check the paper advocates doing before trusting a constraint.
        assert any(v.constraint_name == "day2" for v in violations)


class TestPCAnalyzerAccessors:
    def test_properties(self, outage_pcs, observed):
        analyzer = PCAnalyzer(outage_pcs, observed=observed, options=NO_CLOSURE)
        assert analyzer.pcset is outage_pcs
        assert analyzer.observed is observed
        assert analyzer.options.check_closure is False


class TestQueryHashability:
    """Queries and predicates key the service caches: hash/eq must agree.

    ``ContingencyQuery`` is a frozen dataclass over a ``Predicate`` field;
    if ``Predicate.__hash__``/``__eq__`` ever drifted (e.g. mutable mapping
    fields sneaking into the hash), dict-keyed caching would silently break.
    """

    def test_predicate_equality_implies_equal_hash(self):
        first = Predicate.range("utc", 11, 12).with_equals("branch", "Chicago")
        second = Predicate.equals("branch", "Chicago").with_range("utc", 11, 12)
        assert first == second
        assert hash(first) == hash(second)

    def test_predicate_as_dict_key(self):
        lookup = {Predicate.range("utc", 11, 12): "window"}
        assert lookup[Predicate.range("utc", 11, 12)] == "window"
        assert Predicate.range("utc", 11, 13) not in lookup
        assert Predicate.true() not in lookup
        lookup[Predicate.true()] = "everything"
        assert lookup[Predicate.true()] == "everything"

    def test_query_equality_implies_equal_hash(self):
        region = Predicate.range("utc", 11, 13)
        first = ContingencyQuery.sum("price", region)
        second = ContingencyQuery.sum("price", Predicate.range("utc", 11, 13))
        assert first == second
        assert hash(first) == hash(second)

    def test_query_inequality(self):
        region = Predicate.range("utc", 11, 13)
        base = ContingencyQuery.sum("price", region)
        assert base != ContingencyQuery.avg("price", region)
        assert base != ContingencyQuery.sum("utc", region)
        assert base != ContingencyQuery.sum("price")
        assert base != ContingencyQuery.sum(
            "price", Predicate.range("utc", 11, 14))

    def test_query_as_dict_key_end_to_end(self):
        region = Predicate.range("utc", 11, 13)
        cache: dict[ContingencyQuery, str] = {}
        cache[ContingencyQuery.sum("price", region)] = "cached"
        cache[ContingencyQuery.count()] = "count"
        # A structurally equal query built from fresh objects must hit.
        assert cache[ContingencyQuery.sum(
            "price", Predicate.range("utc", 11, 13))] == "cached"
        assert cache[ContingencyQuery.count()] == "count"
        assert len({ContingencyQuery.count(), ContingencyQuery.count(),
                    ContingencyQuery.count(region)}) == 2

    def test_membership_predicate_hash_ignores_value_order(self):
        first = Predicate.isin("branch", ["Chicago", "Trenton"])
        second = Predicate.isin("branch", ["Trenton", "Chicago"])
        assert first == second
        assert hash(first) == hash(second)
