"""Unit tests for the statistical baselines (sampling, histogram, GMM,
extrapolation, elastic sensitivity)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.base import IntervalEstimate
from repro.baselines.elastic_sensitivity import (
    chain_join_elastic_bound,
    elastic_sensitivity_join_bound,
    max_key_frequency,
    triangle_count_elastic_bound,
)
from repro.baselines.extrapolation import SimpleExtrapolationEstimator, extrapolate
from repro.baselines.gmm import DiagonalGaussianMixture, GenerativeModelEstimator
from repro.baselines.histogram import HistogramEstimator
from repro.baselines.sampling import StratifiedSamplingEstimator, UniformSamplingEstimator
from repro.core.engine import ContingencyQuery
from repro.core.predicates import Predicate
from repro.datasets.intel_wireless import generate_intel_wireless
from repro.exceptions import WorkloadError
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.workloads.missing import remove_correlated


@pytest.fixture(scope="module")
def missing_partition() -> Relation:
    relation = generate_intel_wireless(num_rows=4_000, seed=9)
    return remove_correlated(relation, 0.4, "light", highest=True).missing


class TestIntervalEstimate:
    def test_contains_and_width(self):
        estimate = IntervalEstimate(1.0, 3.0, 2.0, "test")
        assert estimate.contains(2.0)
        assert not estimate.contains(5.0)
        assert estimate.contains(None)
        assert estimate.width == 2.0

    def test_degenerate_interval_normalised(self):
        estimate = IntervalEstimate(5.0, 1.0)
        assert estimate.lower <= estimate.upper

    def test_over_estimation_rate(self):
        assert IntervalEstimate(0, 10).over_estimation_rate(5) == 2.0
        assert IntervalEstimate(0, 10).over_estimation_rate(0) == math.inf
        assert IntervalEstimate(0, math.inf).over_estimation_rate(5) == math.inf

    def test_shifted(self):
        shifted = IntervalEstimate(1.0, 2.0, 1.5).shifted(10)
        assert (shifted.lower, shifted.upper, shifted.point) == (11.0, 12.0, 11.5)


class TestUniformSampling:
    def test_requires_fit(self, missing_partition):
        estimator = UniformSamplingEstimator(100)
        with pytest.raises(RuntimeError):
            estimator.estimate(ContingencyQuery.count())

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            UniformSamplingEstimator(0)
        with pytest.raises(WorkloadError):
            UniformSamplingEstimator(10, method="bootstrap")

    def test_count_estimate_close_to_truth(self, missing_partition):
        estimator = UniformSamplingEstimator(500, rng=np.random.default_rng(0))
        estimator.fit(missing_partition)
        query = ContingencyQuery.count(Predicate.range("time", 0, 360))
        truth = query.ground_truth(missing_partition)
        estimate = estimator.estimate(query)
        assert estimate.point == pytest.approx(truth, rel=0.3)
        assert estimate.lower <= estimate.point <= estimate.upper

    def test_sum_estimate_scales_with_population(self, missing_partition):
        estimator = UniformSamplingEstimator(500, rng=np.random.default_rng(1))
        estimator.fit(missing_partition)
        query = ContingencyQuery.sum("light")
        truth = query.ground_truth(missing_partition)
        estimate = estimator.estimate(query)
        assert estimate.point == pytest.approx(truth, rel=0.5)

    def test_parametric_interval_narrower_than_nonparametric(self, missing_partition):
        query = ContingencyQuery.sum("light")
        parametric = UniformSamplingEstimator(300, method="parametric",
                                              rng=np.random.default_rng(2))
        nonparametric = UniformSamplingEstimator(300, method="nonparametric",
                                                 rng=np.random.default_rng(2))
        parametric.fit(missing_partition)
        nonparametric.fit(missing_partition)
        assert parametric.estimate(query).width <= nonparametric.estimate(query).width

    def test_min_max_estimates(self, missing_partition):
        estimator = UniformSamplingEstimator(200, rng=np.random.default_rng(3))
        estimator.fit(missing_partition)
        maximum = estimator.estimate(ContingencyQuery.max("light"))
        minimum = estimator.estimate(ContingencyQuery.min("light"))
        assert maximum.point <= maximum.upper
        assert minimum.lower <= minimum.point

    def test_empty_missing_partition(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        empty = Relation.empty(schema)
        estimator = UniformSamplingEstimator(10)
        estimator.fit(empty)
        estimate = estimator.estimate(ContingencyQuery.count())
        assert estimate.upper == 0.0


class TestStratifiedSampling:
    def test_total_estimate(self, missing_partition):
        estimator = StratifiedSamplingEstimator(400, ["device_id", "time"],
                                                num_strata=16,
                                                rng=np.random.default_rng(4))
        estimator.fit(missing_partition)
        query = ContingencyQuery.sum("light")
        truth = query.ground_truth(missing_partition)
        estimate = estimator.estimate(query)
        assert estimate.point == pytest.approx(truth, rel=0.5)

    def test_avg_falls_back_to_pooled_sample(self, missing_partition):
        estimator = StratifiedSamplingEstimator(300, ["device_id"],
                                                rng=np.random.default_rng(5))
        estimator.fit(missing_partition)
        estimate = estimator.estimate(ContingencyQuery.avg("light"))
        truth = ContingencyQuery.avg("light").ground_truth(missing_partition)
        assert estimate.lower <= truth * 1.5

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            StratifiedSamplingEstimator(0, ["x"])
        with pytest.raises(WorkloadError):
            StratifiedSamplingEstimator(10, [])


class TestHistogramEstimator:
    def test_hard_bounds_never_fail(self, missing_partition):
        estimator = HistogramEstimator(["device_id", "time"], num_buckets=64,
                                       value_attributes=["light"])
        estimator.fit(missing_partition)
        rng = np.random.default_rng(6)
        for _ in range(25):
            low = float(rng.uniform(0, 300))
            region = Predicate.range("time", low, low + 120)
            for query in (ContingencyQuery.count(region),
                          ContingencyQuery.sum("light", region)):
                truth = query.ground_truth(missing_partition)
                estimate = estimator.estimate(query)
                assert estimate.contains(truth), (query.describe(), truth, estimate)

    def test_full_region_count_is_exact(self, missing_partition):
        estimator = HistogramEstimator(["time"], num_buckets=16,
                                       value_attributes=["light"])
        estimator.fit(missing_partition)
        estimate = estimator.estimate(ContingencyQuery.count())
        assert estimate.lower == pytest.approx(missing_partition.num_rows)
        assert estimate.upper == pytest.approx(missing_partition.num_rows)

    def test_min_max_avg_queries(self, missing_partition):
        estimator = HistogramEstimator(["time"], num_buckets=16,
                                       value_attributes=["light"])
        estimator.fit(missing_partition)
        for query in (ContingencyQuery.max("light"), ContingencyQuery.min("light"),
                      ContingencyQuery.avg("light")):
            truth = query.ground_truth(missing_partition)
            assert estimator.estimate(query).contains(truth)

    def test_bucket_count_reported(self, missing_partition):
        estimator = HistogramEstimator(["time"], num_buckets=8)
        estimator.fit(missing_partition)
        assert 0 < estimator.num_buckets_used() <= 8

    def test_invalid_arguments(self):
        with pytest.raises(WorkloadError):
            HistogramEstimator([], 8)
        with pytest.raises(WorkloadError):
            HistogramEstimator(["x"], 0)


class TestGMM:
    def test_em_recovers_two_clusters(self):
        rng = np.random.default_rng(7)
        data = np.concatenate([
            rng.normal(loc=0.0, scale=0.5, size=(300, 2)),
            rng.normal(loc=10.0, scale=0.5, size=(300, 2)),
        ])
        model = DiagonalGaussianMixture.fit(data, num_components=2, rng=rng)
        means = sorted(model.means[:, 0].tolist())
        assert means[0] == pytest.approx(0.0, abs=1.0)
        assert means[1] == pytest.approx(10.0, abs=1.0)
        samples = model.sample(500, rng=rng)
        assert samples.shape == (500, 2)

    def test_fit_rejects_empty_matrix(self):
        with pytest.raises(WorkloadError):
            DiagonalGaussianMixture.fit(np.zeros((0, 2)))

    def test_generative_estimator_reasonable(self, missing_partition):
        estimator = GenerativeModelEstimator(num_components=3, num_trials=5,
                                             rng=np.random.default_rng(8))
        estimator.fit(missing_partition)
        query = ContingencyQuery.count(Predicate.range("time", 0, 360))
        truth = query.ground_truth(missing_partition)
        estimate = estimator.estimate(query)
        assert estimate.point == pytest.approx(truth, rel=0.6)

    def test_generative_estimator_empty_data(self):
        schema = Schema.from_pairs([("x", ColumnType.FLOAT)])
        estimator = GenerativeModelEstimator()
        estimator.fit(Relation.empty(schema))
        assert estimator.estimate(ContingencyQuery.count()).upper == 0.0


class TestExtrapolation:
    def test_extrapolate_function(self):
        assert extrapolate(100.0, 50, 50, AggregateFunction.SUM) == pytest.approx(200.0)
        assert extrapolate(10.0, 50, 50, AggregateFunction.AVG) == 10.0
        assert extrapolate(0.0, 0, 10, AggregateFunction.SUM) == 0.0
        with pytest.raises(WorkloadError):
            extrapolate(1.0, -1, 0, AggregateFunction.SUM)

    def test_correlated_missingness_underestimates(self):
        relation = generate_intel_wireless(num_rows=3_000, seed=10)
        scenario = remove_correlated(relation, 0.5, "light", highest=True)
        estimator = SimpleExtrapolationEstimator(scenario.observed,
                                                 scenario.missing.num_rows)
        estimator.fit(scenario.missing)
        query = ContingencyQuery.sum("light")
        truth = query.ground_truth(scenario.missing)
        estimate = estimator.estimate(query)
        # The highest-value rows are missing, so extrapolation from the
        # observed rows must under-estimate the missing total.
        assert estimate.point < truth
        assert estimator.relative_error(query, scenario.missing) > 0.2


class TestElasticSensitivity:
    def test_max_key_frequency(self):
        schema = Schema.from_pairs([("k", ColumnType.INT)])
        relation = Relation(schema, {"k": [1, 1, 1, 2, 3]})
        assert max_key_frequency(relation, "k") == 3.0
        assert max_key_frequency(Relation.empty(schema), "k") == 0.0

    def test_generic_bound(self):
        bound = elastic_sensitivity_join_bound({"R": 10, "S": 20})
        assert bound.bound == pytest.approx(min(10 * 20, 20 * 10))
        with pytest.raises(Exception):
            elastic_sensitivity_join_bound({})

    def test_triangle_bound_tracks_cartesian_growth(self):
        small = triangle_count_elastic_bound(10).bound
        large = triangle_count_elastic_bound(1000).bound
        assert large / small == pytest.approx((1000 / 10) ** 3, rel=1e-6)

    def test_chain_bound_is_cartesian_without_frequencies(self):
        bound = chain_join_elastic_bound([10, 10, 10, 10, 10])
        assert bound.bound == pytest.approx(10.0 ** 5)

    def test_chain_bound_with_frequencies(self):
        bound = chain_join_elastic_bound([10, 10], max_frequencies=[2, 2])
        assert bound.bound <= 10.0 ** 2
        with pytest.raises(Exception):
            chain_join_elastic_bound([10, 10], max_frequencies=[2])
