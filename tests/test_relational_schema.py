"""Unit tests for repro.relational.schema."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SchemaError, TypeMismatchError, UnknownAttributeError
from repro.relational.schema import Column, ColumnType, Schema


class TestColumnType:
    def test_numeric_flags(self):
        assert ColumnType.FLOAT.is_numeric
        assert ColumnType.INT.is_numeric
        assert not ColumnType.STRING.is_numeric

    def test_numpy_dtypes(self):
        assert ColumnType.FLOAT.numpy_dtype() == np.float64
        assert ColumnType.INT.numpy_dtype() == np.int64
        assert ColumnType.STRING.numpy_dtype() == np.dtype(object)

    def test_coerce_float(self):
        array = ColumnType.FLOAT.coerce([1, 2.5, "3.5"])
        assert array.dtype == np.float64
        assert array.tolist() == [1.0, 2.5, 3.5]

    def test_coerce_int_rejects_text(self):
        with pytest.raises(TypeMismatchError):
            ColumnType.INT.coerce(["not-a-number"])

    def test_coerce_string_keeps_objects(self):
        array = ColumnType.STRING.coerce(["a", "b"])
        assert array.tolist() == ["a", "b"]


class TestColumn:
    def test_requires_name(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.FLOAT)

    def test_is_numeric(self):
        assert Column("x", ColumnType.INT).is_numeric
        assert not Column("s", ColumnType.STRING).is_numeric


class TestSchema:
    def test_from_pairs_and_names(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT), ("b", ColumnType.STRING)])
        assert schema.names == ("a", "b")
        assert schema.numeric_names == ("a",)
        assert len(schema) == 2

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.from_pairs([("a", ColumnType.FLOAT), ("a", ColumnType.INT)])

    def test_column_lookup(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT)])
        assert schema.column("a").ctype is ColumnType.FLOAT
        with pytest.raises(UnknownAttributeError):
            schema.column("missing")

    def test_unknown_attribute_error_lists_available(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT)])
        with pytest.raises(UnknownAttributeError, match="available: a"):
            schema.column("b")

    def test_require_numeric(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT), ("s", ColumnType.STRING)])
        assert schema.require_numeric("a").name == "a"
        with pytest.raises(TypeMismatchError):
            schema.require_numeric("s")

    def test_index_of(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT), ("b", ColumnType.INT)])
        assert schema.index_of("b") == 1
        with pytest.raises(UnknownAttributeError):
            schema.index_of("zzz")

    def test_contains_and_iter(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT)])
        assert "a" in schema
        assert "b" not in schema
        assert [column.name for column in schema] == ["a"]

    def test_project(self):
        schema = Schema.from_pairs([("a", ColumnType.FLOAT), ("b", ColumnType.INT),
                                    ("c", ColumnType.STRING)])
        projected = schema.project(["c", "a"])
        assert projected.names == ("c", "a")

    def test_equality_and_hash(self):
        first = Schema.from_pairs([("a", ColumnType.FLOAT)])
        second = Schema.from_pairs([("a", ColumnType.FLOAT)])
        third = Schema.from_pairs([("a", ColumnType.INT)])
        assert first == second
        assert hash(first) == hash(second)
        assert first != third

    def test_merge_shared_column(self):
        left = Schema.from_pairs([("a", ColumnType.INT), ("b", ColumnType.FLOAT)])
        right = Schema.from_pairs([("b", ColumnType.FLOAT), ("c", ColumnType.STRING)])
        merged = left.merge(right)
        assert merged.names == ("a", "b", "c")

    def test_merge_conflicting_types_rejected(self):
        left = Schema.from_pairs([("a", ColumnType.INT)])
        right = Schema.from_pairs([("a", ColumnType.STRING)])
        with pytest.raises(SchemaError):
            left.merge(right)

    def test_merge_disallow_shared(self):
        left = Schema.from_pairs([("a", ColumnType.INT)])
        right = Schema.from_pairs([("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            left.merge(right, allow_shared=False)
