"""Unit tests for repro.core.constraints (value/frequency/predicate constraints)."""

from __future__ import annotations

import pytest

from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.predicates import Predicate
from repro.exceptions import ConstraintError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


class TestValueConstraint:
    def test_bounds_and_defaults(self):
        constraint = ValueConstraint({"price": (0.0, 149.99)})
        assert constraint.lower("price") == 0.0
        assert constraint.upper("price") == 149.99
        assert constraint.lower("other") == float("-inf")
        assert constraint.upper("other") == float("inf")
        assert constraint.constrains("price")
        assert not constraint.constrains("other")

    def test_invalid_range_rejected(self):
        with pytest.raises(ConstraintError):
            ValueConstraint({"price": (10.0, 1.0)})

    def test_satisfied_by_row(self):
        constraint = ValueConstraint({"price": (0.0, 100.0)})
        assert constraint.satisfied_by_row({"price": 50.0})
        assert not constraint.satisfied_by_row({"price": 150.0})
        assert not constraint.satisfied_by_row({})
        assert not constraint.satisfied_by_row({"price": "not-a-number"})

    def test_intersect_takes_most_restrictive(self):
        first = ValueConstraint({"price": (0.0, 100.0), "qty": (0, 10)})
        second = ValueConstraint({"price": (50.0, 200.0)})
        merged = first.intersect(second)
        assert merged.interval("price") == (50.0, 100.0)
        assert merged.interval("qty") == (0, 10)

    def test_intersect_can_become_empty(self):
        first = ValueConstraint({"price": (0.0, 10.0)})
        second = ValueConstraint({"price": (20.0, 30.0)})
        merged = first.intersect(second)
        assert merged.is_empty_on("price")

    def test_widened(self):
        constraint = ValueConstraint({"price": (10.0, 20.0)})
        widened = constraint.widened({"price": 5.0})
        assert widened.interval("price") == (5.0, 25.0)

    def test_equality(self):
        assert ValueConstraint({"a": (0, 1)}) == ValueConstraint({"a": (0, 1)})
        assert ValueConstraint({"a": (0, 1)}) != ValueConstraint({"a": (0, 2)})


class TestFrequencyConstraint:
    def test_validation(self):
        with pytest.raises(ConstraintError):
            FrequencyConstraint(5, 1)
        with pytest.raises(ConstraintError):
            FrequencyConstraint(-1, 1)

    def test_constructors_and_contains(self):
        assert FrequencyConstraint.at_most(5).contains(0)
        assert FrequencyConstraint.at_most(5).contains(5)
        assert not FrequencyConstraint.at_most(5).contains(6)
        assert FrequencyConstraint.exactly(3).lower == 3
        assert FrequencyConstraint.between(2, 4).contains(3)

    def test_scaled(self):
        scaled = FrequencyConstraint(3, 10).scaled(0.5)
        assert scaled.lower == 1
        assert scaled.upper == 5
        with pytest.raises(ConstraintError):
            FrequencyConstraint(0, 1).scaled(-1)


@pytest.fixture
def sales() -> Relation:
    schema = Schema.from_pairs([("branch", ColumnType.STRING),
                                ("price", ColumnType.FLOAT)])
    rows = [("Chicago", 10.0), ("Chicago", 140.0), ("New York", 90.0),
            ("Trenton", 20.0)]
    return Relation.from_rows(schema, rows)


class TestPredicateConstraint:
    def test_paper_example_c1_satisfied(self, sales):
        """c1: branch = Chicago => 0 <= price <= 149.99, (0, 5)."""
        c1 = PredicateConstraint.build(
            Predicate.equals("branch", "Chicago"),
            {"price": (0.0, 149.99)}, max_rows=5, name="c1")
        assert c1.is_satisfied_by(sales)
        assert c1.violations(sales) == []

    def test_frequency_violation(self, sales):
        constraint = PredicateConstraint.build(
            Predicate.equals("branch", "Chicago"),
            {"price": (0.0, 149.99)}, max_rows=1, name="tight")
        violations = constraint.violations(sales)
        assert len(violations) == 1
        assert violations[0].kind == "frequency"
        assert "tight" in str(violations[0])

    def test_value_violation(self, sales):
        constraint = PredicateConstraint.build(
            Predicate.equals("branch", "Chicago"),
            {"price": (0.0, 99.0)}, max_rows=10, name="low-cap")
        violations = constraint.violations(sales)
        assert any(v.kind == "value" for v in violations)

    def test_missing_attribute_violation(self, sales):
        constraint = PredicateConstraint.build(
            Predicate.true(), {"weight": (0.0, 1.0)}, max_rows=10)
        violations = constraint.violations(sales)
        assert any(v.kind == "schema" for v in violations)

    def test_minimum_rows_violation(self, sales):
        constraint = PredicateConstraint.build(
            Predicate.equals("branch", "Boston"), {"price": (0.0, 10.0)},
            max_rows=10, min_rows=1, name="requires-boston")
        violations = constraint.violations(sales)
        assert any(v.kind == "frequency" for v in violations)

    def test_value_bounds_consider_predicate_ranges(self):
        """Histogram-style tautologies bound values through the predicate."""
        constraint = PredicateConstraint.build(
            Predicate.range("price", 10.0, 20.0), {}, max_rows=5)
        assert constraint.value_upper("price") == 20.0
        assert constraint.value_lower("price") == 10.0
        assert constraint.value_upper("other") == float("inf")

    def test_value_bounds_take_most_restrictive_of_both(self):
        constraint = PredicateConstraint.build(
            Predicate.range("price", 0.0, 200.0), {"price": (5.0, 150.0)},
            max_rows=5)
        assert constraint.value_upper("price") == 150.0
        assert constraint.value_lower("price") == 5.0

    def test_rename_and_accessors(self):
        constraint = PredicateConstraint.build(Predicate.true(), {}, max_rows=7,
                                               min_rows=2, name="orig")
        renamed = constraint.rename("fresh")
        assert renamed.name == "fresh"
        assert renamed.max_rows() == 7
        assert renamed.min_rows() == 2
