"""Unit and property tests for constraint serialisation and parsing."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.io import (
    constraint_from_dict,
    constraint_to_dict,
    load_pcset,
    parse_constraint,
    parse_constraints,
    pcset_from_dict,
    pcset_to_dict,
    predicate_from_dict,
    predicate_to_dict,
    save_pcset,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import ConstraintError, PredicateError
from repro.relational.aggregates import AggregateFunction
from repro.solvers.sat import AttributeDomain


class TestPredicateRoundTrip:
    def test_ranges_and_memberships(self):
        predicate = Predicate.range("x", 0, 10, integral=True).with_equals("tag", "a")
        restored = predicate_from_dict(predicate_to_dict(predicate))
        assert restored == predicate

    def test_unbounded_range(self):
        predicate = Predicate.range("x", 5, float("inf"))
        restored = predicate_from_dict(predicate_to_dict(predicate))
        assert restored.range_for("x").high == float("inf")

    def test_tautology(self):
        assert predicate_from_dict(predicate_to_dict(Predicate.true())).is_tautology()


class TestConstraintRoundTrip:
    def test_full_round_trip(self):
        constraint = PredicateConstraint(
            Predicate.equals("branch", "Chicago"),
            ValueConstraint({"price": (0.0, 149.99)}),
            FrequencyConstraint(2, 5), name="c1")
        restored = constraint_from_dict(constraint_to_dict(constraint))
        assert restored.name == "c1"
        assert restored.predicate == constraint.predicate
        assert restored.values == constraint.values
        assert restored.frequency == constraint.frequency

    def test_malformed_frequency(self):
        with pytest.raises(ConstraintError):
            constraint_from_dict({"predicate": {}, "frequency": [1]})


class TestPCSetRoundTrip:
    def build_set(self) -> PredicateConstraintSet:
        return PredicateConstraintSet([
            PredicateConstraint(Predicate.range("utc", 11, 12),
                                ValueConstraint({"price": (0.99, 129.99)}),
                                FrequencyConstraint(50, 100), name="day1"),
            PredicateConstraint(Predicate.equals("branch", "Chicago"),
                                ValueConstraint({"price": (0.0, 149.99)}),
                                FrequencyConstraint(0, 5), name="chicago"),
        ], domains={"branch": AttributeDomain.categorical(["Chicago", "New York"]),
                    "utc": AttributeDomain.numeric(0, 24)})

    def test_dict_round_trip_preserves_bounds(self):
        pcset = self.build_set()
        restored = pcset_from_dict(pcset_to_dict(pcset))
        assert len(restored) == len(pcset)
        assert set(restored.domains) == set(pcset.domains)
        solver_a = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        solver_b = PCBoundSolver(restored, BoundOptions(check_closure=False))
        for aggregate, attribute in ((AggregateFunction.SUM, "price"),
                                     (AggregateFunction.COUNT, None)):
            original = solver_a.bound(aggregate, attribute)
            round_tripped = solver_b.bound(aggregate, attribute)
            assert original.upper == pytest.approx(round_tripped.upper)
            assert original.lower == pytest.approx(round_tripped.lower)

    def test_file_round_trip(self, tmp_path):
        pcset = self.build_set()
        path = save_pcset(pcset, tmp_path / "constraints.json")
        assert json.loads(path.read_text())["format"] == "repro.predicate-constraints"
        restored = load_pcset(path)
        assert len(restored) == 2

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(ConstraintError):
            load_pcset(path)

    def test_disjoint_hint_round_trips(self):
        pcset = PredicateConstraintSet([
            PredicateConstraint(Predicate.range("x", 0, 1), ValueConstraint(),
                                FrequencyConstraint(0, 1), name="a"),
            PredicateConstraint(Predicate.range("x", 2, 3), ValueConstraint(),
                                FrequencyConstraint(0, 1), name="b"),
        ])
        restored = pcset_from_dict(pcset_to_dict(pcset))
        assert restored.is_pairwise_disjoint()


class TestTextParser:
    def test_paper_example_c1(self):
        constraint = parse_constraint(
            "branch = 'Chicago' => 0.0 <= price <= 149.99, (0, 5)", name="c1")
        assert constraint.name == "c1"
        assert constraint.predicate.membership_for("branch").values == \
            frozenset({"Chicago"})
        assert constraint.values.interval("price") == (0.0, 149.99)
        assert constraint.frequency.upper == 5

    def test_tautology_predicate(self):
        constraint = parse_constraint("TRUE => 0.0 <= price <= 149.99, (0, 100)")
        assert constraint.predicate.is_tautology()

    def test_conjunction_and_membership(self):
        constraint = parse_constraint(
            "branch IN ('Chicago', 'Trenton') AND 0 <= utc <= 24 => "
            "0 <= price <= 10 AND 0 <= qty <= 3, (1, 7)")
        assert constraint.predicate.membership_for("branch").values == \
            frozenset({"Chicago", "Trenton"})
        assert constraint.predicate.range_for("utc").high == 24
        assert constraint.values.interval("qty") == (0.0, 3.0)
        assert constraint.frequency.lower == 1

    def test_numeric_equality_becomes_point_range(self):
        constraint = parse_constraint("device = 7 => 0 <= light <= 100, (0, 5)")
        assert constraint.predicate.range_for("device").low == 7.0
        assert constraint.predicate.range_for("device").high == 7.0

    def test_unbounded_value_range(self):
        constraint = parse_constraint("TRUE => 0 <= price <= inf, (0, 5)")
        assert constraint.values.upper("price") == float("inf")

    def test_errors(self):
        with pytest.raises(ConstraintError):
            parse_constraint("no arrow here, (0, 5)")
        with pytest.raises(ConstraintError):
            parse_constraint("TRUE => 0 <= x <= 1")
        with pytest.raises(PredicateError):
            parse_constraint("x LIKE 'foo%' => 0 <= x <= 1, (0, 5)")
        with pytest.raises(ConstraintError):
            parse_constraint("TRUE => price > 5, (0, 5)")

    def test_parse_constraints_skips_comments_and_blank_lines(self):
        lines = [
            "# the outage window",
            "",
            "11 <= utc <= 12 => 0.99 <= price <= 129.99, (50, 100)",
            "12 <= utc <= 13 => 0.99 <= price <= 149.99, (50, 100)",
        ]
        pcset = parse_constraints(lines)
        assert len(pcset) == 2
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        result = solver.bound(AggregateFunction.SUM, "price")
        assert result.upper == pytest.approx(100 * 129.99 + 100 * 149.99)

    def test_parsed_and_programmatic_sets_agree(self, paper_overlapping_pcs):
        lines = [
            "11 <= utc <= 12 => 0.99 <= price <= 129.99, (50, 100)",
            "11 <= utc <= 13 => 0.99 <= price <= 149.99, (75, 125)",
        ]
        parsed = parse_constraints(lines)
        solver_parsed = PCBoundSolver(parsed, BoundOptions(check_closure=False))
        solver_programmatic = PCBoundSolver(paper_overlapping_pcs,
                                            BoundOptions(check_closure=False))
        parsed_bound = solver_parsed.bound(AggregateFunction.SUM, "price")
        programmatic_bound = solver_programmatic.bound(AggregateFunction.SUM, "price")
        assert parsed_bound.upper == pytest.approx(programmatic_bound.upper)
        assert parsed_bound.lower == pytest.approx(programmatic_bound.lower)


# --------------------------------------------------------------------- #
# Property: serialisation round-trips arbitrary generated constraint sets.
# --------------------------------------------------------------------- #
range_strategy = st.tuples(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.floats(min_value=0, max_value=50, allow_nan=False),
)


@st.composite
def constraint_sets(draw):
    count = draw(st.integers(min_value=1, max_value=4))
    constraints = []
    for index in range(count):
        low, width = draw(range_strategy)
        value_low, value_width = draw(range_strategy)
        max_rows = draw(st.integers(min_value=0, max_value=100))
        # Keep the lower frequency at zero so that randomly generated
        # overlapping constraints can never be jointly unsatisfiable (the
        # library deliberately raises on contradictory mandatory rows).
        constraints.append(PredicateConstraint(
            Predicate.range("x", low, low + width),
            ValueConstraint({"v": (value_low, value_low + value_width)}),
            FrequencyConstraint(0, max_rows), name=f"c{index}"))
    return PredicateConstraintSet(constraints)


class TestSerialisationProperty:
    @given(pcset=constraint_sets())
    @settings(max_examples=30, deadline=None)
    def test_round_trip_preserves_bounds(self, pcset):
        restored = pcset_from_dict(json.loads(json.dumps(pcset_to_dict(pcset))))
        options = BoundOptions(check_closure=False)
        original = PCBoundSolver(pcset, options).bound(AggregateFunction.SUM, "v")
        round_tripped = PCBoundSolver(restored, options).bound(AggregateFunction.SUM, "v")
        assert original.upper == pytest.approx(round_tripped.upper, rel=1e-9, abs=1e-9)
        assert original.lower == pytest.approx(round_tripped.lower, rel=1e-9, abs=1e-9)
