"""End-to-end integration and soundness property tests.

The central guarantee of the paper is: *if the predicate-constraints hold,
the result range contains the true answer, always*.  These tests exercise
that guarantee across the whole stack — synthetic datasets, automatic PC
construction, random missing-data scenarios, random query workloads and all
five aggregates — as well as the full sensor-outage walkthrough from the
paper's introduction.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    BoundOptions,
    ContingencyQuery,
    FrequencyConstraint,
    PCAnalyzer,
    Predicate,
    PredicateConstraint,
    PredicateConstraintSet,
    ValueConstraint,
    build_corr_pcs,
)
from repro.core.builders import build_partition_pcs, build_random_pcs
from repro.datasets.intel_wireless import generate_intel_wireless
from repro.relational.aggregates import AggregateFunction
from repro.workloads.missing import remove_correlated, remove_random
from repro.workloads.queries import QueryWorkloadSpec, generate_query_workload

NO_CLOSURE = BoundOptions(check_closure=False)


class TestSensorOutageWalkthrough:
    """The introduction's scenario: one of ten partitions failed to load."""

    def setup_method(self):
        self.relation = generate_intel_wireless(num_rows=5_000, seed=42)
        # Partition 7 of 10 (by time) failed to load.
        low, high = self.relation.column_range("time")
        width = (high - low) / 10.0
        self.outage = Predicate.range("time", low + 6 * width, low + 7 * width)
        mask = self.outage.to_expression().evaluate(self.relation)
        self.missing = self.relation.filter(mask)
        self.observed = self.relation.filter(~mask)

    def test_full_workflow(self):
        # The analyst writes constraints about the lost partition by looking
        # at comparable historical windows; here we build them automatically.
        pcset = build_corr_pcs(self.missing, "light", 32,
                               candidates=["device_id", "time"])
        analyzer = PCAnalyzer(pcset, observed=self.observed, options=NO_CLOSURE)

        threshold = float(np.quantile(self.relation.column("light"), 0.9))
        query = ContingencyQuery.count(Predicate.range("light", threshold,
                                                       float("inf")))
        report = analyzer.analyze(query)
        truth = query.ground_truth(self.relation)
        assert report.lower - 1e-6 <= truth <= report.upper + 1e-6

        total_light = ContingencyQuery.sum("light")
        report_sum = analyzer.analyze(total_light)
        assert report_sum.lower - 1e-6 <= total_light.ground_truth(self.relation) \
            <= report_sum.upper + 1e-6

    def test_constraint_validation_against_history(self):
        pcset = build_corr_pcs(self.missing, "light", 32,
                               candidates=["device_id", "time"])
        # The constraints were derived from the missing partition itself, so
        # they must hold on it and be reported as violation-free.
        assert not pcset.validate_against(self.missing)


class TestSoundnessAcrossSchemes:
    """Every PC construction scheme must yield sound bounds for every aggregate."""

    @pytest.fixture(scope="class")
    def scenario(self):
        relation = generate_intel_wireless(num_rows=4_000, seed=31)
        return remove_correlated(relation, 0.5, "light", highest=True)

    @pytest.fixture(scope="class")
    def queries(self, scenario):
        spec = QueryWorkloadSpec(AggregateFunction.SUM, "light",
                                 ("device_id", "time"), num_queries=10)
        relation = scenario.observed.concat(scenario.missing)
        return generate_query_workload(relation, spec, seed=17)

    @pytest.mark.parametrize("builder_name", ["corr", "partition", "random"])
    def test_bounds_contain_truth(self, scenario, queries, builder_name):
        missing = scenario.missing
        if builder_name == "corr":
            pcset = build_corr_pcs(missing, "light", 25,
                                   candidates=["device_id", "time"])
        elif builder_name == "partition":
            pcset = build_partition_pcs(missing, ["time"], 25,
                                        value_attributes=["light"])
        else:
            pcset = build_random_pcs(missing, ["device_id", "time"], 25,
                                     value_attributes=["light"],
                                     rng=np.random.default_rng(3))
        analyzer = PCAnalyzer(pcset, options=NO_CLOSURE)
        for query in queries:
            truth = query.ground_truth(missing)
            result = analyzer.bound_missing(query)
            assert result.contains(truth), (builder_name, query.describe(), truth,
                                            result)

    def test_all_aggregates_sound(self, scenario):
        missing = scenario.missing
        pcset = build_corr_pcs(missing, "light", 25, candidates=["device_id", "time"])
        analyzer = PCAnalyzer(pcset, options=NO_CLOSURE)
        region = Predicate.range("time", *missing.column_range("time"))
        cases = [
            (ContingencyQuery.count(region), missing.num_rows),
            (ContingencyQuery.sum("light", region), missing.column_sum("light")),
            (ContingencyQuery.avg("light", region), missing.column_mean("light")),
            (ContingencyQuery.min("light", region), missing.column_min("light")),
            (ContingencyQuery.max("light", region), missing.column_max("light")),
        ]
        for query, truth in cases:
            result = analyzer.bound_missing(query)
            assert result.contains(truth), (query.describe(), truth, result)


class TestRandomMissingnessProperty:
    """Hypothesis: soundness holds across random missing fractions and seeds."""

    @given(fraction=st.floats(min_value=0.1, max_value=0.9),
           seed=st.integers(min_value=0, max_value=50),
           correlated=st.booleans())
    @settings(max_examples=10, deadline=None)
    def test_sum_and_count_bounds_hold(self, fraction, seed, correlated):
        relation = generate_intel_wireless(num_rows=1_500, seed=seed)
        if correlated:
            scenario = remove_correlated(relation, fraction, "light")
        else:
            scenario = remove_random(relation, fraction,
                                     rng=np.random.default_rng(seed))
        if scenario.missing.num_rows == 0:
            return
        pcset = build_partition_pcs(scenario.missing, ["time"], 16,
                                    value_attributes=["light"])
        analyzer = PCAnalyzer(pcset, options=NO_CLOSURE)
        count = analyzer.bound_missing(ContingencyQuery.count())
        total = analyzer.bound_missing(ContingencyQuery.sum("light"))
        assert count.contains(scenario.missing.num_rows)
        assert total.contains(scenario.missing.column_sum("light"))


class TestManualConstraintWorkflow:
    """The paper's §2.1 sales example written out by hand."""

    def test_chicago_new_york_outage(self):
        domains = None
        chicago = PredicateConstraint(
            Predicate.equals("branch", "Chicago"),
            ValueConstraint({"price": (0.0, 149.99)}),
            FrequencyConstraint.at_most(300 * 3), name="chicago-3-days")
        new_york = PredicateConstraint(
            Predicate.equals("branch", "New York"),
            ValueConstraint({"price": (0.0, 99.99)}),
            FrequencyConstraint.at_most(200 * 3), name="new-york-3-days")
        from repro.solvers.sat import AttributeDomain
        pcset = PredicateConstraintSet(
            [chicago, new_york],
            domains={"branch": AttributeDomain.categorical(
                ["Chicago", "New York"])})
        # Closure holds because the outage only affected those two branches.
        assert pcset.is_closed()
        analyzer = PCAnalyzer(pcset)
        report = analyzer.analyze(ContingencyQuery.sum("price"))
        expected_upper = 900 * 149.99 + 600 * 99.99
        assert report.upper == pytest.approx(expected_upper)
        assert report.lower == pytest.approx(0.0)
