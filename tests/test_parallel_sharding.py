"""Unit tests for repro.parallel: sharding, the executor, verification.

The randomized harness (test_property_soundness) pins the end-to-end
equivalences; these tests pin the pieces — the overlap-graph partition, the
shard merge algebra, executor mode selection and capability gating, the
pickle-safe program handoff, and the cross-backend alarm actually firing
when a backend is (deliberately) broken.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.core.ranges import ResultRange
from repro.exceptions import DisjointRangeError, SolverError
from repro.parallel import (
    SolveExecutor,
    merge_shard_ranges,
    partition_constraint_indices,
    shard_plan,
)
from repro.plan.ir import BoundQuery, build_plan
from repro.relational.aggregates import AggregateFunction
from repro.service import ContingencyService
from repro.solvers.lp import LPSolution, SolutionStatus
from repro.solvers.registry import (
    BackendCapabilities,
    has_backend,
    register_backend,
)


def pc(predicate, lo, hi, name, value_range=(0.0, 10.0)):
    return PredicateConstraint(predicate, ValueConstraint({"v": value_range}),
                               FrequencyConstraint(lo, hi), name=name)


def windows_pcset(count: int = 6, mandatory: bool = False
                  ) -> PredicateConstraintSet:
    """``count`` disjoint unit windows over ``t`` (each its own component)."""
    constraints = [pc(Predicate.range("t", float(i), i + 0.999),
                      5 if mandatory else 0, 10 + i, f"w{i}",
                      value_range=(float(i), float(i + 10)))
                   for i in range(count)]
    pcset = PredicateConstraintSet(constraints)
    pcset.mark_disjoint(True)
    return pcset


def chained_pcset() -> PredicateConstraintSet:
    """Two overlap components: {a, b} (chained) and {c} (isolated)."""
    return PredicateConstraintSet([
        pc(Predicate.range("t", 0, 2), 0, 10, "a"),
        pc(Predicate.range("t", 1, 3), 0, 10, "b"),
        pc(Predicate.range("t", 10, 12), 0, 10, "c"),
    ])


# --------------------------------------------------------------------- #
# Overlap-graph partitioning
# --------------------------------------------------------------------- #
class TestPartitioning:
    def test_disjoint_set_splits_into_singletons(self):
        components = partition_constraint_indices(windows_pcset(5))
        assert components == [(0,), (1,), (2,), (3,), (4,)]

    def test_overlap_chain_forms_one_component(self):
        components = partition_constraint_indices(chained_pcset())
        assert components == [(0, 1), (2,)]

    def test_empty_set(self):
        assert partition_constraint_indices(PredicateConstraintSet()) == []

    def test_shard_plan_groups_respect_max_shards(self):
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), windows_pcset(6))
        sharded = shard_plan(plan, max_shards=2)
        assert len(sharded) == 2 and sharded.is_sharded
        merged_indices = sorted(index for shard in sharded
                                for index in shard.indices)
        assert merged_indices == list(range(6))
        # Balanced: 6 singleton components over 2 bins -> 3 + 3.
        assert sorted(len(shard.indices) for shard in sharded) == [3, 3]

    def test_single_component_plan_is_not_sharded(self):
        pcset = PredicateConstraintSet([
            pc(Predicate.range("t", 0, 2), 0, 10, "a"),
            pc(Predicate.range("t", 1, 3), 0, 10, "b"),
        ])
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), pcset)
        sharded = shard_plan(plan)
        assert len(sharded) == 1 and not sharded.is_sharded

    def test_shard_cache_tokens_are_distinct(self):
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), windows_pcset(4))
        sharded = shard_plan(plan, max_shards=4)
        tokens = {shard.cache_token() for shard in sharded}
        assert len(tokens) == len(sharded)

    def test_invalid_max_shards_rejected(self):
        plan = build_plan(BoundQuery(AggregateFunction.COUNT), windows_pcset(3))
        with pytest.raises(SolverError):
            shard_plan(plan, max_shards=0)


# --------------------------------------------------------------------- #
# Merge algebra
# --------------------------------------------------------------------- #
class TestMergeShardRanges:
    def test_count_and_sum_add(self):
        merged = merge_shard_ranges(AggregateFunction.COUNT, [
            ResultRange(1.0, 5.0), ResultRange(2.0, 7.0)])
        assert (merged.lower, merged.upper) == (3.0, 12.0)

    def test_max_takes_extrema_and_ignores_empty_shards(self):
        merged = merge_shard_ranges(AggregateFunction.MAX, [
            ResultRange(None, 9.0), ResultRange(4.0, 6.0),
            ResultRange(None, None)], attribute="v")
        assert (merged.lower, merged.upper) == (4.0, 9.0)

    def test_min_takes_extrema(self):
        merged = merge_shard_ranges(AggregateFunction.MIN, [
            ResultRange(1.0, None), ResultRange(3.0, 8.0)], attribute="v")
        assert (merged.lower, merged.upper) == (1.0, 8.0)

    def test_all_empty_shards_stay_undefined(self):
        merged = merge_shard_ranges(AggregateFunction.MAX, [
            ResultRange(None, None), ResultRange(None, None)])
        assert (merged.lower, merged.upper) == (None, None)

    def test_avg_is_rejected(self):
        with pytest.raises(SolverError):
            merge_shard_ranges(AggregateFunction.AVG, [ResultRange(0.0, 1.0)])

    def test_empty_input_rejected(self):
        with pytest.raises(SolverError):
            merge_shard_ranges(AggregateFunction.COUNT, [])

    def test_sharded_bound_carries_merged_statistics(self):
        """The sharded path stays observable: statistics are summed, not
        dropped (serial ranges carry the decomposition statistics too)."""
        sharded = PCBoundSolver(windows_pcset(4), BoundOptions(
            check_closure=False, solve_workers=2))
        result = sharded.bound(AggregateFunction.COUNT)
        assert result.statistics is not None
        plan = sharded.sharded_plan(None, None)
        per_shard = [sharded.shard_program(shard, None, None)
                     .decomposition.statistics for shard in plan]
        assert result.statistics.solver_calls == \
            sum(statistics.solver_calls for statistics in per_shard)
        assert result.statistics.satisfiable_cells == \
            sum(statistics.satisfiable_cells for statistics in per_shard)


# --------------------------------------------------------------------- #
# Executor
# --------------------------------------------------------------------- #
class TestSolveExecutor:
    def test_serial_and_thread_map_preserve_order(self):
        for mode in ("serial", "thread"):
            with SolveExecutor(max_workers=4, mode=mode) as executor:
                assert executor.map(lambda x: x * x, range(8)) == \
                    [x * x for x in range(8)]

    def test_width_one_degrades_to_serial(self):
        executor = SolveExecutor(max_workers=1, mode="thread")
        assert executor.mode == "serial"

    def test_unknown_mode_rejected(self):
        with pytest.raises(SolverError):
            SolveExecutor(mode="fibers")

    def test_process_mode_gated_on_capability_flag(self):
        register_backend(
            "test-native-handle",
            lambda model, time_limit=None: None,
            replace=True,
            capabilities=BackendCapabilities(process_safe=False))
        with pytest.raises(SolverError, match="not process-safe"):
            SolveExecutor(max_workers=2, mode="process",
                          backend="test-native-handle")
        # Thread mode stays available for the same backend.
        SolveExecutor(max_workers=2, mode="thread",
                      backend="test-native-handle")

    def test_batch_process_mode_honours_capability_gate(self):
        """A process-mode batch falls back to the thread pool on a
        process-unsafe backend instead of crashing inside a worker."""
        from repro.core.engine import ContingencyQuery, PCAnalyzer
        from repro.service.batch import BatchExecutor
        from repro.solvers.milp import _solve_scipy

        register_backend(
            "test-native-handle-batch",
            lambda model, time_limit=None: _solve_scipy(model),
            replace=True,
            capabilities=BackendCapabilities(process_safe=False))
        analyzer = PCAnalyzer(windows_pcset(3), options=BoundOptions(
            check_closure=False, milp_backend="test-native-handle-batch"))
        with BatchExecutor(max_workers=2, mode="process") as executor:
            result = executor.execute(analyzer, [ContingencyQuery.count()])
        assert result.statistics.executor_mode == "thread"
        baseline = PCAnalyzer(windows_pcset(3), options=BoundOptions(
            check_closure=False)).analyze(ContingencyQuery.count())
        assert result.reports[0].lower == baseline.lower
        assert result.reports[0].upper == baseline.upper

    def test_solve_programs_matches_direct_bounds(self):
        solver = PCBoundSolver(windows_pcset(4),
                               BoundOptions(check_closure=False))
        sharded = solver.sharded_plan(None, "v", max_shards=2)
        programs = [solver.shard_program(shard, None, "v")
                    for shard in sharded]
        with SolveExecutor(max_workers=2, mode="thread") as executor:
            endpoints = executor.solve_programs(programs,
                                                AggregateFunction.SUM)
        direct = [program.bound(AggregateFunction.SUM)
                  for program in programs]
        assert endpoints == [(r.lower, r.upper, r.closed) for r in direct]


# --------------------------------------------------------------------- #
# Pickle-safe handoff
# --------------------------------------------------------------------- #
class TestPickleHandoff:
    def test_warm_program_roundtrips_with_skeletons(self):
        solver = PCBoundSolver(chained_pcset(),
                               BoundOptions(check_closure=False))
        program = solver.program(None, "v")
        before = program.bound(AggregateFunction.AVG, known_sum=10.0,
                               known_count=2.0)
        restored = pickle.loads(pickle.dumps(program))
        after = restored.bound(AggregateFunction.AVG, known_sum=10.0,
                               known_count=2.0)
        assert (before.lower, before.upper) == (after.lower, after.upper)
        # Lazily-built skeleton variants travel with the program.
        assert restored._skeletons.keys() == program._skeletons.keys()

    def test_solver_roundtrips_without_shared_caches(self):
        solver = PCBoundSolver(windows_pcset(3),
                               BoundOptions(check_closure=False))
        before = solver.bound(AggregateFunction.COUNT)
        restored = pickle.loads(pickle.dumps(solver))
        after = restored.bound(AggregateFunction.COUNT)
        assert (before.lower, before.upper) == (after.lower, after.upper)


# --------------------------------------------------------------------- #
# Cross-backend verification
# --------------------------------------------------------------------- #
def _register_inflating_backend(name: str, factor: float) -> None:
    """A deliberately-broken backend: every objective scaled by ``factor``."""
    from repro.solvers.milp import _solve_scipy

    def broken(model, time_limit=None):
        solution = _solve_scipy(model)
        if solution.status is not SolutionStatus.OPTIMAL:
            return solution
        assert solution.objective is not None
        return LPSolution(SolutionStatus.OPTIMAL,
                          solution.objective * factor, solution.values)

    register_backend(name, broken, replace=True)


class TestCrossBackendVerification:
    OVERLAPPING = PredicateConstraintSet([
        pc(Predicate.range("t", 0, 2), 50, 100, "t1", value_range=(1.0, 20.0)),
        pc(Predicate.range("t", 1, 3), 75, 125, "t2", value_range=(1.0, 30.0)),
    ])

    def test_healthy_backends_agree(self):
        plain = PCBoundSolver(self.OVERLAPPING,
                              BoundOptions(check_closure=False))
        verified = PCBoundSolver(self.OVERLAPPING, BoundOptions(
            check_closure=False, verify_backend="branch-and-bound"))
        for aggregate, attribute in [(AggregateFunction.COUNT, None),
                                     (AggregateFunction.SUM, "v")]:
            expected = plain.bound(aggregate, attribute)
            actual = verified.bound(aggregate, attribute)
            assert (actual.lower, actual.upper) == \
                (expected.lower, expected.upper)

    def test_broken_backend_trips_the_alarm(self):
        # x5 pushes the broken COUNT range [375, 1125] clear of the true
        # [75, 225] — the two cannot both be sound, so verification alarms.
        _register_inflating_backend("test-broken-x5", 5.0)
        assert has_backend("test-broken-x5")
        verified = PCBoundSolver(self.OVERLAPPING, BoundOptions(
            check_closure=False, verify_backend="test-broken-x5"))
        with pytest.raises(DisjointRangeError, match="test-broken-x5"):
            verified.bound(AggregateFunction.COUNT)

    def test_service_cross_backend_mode(self):
        from repro.core.engine import ContingencyQuery

        service = ContingencyService(verify="cross-backend")
        session = service.register("verified", self.OVERLAPPING,
                                   options=BoundOptions(check_closure=False))
        assert session.options.verify_backend == "branch-and-bound"
        report = service.analyze("verified", ContingencyQuery.count())
        plain = PCBoundSolver(self.OVERLAPPING,
                              BoundOptions(check_closure=False))
        expected = plain.bound(AggregateFunction.COUNT)
        assert (report.lower, report.upper) == (expected.lower, expected.upper)

    def test_service_rejects_unknown_verify_mode(self):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            ContingencyService(verify="triple-modular")

    def test_verified_session_fingerprint_differs(self):
        from repro.service import fingerprint_bound_options

        plain = fingerprint_bound_options(BoundOptions())
        verified = fingerprint_bound_options(
            BoundOptions(verify_backend="branch-and-bound"))
        assert plain != verified
