"""Unit and property tests for the LP and MILP solving layers."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InfeasibleProblemError, SolverError, UnboundedProblemError
from repro.solvers.lp import LinearProgram, Sense, SolutionStatus
from repro.solvers.milp import MILPBackend, MILPModel, solve_milp


class TestLinearProgram:
    def test_simple_maximisation(self):
        program = LinearProgram(Sense.MAXIMIZE)
        program.add_variable("x", 0, 10)
        program.add_variable("y", 0, 10)
        program.add_constraint({"x": 1, "y": 1}, upper=12)
        program.set_objective({"x": 2, "y": 3})
        solution = program.solve().raise_for_status()
        assert solution.objective == pytest.approx(2 * 2 + 3 * 10, rel=1e-6) or \
            solution.objective == pytest.approx(30 + 2 * 2, rel=1e-6)
        # optimum: y=10, x=2 -> 34
        assert solution.objective == pytest.approx(34.0, rel=1e-6)
        assert solution.value("y") == pytest.approx(10.0, abs=1e-6)

    def test_minimisation_with_lower_bounds(self):
        program = LinearProgram(Sense.MINIMIZE)
        program.add_variable("x", 0, 100)
        program.add_variable("y", 0, 100)
        program.add_constraint({"x": 1, "y": 2}, lower=10)
        program.set_objective({"x": 3, "y": 1})
        solution = program.solve().raise_for_status()
        assert solution.objective == pytest.approx(5.0, rel=1e-6)

    def test_infeasible(self):
        program = LinearProgram(Sense.MAXIMIZE)
        program.add_variable("x", 0, 1)
        program.add_constraint({"x": 1}, lower=5)
        program.set_objective({"x": 1})
        solution = program.solve()
        assert solution.status is SolutionStatus.INFEASIBLE
        with pytest.raises(InfeasibleProblemError):
            solution.raise_for_status()

    def test_unbounded(self):
        program = LinearProgram(Sense.MAXIMIZE)
        program.add_variable("x", 0, math.inf)
        program.set_objective({"x": 1})
        solution = program.solve()
        assert solution.status is SolutionStatus.UNBOUNDED
        with pytest.raises(UnboundedProblemError):
            solution.raise_for_status()

    def test_empty_program(self):
        assert LinearProgram().solve().objective == 0.0

    def test_duplicate_variable_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_variable("x")

    def test_unknown_variable_in_constraint_rejected(self):
        program = LinearProgram()
        program.add_variable("x")
        with pytest.raises(SolverError):
            program.add_constraint({"zzz": 1.0}, upper=1)
        with pytest.raises(SolverError):
            program.set_objective({"zzz": 1.0})

    def test_invalid_bounds_rejected(self):
        program = LinearProgram()
        with pytest.raises(SolverError):
            program.add_variable("x", lower=5, upper=1)
        program.add_variable("y")
        with pytest.raises(SolverError):
            program.add_constraint({"y": 1}, lower=2, upper=1)

    def test_value_of_unknown_variable(self):
        program = LinearProgram()
        program.add_variable("x", 0, 1)
        program.set_objective({"x": 1})
        solution = program.solve()
        with pytest.raises(SolverError):
            solution.value("nope")


def build_allocation_model(uppers, capacities, group_limit) -> MILPModel:
    """A miniature version of the paper's cell-allocation program."""
    model = MILPModel()
    for index, (value, capacity) in enumerate(zip(uppers, capacities)):
        model.add_variable(f"x{index}", 0, capacity, objective=value)
    model.add_constraint({f"x{index}": 1.0 for index in range(len(uppers))},
                         upper=group_limit)
    return model


class TestMILPBackends:
    def test_simple_integer_solution(self):
        model = build_allocation_model([5.0, 3.0], [4, 4], group_limit=5)
        solution = solve_milp(model).raise_for_status()
        assert solution.objective == pytest.approx(4 * 5 + 1 * 3)

    def test_greedy_requires_pure_box(self):
        model = build_allocation_model([5.0], [4], group_limit=5)
        with pytest.raises(SolverError):
            solve_milp(model, backend=MILPBackend.GREEDY)

    def test_greedy_on_disjoint_model(self):
        model = MILPModel()
        model.add_variable("a", 0, 3, objective=2.0)
        model.add_variable("b", 0, 5, objective=-1.0)
        solution = solve_milp(model, backend=MILPBackend.GREEDY).raise_for_status()
        assert solution.objective == pytest.approx(6.0)
        assert solution.values["b"] == 0.0

    def test_greedy_minimisation(self):
        model = MILPModel(sense=Sense.MINIMIZE)
        model.add_variable("a", 1, 3, objective=2.0)
        model.add_variable("b", 0, 5, objective=-1.0)
        solution = solve_milp(model, backend=MILPBackend.GREEDY).raise_for_status()
        assert solution.objective == pytest.approx(2.0 * 1 - 1.0 * 5)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            solve_milp(MILPModel(), backend="simplex-of-doom")

    def test_empty_model(self):
        assert solve_milp(MILPModel()).objective == 0.0

    def test_infeasible_model(self):
        model = MILPModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({"x": 1.0}, lower=5)
        solution = solve_milp(model)
        assert solution.status is SolutionStatus.INFEASIBLE

    def test_relaxation_at_least_as_large_for_max(self):
        model = build_allocation_model([7.0, 2.0], [3, 3], group_limit=4)
        integral = solve_milp(model, backend=MILPBackend.SCIPY).objective
        relaxed = solve_milp(model, backend=MILPBackend.RELAXATION).objective
        assert relaxed >= integral - 1e-9

    def test_branch_and_bound_agrees_with_scipy_on_knapsack(self):
        model = MILPModel()
        values = [6.0, 5.0, 4.0]
        weights = [3.0, 2.0, 2.0]
        for index, value in enumerate(values):
            model.add_variable(f"x{index}", 0, 1, objective=value)
        model.add_constraint({f"x{index}": weights[index] for index in range(3)},
                             upper=4.0)
        scipy_solution = solve_milp(model, backend=MILPBackend.SCIPY)
        bb_solution = solve_milp(model, backend=MILPBackend.BRANCH_AND_BOUND)
        assert scipy_solution.objective == pytest.approx(bb_solution.objective)
        assert bb_solution.objective == pytest.approx(9.0)

    def test_branch_and_bound_infeasible(self):
        model = MILPModel()
        model.add_variable("x", 0, 1)
        model.add_constraint({"x": 1.0}, lower=3)
        solution = solve_milp(model, backend=MILPBackend.BRANCH_AND_BOUND)
        assert solution.status is SolutionStatus.INFEASIBLE

    def test_duplicate_variable_rejected(self):
        model = MILPModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_variable("x")

    def test_constraint_references_unknown_variable(self):
        model = MILPModel()
        model.add_variable("x")
        with pytest.raises(SolverError):
            model.add_constraint({"nope": 1.0}, upper=1)


class TestMILPBackendProperty:
    """Property: HiGHS and the pure-Python branch-and-bound agree."""

    @given(
        uppers=st.lists(st.floats(min_value=0, max_value=20, allow_nan=False),
                        min_size=1, max_size=5),
        capacities=st.lists(st.integers(min_value=0, max_value=8),
                            min_size=1, max_size=5),
        limit=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_backends_agree(self, uppers, capacities, limit):
        size = min(len(uppers), len(capacities))
        model = build_allocation_model(uppers[:size], capacities[:size], limit)
        scipy_solution = solve_milp(model, backend=MILPBackend.SCIPY)
        bb_solution = solve_milp(model, backend=MILPBackend.BRANCH_AND_BOUND)
        assert scipy_solution.is_optimal and bb_solution.is_optimal
        assert scipy_solution.objective == pytest.approx(bb_solution.objective,
                                                         rel=1e-6, abs=1e-6)
