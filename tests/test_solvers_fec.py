"""Unit tests for the fractional edge cover LP (join bound substrate)."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import JoinBoundError
from repro.solvers.fec import (
    Hyperedge,
    JoinHypergraph,
    fractional_edge_cover_number,
    solve_fractional_edge_cover,
)


def triangle_hypergraph() -> JoinHypergraph:
    return JoinHypergraph.from_mapping({
        "R": ["a", "b"],
        "S": ["b", "c"],
        "T": ["c", "a"],
    })


def chain_hypergraph(length: int = 5) -> JoinHypergraph:
    return JoinHypergraph.from_mapping({
        f"R{i + 1}": [f"x{i + 1}", f"x{i + 2}"] for i in range(length)
    })


class TestHypergraph:
    def test_construction(self):
        graph = triangle_hypergraph()
        assert len(graph) == 3
        assert set(graph.attributes) == {"a", "b", "c"}
        assert set(graph.relations_covering("b")) == {"R", "S"}

    def test_empty_edge_rejected(self):
        with pytest.raises(JoinBoundError):
            Hyperedge.of("R", [])

    def test_duplicate_relations_rejected(self):
        with pytest.raises(JoinBoundError):
            JoinHypergraph([Hyperedge.of("R", ["a"]), Hyperedge.of("R", ["b"])])

    def test_add_relation(self):
        graph = JoinHypergraph()
        graph.add_relation("R", ["a"])
        assert graph.relation_names == ("R",)


class TestFractionalEdgeCover:
    def test_triangle_cover_number_is_three_halves(self):
        assert fractional_edge_cover_number(triangle_hypergraph()) == pytest.approx(1.5)

    def test_chain_cover_number_is_three(self):
        """R1 and R5 are forced; R3 covers the middle: rho* = 3."""
        assert fractional_edge_cover_number(chain_hypergraph(5)) == pytest.approx(3.0)

    def test_single_relation(self):
        graph = JoinHypergraph.from_mapping({"R": ["a", "b"]})
        assert fractional_edge_cover_number(graph) == pytest.approx(1.0)

    def test_triangle_count_bound_matches_agm(self):
        graph = triangle_hypergraph()
        size = 100.0
        cover = solve_fractional_edge_cover(graph, {name: math.log(size)
                                                    for name in graph.relation_names})
        assert cover.bound == pytest.approx(size ** 1.5, rel=1e-6)

    def test_uneven_sizes_prefer_small_relations(self):
        graph = triangle_hypergraph()
        log_sizes = {"R": math.log(10.0), "S": math.log(10.0), "T": math.log(10000.0)}
        cover = solve_fractional_edge_cover(graph, log_sizes)
        # Covering with R and S alone (weight 1 each) costs 10*10 = 100, far
        # cheaper than any cover leaning on T.
        assert cover.bound == pytest.approx(100.0, rel=1e-6)
        assert cover.weight("T") == pytest.approx(0.0, abs=1e-6)

    def test_pinned_relation_weight_is_one(self):
        graph = triangle_hypergraph()
        cover = solve_fractional_edge_cover(
            graph, {name: math.log(50.0) for name in graph.relation_names},
            pinned_relation="R")
        assert cover.weight("R") == pytest.approx(1.0)
        assert cover.pinned_relation == "R"

    def test_unknown_pinned_relation_rejected(self):
        graph = triangle_hypergraph()
        with pytest.raises(JoinBoundError):
            solve_fractional_edge_cover(graph, {name: 1.0 for name in
                                                graph.relation_names},
                                        pinned_relation="ZZZ")

    def test_missing_log_sizes_rejected(self):
        graph = triangle_hypergraph()
        with pytest.raises(JoinBoundError):
            solve_fractional_edge_cover(graph, {"R": 1.0})

    def test_empty_hypergraph_rejected(self):
        with pytest.raises(JoinBoundError):
            solve_fractional_edge_cover(JoinHypergraph(), {})

    def test_cover_constraints_hold(self):
        graph = chain_hypergraph(4)
        cover = solve_fractional_edge_cover(
            graph, {name: 1.0 for name in graph.relation_names})
        for attribute in graph.attributes:
            total = sum(cover.weight(name)
                        for name in graph.relations_covering(attribute))
            assert total >= 1.0 - 1e-9
