"""Unit tests for repro.relational.aggregates and repro.relational.query."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError, UnsupportedAggregateError
from repro.relational.aggregates import AggregateFunction, compute_aggregate
from repro.relational.expressions import Between, IsIn
from repro.relational.query import AggregateQuery
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


class TestAggregateFunction:
    def test_parse(self):
        assert AggregateFunction.parse("sum") is AggregateFunction.SUM
        assert AggregateFunction.parse(" Count ") is AggregateFunction.COUNT
        with pytest.raises(UnsupportedAggregateError):
            AggregateFunction.parse("median")

    def test_needs_attribute(self):
        assert not AggregateFunction.COUNT.needs_attribute
        assert AggregateFunction.SUM.needs_attribute

    def test_monotonicity_flags(self):
        assert AggregateFunction.COUNT.is_monotone_in_rows
        assert AggregateFunction.SUM.is_monotone_in_rows
        assert not AggregateFunction.MIN.is_monotone_in_rows


class TestComputeAggregate:
    def test_on_values(self):
        values = [1.0, 2.0, 3.0]
        assert compute_aggregate(AggregateFunction.COUNT, values) == 3.0
        assert compute_aggregate(AggregateFunction.SUM, values) == 6.0
        assert compute_aggregate(AggregateFunction.AVG, values) == 2.0
        assert compute_aggregate(AggregateFunction.MIN, values) == 1.0
        assert compute_aggregate(AggregateFunction.MAX, values) == 3.0

    def test_empty_semantics(self):
        assert compute_aggregate(AggregateFunction.COUNT, []) == 0.0
        assert compute_aggregate(AggregateFunction.SUM, []) == 0.0
        assert compute_aggregate(AggregateFunction.AVG, []) is None
        assert compute_aggregate(AggregateFunction.MIN, []) is None
        assert compute_aggregate(AggregateFunction.MAX, []) is None


@pytest.fixture
def orders() -> Relation:
    schema = Schema.from_pairs([("day", ColumnType.FLOAT),
                                ("branch", ColumnType.STRING),
                                ("price", ColumnType.FLOAT)])
    rows = [
        (1.0, "Chicago", 10.0),
        (1.0, "New York", 20.0),
        (2.0, "Chicago", 30.0),
        (2.0, "Chicago", 40.0),
        (3.0, "Trenton", 50.0),
    ]
    return Relation.from_rows(schema, rows, name="orders")


class TestAggregateQuery:
    def test_constructor_validation(self):
        with pytest.raises(QueryError):
            AggregateQuery(AggregateFunction.SUM, None)
        with pytest.raises(QueryError):
            AggregateQuery(AggregateFunction.COUNT, "price")

    def test_count_star(self, orders):
        assert AggregateQuery.count().scalar(orders) == 5.0

    def test_sum_with_predicate(self, orders):
        query = AggregateQuery.sum("price", where=IsIn("branch", ["Chicago"]))
        assert query.scalar(orders) == 80.0

    def test_avg_min_max(self, orders):
        assert AggregateQuery.avg("price").scalar(orders) == 30.0
        assert AggregateQuery.min("price").scalar(orders) == 10.0
        assert AggregateQuery.max("price").scalar(orders) == 50.0

    def test_empty_predicate_result(self, orders):
        query = AggregateQuery.avg("price", where=Between("day", 10.0, 20.0))
        assert query.scalar(orders) is None
        count = AggregateQuery.count(where=Between("day", 10.0, 20.0))
        assert count.scalar(orders) == 0.0

    def test_group_by(self, orders):
        query = AggregateQuery.sum("price", group_by=["branch"])
        result = query.execute(orders)
        assert result.is_grouped
        assert result.groups[("Chicago",)] == 80.0
        assert result.groups[("Trenton",)] == 50.0
        with pytest.raises(QueryError):
            query.scalar(orders)

    def test_group_by_matches_union_of_filters(self, orders):
        """GROUP BY is a union of per-group queries (paper §2)."""
        grouped = AggregateQuery.count(group_by=["branch"]).execute(orders).groups
        for (branch,), value in grouped.items():
            filtered = AggregateQuery.count(where=IsIn("branch", [branch]))
            assert filtered.scalar(orders) == value

    def test_non_numeric_aggregate_rejected(self, orders):
        query = AggregateQuery.sum("branch")
        with pytest.raises(Exception):
            query.execute(orders)

    def test_describe_and_referenced_attributes(self, orders):
        query = AggregateQuery.sum("price", where=Between("day", 1.0, 2.0),
                                   group_by=["branch"])
        description = query.describe()
        assert "SUM(price)" in description
        assert "GROUP BY branch" in description
        assert query.referenced_attributes() == {"price", "day", "branch"}

    def test_matching_rows_reported(self, orders):
        result = AggregateQuery.sum("price", where=Between("day", 2.0, 3.0)).execute(orders)
        assert result.matching_rows == 3
