"""Tests for bound explanations and decomposition completeness properties."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.cells import CellDecomposer, DecompositionStrategy
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import SolverError
from repro.relational.aggregates import AggregateFunction

NO_CLOSURE = BoundOptions(check_closure=False)


class TestBoundExplanation:
    def test_paper_example_allocation(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        explanation = solver.explain(AggregateFunction.SUM, "price")
        assert explanation.bound == pytest.approx(17_748.75)
        # The optimal allocation: 50 rows in the t1∧t2 cell at 129.99 and 75
        # rows in the t2-only cell at 149.99.
        contributions = {allocation.covering_constraints: allocation
                         for allocation in explanation.allocations}
        assert contributions[("t1", "t2")].rows_allocated == pytest.approx(50)
        assert contributions[("t1", "t2")].per_row_value == pytest.approx(129.99)
        assert contributions[("t2",)].rows_allocated == pytest.approx(75)
        assert contributions[("t2",)].per_row_value == pytest.approx(149.99)
        total = sum(allocation.contribution for allocation in explanation.allocations)
        assert total == pytest.approx(explanation.bound)

    def test_saturated_constraints_reported(self, paper_overlapping_pcs):
        solver = PCBoundSolver(paper_overlapping_pcs, NO_CLOSURE)
        explanation = solver.explain(AggregateFunction.COUNT)
        # The COUNT bound (125) saturates t2's frequency capacity.
        assert "t2" in explanation.saturated_constraints
        assert "COUNT upper bound" in explanation.summary()

    def test_explanation_matches_bound(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        bound = solver.bound(AggregateFunction.SUM, "price")
        explanation = solver.explain(AggregateFunction.SUM, "price")
        assert explanation.bound == pytest.approx(bound.upper)

    def test_explanation_with_region(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        region = Predicate.range("utc", 11, 11.5)
        explanation = solver.explain(AggregateFunction.SUM, "price", region)
        assert explanation.bound == pytest.approx(100 * 129.99)

    def test_unsupported_aggregate(self, paper_disjoint_pcs):
        solver = PCBoundSolver(paper_disjoint_pcs, NO_CLOSURE)
        with pytest.raises(SolverError):
            solver.explain(AggregateFunction.MAX, "price")
        with pytest.raises(SolverError):
            solver.explain(AggregateFunction.SUM)

    def test_empty_constraint_set(self):
        solver = PCBoundSolver(PredicateConstraintSet(), NO_CLOSURE)
        explanation = solver.explain(AggregateFunction.COUNT)
        assert explanation.bound == 0.0
        assert explanation.allocations == ()


# --------------------------------------------------------------------- #
# Decomposition completeness property: every point covered by at least one
# predicate falls in exactly one enumerated cell.
# --------------------------------------------------------------------- #
segment = st.tuples(st.integers(min_value=0, max_value=12),
                    st.integers(min_value=1, max_value=6))


@st.composite
def interval_pcsets(draw):
    segments = draw(st.lists(segment, min_size=1, max_size=5))
    constraints = []
    for index, (start, width) in enumerate(segments):
        constraints.append(PredicateConstraint(
            Predicate.range("x", float(start), float(start + width)),
            ValueConstraint({"v": (0.0, 1.0)}),
            FrequencyConstraint(0, 5), name=f"seg{index}"))
    pcset = PredicateConstraintSet(constraints)
    pcset.mark_disjoint(False)  # force the full decomposition path
    return pcset, segments


class TestDecompositionCompleteness:
    @given(data=interval_pcsets(),
           probe=st.floats(min_value=-1, max_value=20, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_every_covered_point_lies_in_exactly_one_cell(self, data, probe):
        pcset, segments = data
        decomposition = CellDecomposer(pcset, DecompositionStrategy.DFS_REWRITE).decompose()
        covering = frozenset(
            index for index, (start, width) in enumerate(segments)
            if start <= probe <= start + width)
        matching_cells = [cell for cell in decomposition.cells
                          if cell.covering == covering]
        if covering:
            assert len(matching_cells) == 1
        else:
            assert not matching_cells

    @given(data=interval_pcsets())
    @settings(max_examples=40, deadline=None)
    def test_strategies_agree_on_random_interval_sets(self, data):
        pcset, _segments = data
        rewrite = CellDecomposer(pcset, DecompositionStrategy.DFS_REWRITE).decompose()
        dfs = CellDecomposer(pcset, DecompositionStrategy.DFS).decompose()
        assert {cell.covering for cell in rewrite.cells} == \
            {cell.covering for cell in dfs.cells}
