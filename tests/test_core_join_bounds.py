"""Unit tests for the multi-table join bounds (paper §5)."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import BoundOptions
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.joins import (
    JoinBoundAnalyzer,
    JoinRelationSpec,
    fec_join_bound,
    naive_join_bound,
)
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.datasets.graphs import count_triangles, generate_chain_relations, generate_edge_table
from repro.exceptions import JoinBoundError
from repro.relational.aggregates import AggregateFunction
from repro.relational.joins import natural_join_many

NO_CLOSURE = BoundOptions(check_closure=False)


def cardinality_pcset(count: int, value_attribute: str | None = None,
                      value_cap: float = 0.0) -> PredicateConstraintSet:
    bounds = {} if value_attribute is None else {value_attribute: (0.0, value_cap)}
    constraint = PredicateConstraint(Predicate.true(), ValueConstraint(bounds),
                                     FrequencyConstraint.at_most(count))
    pcset = PredicateConstraintSet([constraint])
    pcset.mark_closed(True)
    pcset.mark_disjoint(True)
    return pcset


def triangle_specs(size: int) -> list[JoinRelationSpec]:
    return [
        JoinRelationSpec("R", cardinality_pcset(size), ("a", "b")),
        JoinRelationSpec("S", cardinality_pcset(size), ("b", "c")),
        JoinRelationSpec("T", cardinality_pcset(size), ("c", "a")),
    ]


class TestNaiveJoinBound:
    def test_count_is_product(self):
        bound = naive_join_bound(triangle_specs(10), AggregateFunction.COUNT,
                                 options=NO_CLOSURE)
        assert bound.upper == pytest.approx(1000.0)
        assert bound.method == "naive"

    def test_sum_uses_home_relation(self):
        specs = [
            JoinRelationSpec("R", cardinality_pcset(10, "weight", 5.0), ("a", "b")),
            JoinRelationSpec("S", cardinality_pcset(20), ("b", "c")),
        ]
        bound = naive_join_bound(specs, AggregateFunction.SUM, attribute="weight",
                                 attribute_relation="R", options=NO_CLOSURE)
        assert bound.upper == pytest.approx(10 * 5.0 * 20)

    def test_unsupported_aggregate(self):
        with pytest.raises(JoinBoundError):
            naive_join_bound(triangle_specs(5), AggregateFunction.MAX,
                             options=NO_CLOSURE)

    def test_requires_relations(self):
        with pytest.raises(JoinBoundError):
            naive_join_bound([], options=NO_CLOSURE)

    def test_duplicate_names_rejected(self):
        spec = JoinRelationSpec("R", cardinality_pcset(3), ("a",))
        with pytest.raises(JoinBoundError):
            naive_join_bound([spec, spec], options=NO_CLOSURE)


class TestFecJoinBound:
    def test_triangle_bound_is_n_to_three_halves(self):
        bound = fec_join_bound(triangle_specs(100), AggregateFunction.COUNT,
                               options=NO_CLOSURE)
        assert bound.upper == pytest.approx(100.0 ** 1.5, rel=1e-6)
        assert bound.edge_cover is not None

    def test_chain_bound_is_n_cubed(self):
        specs = [JoinRelationSpec(f"R{i + 1}", cardinality_pcset(50),
                                  (f"x{i + 1}", f"x{i + 2}")) for i in range(5)]
        bound = fec_join_bound(specs, AggregateFunction.COUNT, options=NO_CLOSURE)
        assert bound.upper == pytest.approx(50.0 ** 3, rel=1e-6)

    def test_fec_never_looser_than_naive(self):
        for size in (5, 50, 500):
            specs = triangle_specs(size)
            fec = fec_join_bound(specs, AggregateFunction.COUNT, options=NO_CLOSURE)
            naive = naive_join_bound(specs, AggregateFunction.COUNT, options=NO_CLOSURE)
            assert fec.upper <= naive.upper + 1e-9

    def test_sum_bound_pins_home_relation(self):
        specs = [
            JoinRelationSpec("R", cardinality_pcset(10, "weight", 2.0), ("a", "b")),
            JoinRelationSpec("S", cardinality_pcset(10), ("b", "c")),
            JoinRelationSpec("T", cardinality_pcset(10), ("c", "a")),
        ]
        bound = fec_join_bound(specs, AggregateFunction.SUM, attribute="weight",
                               attribute_relation="R", options=NO_CLOSURE)
        assert bound.edge_cover.pinned_relation == "R"
        assert bound.edge_cover.weight("R") == pytest.approx(1.0)
        # SUM(weight) <= SUM_R(weight) * (|S| |T|)^{1/2} by the GWE bound.
        assert bound.upper == pytest.approx((10 * 2.0) * math.sqrt(10 * 10), rel=1e-6)

    def test_zero_cardinality_relation_collapses_bound(self):
        specs = triangle_specs(10)
        specs[1] = JoinRelationSpec("S", cardinality_pcset(0), ("b", "c"))
        bound = fec_join_bound(specs, AggregateFunction.COUNT, options=NO_CLOSURE)
        assert bound.upper == 0.0

    def test_home_relation_inference_failure(self):
        specs = triangle_specs(10)
        with pytest.raises(JoinBoundError):
            fec_join_bound(specs, AggregateFunction.SUM, attribute="weight",
                           options=NO_CLOSURE)


class TestJoinBoundAnalyzer:
    def test_compare_count(self):
        analyzer = JoinBoundAnalyzer(triangle_specs(100), NO_CLOSURE)
        comparison = analyzer.compare(AggregateFunction.COUNT)
        assert comparison["fec"].upper < comparison["naive"].upper

    def test_compare_sum_requires_attribute(self):
        analyzer = JoinBoundAnalyzer(triangle_specs(10), NO_CLOSURE)
        with pytest.raises(JoinBoundError):
            analyzer.compare(AggregateFunction.SUM)

    def test_bounds_hold_against_true_join_sizes(self):
        """Integration: both bounds dominate the exact join cardinality."""
        edges = generate_edge_table(200, seed=3)
        true_triangles = count_triangles(edges)
        analyzer = JoinBoundAnalyzer(triangle_specs(200), NO_CLOSURE)
        assert analyzer.count_bound("fec").upper >= true_triangles
        assert analyzer.count_bound("naive").upper >= true_triangles

        relations = generate_chain_relations(50, 5, seed=5)
        true_chain = natural_join_many(relations).num_rows
        chain_specs = [JoinRelationSpec(f"R{i + 1}", cardinality_pcset(50),
                                        (f"x{i + 1}", f"x{i + 2}")) for i in range(5)]
        chain_analyzer = JoinBoundAnalyzer(chain_specs, NO_CLOSURE)
        assert chain_analyzer.count_bound("fec").upper >= true_chain

    def test_spec_validation(self):
        with pytest.raises(JoinBoundError):
            JoinRelationSpec("R", cardinality_pcset(1), ())
