"""Tests for the session registry, batch executor and service facade.

Includes the subsystem's acceptance criteria: a warm service answers a
repeated query without re-running cell decomposition, and batch execution of
50+ mixed queries returns exactly what sequential ``PCAnalyzer`` calls do.
"""

from __future__ import annotations

import pytest

from repro.core.bounds import BoundOptions
from repro.core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from repro.core.engine import ContingencyQuery, PCAnalyzer
from repro.core.pcset import PredicateConstraintSet
from repro.core.predicates import Predicate
from repro.exceptions import ReproError
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import (
    BatchExecutor,
    ContingencyService,
    LRUCache,
    SessionRegistry,
)

FAST = BoundOptions(check_closure=False, avg_tolerance=1e-4,
                    avg_max_iterations=16)


def build_pcset() -> PredicateConstraintSet:
    """Two overlapping outage-day constraints (forces real decomposition)."""
    day1 = PredicateConstraint(Predicate.range("utc", 11, 12),
                               ValueConstraint({"price": (1.0, 100.0)}),
                               FrequencyConstraint(0, 10), name="day1")
    day2 = PredicateConstraint(Predicate.range("utc", 11.5, 13),
                               ValueConstraint({"price": (1.0, 200.0)}),
                               FrequencyConstraint(2, 5), name="day2")
    return PredicateConstraintSet([day1, day2])


def build_observed() -> Relation:
    schema = Schema.from_pairs([("utc", ColumnType.FLOAT),
                                ("price", ColumnType.FLOAT)])
    rows = [(10.0, 5.0), (10.5, 15.0), (11.2, 25.0), (12.5, 35.0)]
    return Relation.from_rows(schema, rows, name="observed")


def mixed_queries(count: int) -> list[ContingencyQuery]:
    """``count`` queries mixing all five aggregates over three regions."""
    queries: list[ContingencyQuery] = []
    makers = [
        lambda region: ContingencyQuery.count(region),
        lambda region: ContingencyQuery.sum("price", region),
        lambda region: ContingencyQuery.avg("price", region),
        lambda region: ContingencyQuery.min("price", region),
        lambda region: ContingencyQuery.max("price", region),
    ]
    for index in range(count):
        region = Predicate.range("utc", 11, 12 + (index % 3) * 0.5)
        queries.append(makers[index % len(makers)](region))
    return queries


class TestSessionRegistry:
    def test_register_and_get_latest(self):
        registry = SessionRegistry()
        session = registry.register("outage", build_pcset())
        assert session.version == 1
        assert registry.get("outage") is session
        assert "outage" in registry and len(registry) == 1

    def test_idempotent_reregistration(self):
        registry = SessionRegistry()
        first = registry.register("outage", build_pcset())
        second = registry.register("outage", build_pcset())
        assert second is first  # same content fingerprint, no version fork

    def test_changed_content_bumps_version(self):
        registry = SessionRegistry()
        registry.register("outage", build_pcset())
        changed = build_pcset()
        changed.add(PredicateConstraint(Predicate.range("utc", 13, 14),
                                        ValueConstraint({"price": (0.0, 10.0)}),
                                        FrequencyConstraint(0, 3), name="day3"))
        session = registry.register("outage", changed)
        assert session.version == 2
        assert registry.get("outage").version == 2
        assert registry.get("outage", version=1).version == 1
        assert [s.version for s in registry.versions("outage")] == [1, 2]

    def test_lookup_errors(self):
        registry = SessionRegistry()
        with pytest.raises(ReproError):
            registry.get("missing")
        registry.register("outage", build_pcset())
        with pytest.raises(ReproError):
            registry.get("outage", version=7)
        with pytest.raises(ReproError):
            registry.register("", build_pcset())

    def test_sessions_listing_ordered(self):
        registry = SessionRegistry()
        registry.register("b", build_pcset())
        registry.register("a", build_pcset())
        assert [s.name for s in registry.sessions()] == ["a", "b"]


class TestBatchExecutor:
    def test_groups_by_content_equal_region(self):
        executor = BatchExecutor(max_workers=2)
        region_a = Predicate.range("utc", 11, 12)
        region_b = Predicate.range("utc", 11, 12)  # equal content, new object
        queries = [ContingencyQuery.count(region_a),
                   ContingencyQuery.sum("price", region_b),
                   ContingencyQuery.count(None)]
        groups = executor.group_by_region(queries)
        assert len(groups) == 2
        assert groups[region_a] == [0, 1]
        assert groups[None] == [2]

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            BatchExecutor(max_workers=0)

    def test_empty_batch(self):
        executor = BatchExecutor(max_workers=2)
        analyzer = PCAnalyzer(build_pcset(), options=FAST)
        result = executor.execute(analyzer, [])
        assert result.reports == [] and result.statistics.total_queries == 0

    def test_batch_matches_sequential_analyzer(self):
        """Acceptance: >= 50 mixed queries, identical to sequential analysis."""
        pcset = build_pcset()
        observed = build_observed()
        queries = mixed_queries(55)

        shared_cache = LRUCache(max_entries=64, name="decomposition")
        concurrent = PCAnalyzer(pcset, observed=observed, options=FAST,
                                decomposition_cache=shared_cache)
        batch = BatchExecutor(max_workers=4).execute(concurrent, queries)

        sequential = PCAnalyzer(pcset, observed=observed, options=FAST)
        assert len(batch.reports) == len(queries)
        for query, report in zip(queries, batch.reports):
            expected = sequential.analyze(query)
            assert report.query == query  # input order preserved
            assert report.result_range.lower == expected.result_range.lower
            assert report.result_range.upper == expected.result_range.upper
            assert report.missing_range.lower == expected.missing_range.lower
            assert report.missing_range.upper == expected.missing_range.upper
            assert report.observed_value == expected.observed_value
        assert batch.statistics.region_groups == 3
        # Three distinct regions -> exactly three decompositions, ever.
        assert concurrent.solver.decompositions_computed == 3


class TestContingencyService:
    def test_repeated_query_skips_decomposition(self):
        """Acceptance: cache hits increment, solver-call counters do not."""
        service = ContingencyService(max_workers=2)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        query = ContingencyQuery.sum("price", Predicate.range("utc", 11, 13))

        first = service.analyze("outage", query)
        session = service.session("outage")
        counters_after_first = session.solver_counters()
        hits_after_first = service.report_cache.statistics.hits

        second = service.analyze("outage", ContingencyQuery.sum(
            "price", Predicate.range("utc", 11, 13)))  # equal content, new object
        assert second.result_range.lower == first.result_range.lower
        assert second.result_range.upper == first.result_range.upper
        assert service.report_cache.statistics.hits == hits_after_first + 1
        assert session.solver_counters() == counters_after_first

    def test_region_sharing_queries_share_decomposition(self):
        service = ContingencyService(max_workers=2)
        service.register("outage", build_pcset(), options=FAST)
        region = Predicate.range("utc", 11, 13)
        service.analyze("outage", ContingencyQuery.count(region))
        misses = service.decomposition_cache.statistics.misses
        # A different aggregate over the same region reuses the decomposition.
        service.analyze("outage", ContingencyQuery.sum("price", region))
        assert service.decomposition_cache.statistics.misses == misses
        assert service.decomposition_cache.statistics.hits >= 1

    def test_equal_pcsets_share_cache_across_sessions(self):
        service = ContingencyService(max_workers=2)
        service.register("first", build_pcset(), options=FAST)
        service.register("second", build_pcset(), options=FAST)
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        service.analyze("first", query)
        computed = service.statistics().decompositions_computed
        service.analyze("second", query)
        # Same content fingerprint -> same namespace -> no new decomposition.
        assert service.statistics().decompositions_computed == computed

    def test_execute_batch_mixes_cached_and_fresh(self):
        service = ContingencyService(max_workers=2)
        service.register("outage", build_pcset(), observed=build_observed(),
                         options=FAST)
        queries = mixed_queries(10)
        first = service.execute_batch("outage", queries)
        second = service.execute_batch("outage", queries)
        assert len(second.reports) == len(queries)
        for a, b in zip(first.reports, second.reports):
            assert a.result_range.lower == b.result_range.lower
            assert a.result_range.upper == b.result_range.upper
        # The repeat batch is served from the report cache entirely.
        assert second.statistics.region_groups == 0
        stats = service.statistics()
        assert stats.batches_executed == 2
        assert stats.queries_answered == 2 * len(queries)
        assert stats.report_cache.hits >= len(queries)

    def test_batch_deduplicates_identical_queries(self):
        service = ContingencyService(max_workers=2)
        service.register("outage", build_pcset(), options=FAST)
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        duplicated = [query,
                      ContingencyQuery.count(Predicate.range("utc", 11, 13)),
                      query,
                      ContingencyQuery.sum("price",
                                           Predicate.range("utc", 11, 13))]
        result = service.execute_batch("outage", duplicated)
        assert len(result.reports) == 4
        assert result.reports[0].result_range.upper \
            == result.reports[2].result_range.upper
        # Only the two *distinct* queries were solved and cached.
        assert service.report_cache.statistics.puts == 2

    def test_reregistration_with_changed_observed_data_bumps_version(self):
        service = ContingencyService(max_workers=1)
        schema = Schema.from_pairs([("utc", ColumnType.FLOAT),
                                    ("price", ColumnType.FLOAT)])
        # Same row count, min, max and sum — only the middle values differ.
        before = Relation.from_rows(schema, [(11.0, 0.0), (11.2, 3.0),
                                             (11.4, 3.0), (11.6, 6.0)])
        after = Relation.from_rows(schema, [(11.0, 0.0), (11.2, 2.0),
                                            (11.4, 4.0), (11.6, 6.0)])
        service.register("outage", build_pcset(), observed=before,
                         options=FAST)
        session = service.register("outage", build_pcset(), observed=after,
                                   options=FAST)
        assert session.version == 2
        query = ContingencyQuery.count(Predicate.range("price", 2.5, 4.5))
        report = service.analyze("outage", query)
        # Served against the *new* data: one observed row is in [2.5, 4.5].
        assert report.observed_value == 1.0

    def test_statistics_summary_renders(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), options=FAST)
        service.analyze("outage", ContingencyQuery.count())
        text = service.statistics().summary()
        assert "decomposition cache" in text and "queries answered" in text

    def test_clear_caches_forces_recompute(self, monkeypatch):
        # Pin the memory-only semantics: with a persistent tier attached
        # (the REPRO_CACHE_DIR CI leg) clear() is just a memory valve and
        # the second analyze would warm from the store instead.
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), options=FAST)
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        service.analyze("outage", query)
        service.clear_caches()
        service.analyze("outage", query)
        # Two decompositions total: one before, one after the clear.
        assert service.statistics().decompositions_computed == 2

    def test_versioned_sessions_answer_independently(self):
        service = ContingencyService(max_workers=1)
        service.register("outage", build_pcset(), options=FAST)
        widened = build_pcset().map_constraints(
            lambda pc: PredicateConstraint(
                pc.predicate, pc.values,
                FrequencyConstraint(pc.min_rows(), pc.max_rows() * 2),
                name=pc.name))
        service.register("outage", widened, options=FAST)
        query = ContingencyQuery.count(Predicate.range("utc", 11, 13))
        old = service.analyze("outage", query, version=1)
        new = service.analyze("outage", query, version=2)
        assert new.result_range.upper == 2 * old.result_range.upper
