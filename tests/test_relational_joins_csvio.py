"""Unit tests for repro.relational.joins and repro.relational.csvio."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SchemaError
from repro.relational.csvio import read_csv, write_csv
from repro.relational.joins import hash_join, join_size, natural_join, natural_join_many
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


def make_relation(name: str, columns: dict[str, list], types: dict[str, ColumnType]) -> Relation:
    schema = Schema.from_pairs([(key, types[key]) for key in columns])
    return Relation(schema, columns, name=name)


@pytest.fixture
def left() -> Relation:
    return make_relation("L", {"a": [1, 2, 2, 3], "b": [10, 20, 21, 30]},
                         {"a": ColumnType.INT, "b": ColumnType.INT})


@pytest.fixture
def right() -> Relation:
    return make_relation("R", {"b": [10, 20, 20, 99], "c": [100, 200, 201, 999]},
                         {"b": ColumnType.INT, "c": ColumnType.INT})


class TestHashJoin:
    def test_join_matches_nested_loop(self, left, right):
        joined = hash_join(left, right, ["b"])
        expected = []
        for l_row in left.iter_rows():
            for r_row in right.iter_rows():
                if l_row["b"] == r_row["b"]:
                    expected.append((l_row["a"], l_row["b"], r_row["c"]))
        assert sorted(joined.to_rows()) == sorted(expected)

    def test_join_requires_keys(self, left, right):
        with pytest.raises(SchemaError):
            hash_join(left, right, [])

    def test_join_on_missing_key(self, left, right):
        with pytest.raises(Exception):
            hash_join(left, right, ["zzz"])

    def test_empty_result(self, left):
        other = make_relation("O", {"b": [777], "c": [1]},
                              {"b": ColumnType.INT, "c": ColumnType.INT})
        joined = hash_join(left, other, ["b"])
        assert joined.num_rows == 0
        assert joined.schema.names == ("a", "b", "c")


class TestNaturalJoin:
    def test_uses_shared_attributes(self, left, right):
        joined = natural_join(left, right)
        assert joined.num_rows == hash_join(left, right, ["b"]).num_rows

    def test_cartesian_product_when_disjoint(self):
        first = make_relation("F", {"a": [1, 2]}, {"a": ColumnType.INT})
        second = make_relation("S", {"z": [7, 8, 9]}, {"z": ColumnType.INT})
        product = natural_join(first, second)
        assert product.num_rows == 6

    def test_many_requires_input(self):
        with pytest.raises(SchemaError):
            natural_join_many([])

    def test_triangle_join_counts_directed_triangles(self):
        # Graph: 0->1, 1->2, 2->0 forms one directed triangle (three rotations).
        edges = {"pairs": [(0, 1), (1, 2), (2, 0), (0, 2)]}
        src = [pair[0] for pair in edges["pairs"]]
        dst = [pair[1] for pair in edges["pairs"]]
        r = make_relation("R", {"a": src, "b": dst}, {"a": ColumnType.INT, "b": ColumnType.INT})
        s = make_relation("S", {"b": src, "c": dst}, {"b": ColumnType.INT, "c": ColumnType.INT})
        t = make_relation("T", {"c": src, "a": dst}, {"c": ColumnType.INT, "a": ColumnType.INT})
        joined = natural_join_many([r, s, t])
        # The directed cycle 0->1->2->0 appears once per starting edge: 3 rows.
        assert joined.num_rows == 3

    def test_join_size_helper(self, left, right):
        assert join_size([left, right]) == natural_join(left, right).num_rows


class TestCsvIO:
    def test_roundtrip(self, tmp_path, left):
        path = write_csv(left, tmp_path / "left.csv")
        restored = read_csv(path)
        assert restored.schema == left.schema
        assert restored.to_rows() == left.to_rows()

    def test_roundtrip_with_strings_and_floats(self, tmp_path):
        relation = make_relation("M", {"x": [1.5, 2.5], "s": ["hi", "yo"]},
                                 {"x": ColumnType.FLOAT, "s": ColumnType.STRING})
        restored = read_csv(write_csv(relation, tmp_path / "m.csv"))
        assert restored.to_rows() == relation.to_rows()

    def test_bad_header_rejected(self, tmp_path):
        target = tmp_path / "bad.csv"
        target.write_text("a,b\n1,2\n")
        with pytest.raises(SchemaError):
            read_csv(target)

    def test_empty_file_rejected(self, tmp_path):
        target = tmp_path / "empty.csv"
        target.write_text("")
        with pytest.raises(SchemaError):
            read_csv(target)
