"""Unit tests for the automatic PC builders (Corr-PC, Rand-PC, partitions)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import (
    build_corr_pcs,
    build_histogram_pcs,
    build_overlapping_pcs,
    build_partition_pcs,
    build_random_overlapping_boxes,
    build_random_pcs,
    infer_domains,
    select_correlated_attributes,
)
from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.datasets.intel_wireless import generate_intel_wireless
from repro.exceptions import DatasetError
from repro.relational.aggregates import AggregateFunction
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema


@pytest.fixture(scope="module")
def sensor_data() -> Relation:
    return generate_intel_wireless(num_rows=3_000, seed=5)


class TestInferDomains:
    def test_domain_kinds(self, sensor_data):
        domains = infer_domains(sensor_data)
        assert domains["device_id"].is_numeric
        assert domains["light"].is_numeric

    def test_categorical_domain(self):
        schema = Schema.from_pairs([("tag", ColumnType.STRING)])
        relation = Relation(schema, {"tag": ["a", "b", "a"]})
        domains = infer_domains(relation)
        assert not domains["tag"].is_numeric
        assert domains["tag"].categories.values == frozenset({"a", "b"})


class TestCorrelatedAttributeSelection:
    def test_finds_constructed_correlation(self):
        rng = np.random.default_rng(0)
        base = rng.normal(size=500)
        schema = Schema.from_pairs([("target", ColumnType.FLOAT),
                                    ("strong", ColumnType.FLOAT),
                                    ("noise", ColumnType.FLOAT)])
        relation = Relation(schema, {
            "target": base,
            "strong": base * 2.0 + rng.normal(scale=0.01, size=500),
            "noise": rng.normal(size=500),
        })
        selected = select_correlated_attributes(relation, "target", count=1)
        assert selected == ["strong"]

    def test_constant_column_scores_zero(self):
        schema = Schema.from_pairs([("target", ColumnType.FLOAT),
                                    ("flat", ColumnType.FLOAT)])
        relation = Relation(schema, {"target": [1.0, 2.0, 3.0], "flat": [5.0, 5.0, 5.0]})
        assert select_correlated_attributes(relation, "target", count=1) == ["flat"]


class TestPartitionBuilders:
    def test_partition_counts_and_validity(self, sensor_data):
        pcset = build_partition_pcs(sensor_data, ["device_id", "time"], 25,
                                    value_attributes=["light"])
        assert 10 <= len(pcset) <= 40
        assert pcset.is_pairwise_disjoint()
        assert pcset.is_closed()
        # Constraints built from the data must hold on that data.
        assert pcset.is_satisfied_by(sensor_data)

    def test_partition_total_capacity_covers_rows(self, sensor_data):
        pcset = build_partition_pcs(sensor_data, ["time"], 10,
                                    value_attributes=["light"])
        assert pcset.total_max_rows() == sensor_data.num_rows

    def test_exact_counts_mode(self, sensor_data):
        pcset = build_partition_pcs(sensor_data, ["time"], 5,
                                    value_attributes=["light"], exact_counts=True)
        assert pcset.total_min_rows() == sensor_data.num_rows

    def test_invalid_arguments(self, sensor_data):
        with pytest.raises(DatasetError):
            build_partition_pcs(sensor_data, ["time"], 0)
        with pytest.raises(DatasetError):
            build_partition_pcs(sensor_data, [], 10)
        empty = Relation.empty(sensor_data.schema)
        with pytest.raises(DatasetError):
            build_partition_pcs(empty, ["time"], 10)

    def test_corr_pcs_use_selected_attributes(self, sensor_data):
        pcset = build_corr_pcs(sensor_data, "light", 16, num_attributes=2,
                               candidates=["device_id", "time", "temperature"])
        assert pcset.is_satisfied_by(sensor_data)
        attributes = pcset.attributes()
        assert "light" in attributes  # value constraints on the target

    def test_histogram_pcs(self, sensor_data):
        pcset = build_histogram_pcs(sensor_data, "light", 12)
        assert len(pcset) == 12
        assert pcset.is_pairwise_disjoint()
        assert pcset.is_satisfied_by(sensor_data)
        with pytest.raises(DatasetError):
            build_histogram_pcs(sensor_data, "light", 0)

    def test_bounds_from_partition_pcs_contain_truth(self, sensor_data):
        """End-to-end: summarise the relation, bound SUM, compare to truth."""
        pcset = build_partition_pcs(sensor_data, ["device_id", "time"], 36,
                                    value_attributes=["light"])
        solver = PCBoundSolver(pcset, BoundOptions(check_closure=False))
        result = solver.bound(AggregateFunction.SUM, "light")
        truth = sensor_data.column_sum("light")
        assert result.contains(truth)
        count_result = solver.bound(AggregateFunction.COUNT)
        assert count_result.contains(sensor_data.num_rows)


class TestRandomBuilders:
    def test_random_partition_is_valid_and_closed(self, sensor_data):
        pcset = build_random_pcs(sensor_data, ["device_id", "time"], 25,
                                 value_attributes=["light"],
                                 rng=np.random.default_rng(1))
        assert pcset.is_satisfied_by(sensor_data)
        assert pcset.is_closed()
        assert pcset.is_pairwise_disjoint()

    def test_random_boxes_overlap_and_stay_valid(self, sensor_data):
        pcset = build_random_overlapping_boxes(sensor_data, ["device_id", "time"], 8,
                                               value_attributes=["light"],
                                               rng=np.random.default_rng(2))
        assert pcset.is_satisfied_by(sensor_data)
        assert len(pcset) == 8
        assert pcset.is_closed()  # catch-all constraint guarantees closure

    def test_random_boxes_without_catch_all(self, sensor_data):
        pcset = build_random_overlapping_boxes(sensor_data, ["time"], 5,
                                               value_attributes=["light"],
                                               rng=np.random.default_rng(3),
                                               include_catch_all=False)
        assert len(pcset) == 5

    def test_invalid_arguments(self, sensor_data):
        with pytest.raises(DatasetError):
            build_random_pcs(sensor_data, ["time"], 0)
        with pytest.raises(DatasetError):
            build_random_overlapping_boxes(Relation.empty(sensor_data.schema),
                                           ["time"], 3)


class TestOverlappingBuilder:
    def test_overlapping_partitions_are_valid(self, sensor_data):
        pcset = build_overlapping_pcs(sensor_data, ["time"], 6,
                                      overlap_fraction=0.5,
                                      value_attributes=["light"])
        assert pcset.is_satisfied_by(sensor_data)
        assert not pcset.is_pairwise_disjoint()

    def test_zero_overlap_returns_partition(self, sensor_data):
        pcset = build_overlapping_pcs(sensor_data, ["time"], 6,
                                      overlap_fraction=0.0,
                                      value_attributes=["light"])
        assert pcset.is_pairwise_disjoint()

    def test_invalid_overlap_fraction(self, sensor_data):
        with pytest.raises(DatasetError):
            build_overlapping_pcs(sensor_data, ["time"], 6, overlap_fraction=1.5)
