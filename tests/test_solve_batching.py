"""Unit coverage for the batched-solve machinery around the kernel.

The bit-identity of batched vs per-cell *results* lives in
``test_property_soundness.py``; this module pins the plumbing: the shared
knobs (:mod:`repro.solvers.batching`), the pool's batched task kinds and
traffic counters, the admission price inversion, and the profile's
batch-aware shard accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.batching import (
    MAX_BATCH_SIZE,
    adaptive_batch_size,
    batching_enabled,
    chunked,
    forced_batch_size,
    resolve_batch_size,
)


class TestKnobs:
    def test_batching_defaults_on(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BATCH", raising=False)
        assert batching_enabled()

    @pytest.mark.parametrize("value", ["0", "off", "false", "no", " OFF "])
    def test_batching_disable_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_BATCH", value)
        assert not batching_enabled()

    @pytest.mark.parametrize("value", ["1", "on", "yes", ""])
    def test_batching_enable_spellings(self, value, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_BATCH", value)
        assert batching_enabled()

    def test_forced_size_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BATCH_SIZE", raising=False)
        assert forced_batch_size() is None
        monkeypatch.setenv("REPRO_SOLVE_BATCH_SIZE", "4")
        assert forced_batch_size() == 4
        monkeypatch.setenv("REPRO_SOLVE_BATCH_SIZE", "0")
        assert forced_batch_size() is None
        monkeypatch.setenv("REPRO_SOLVE_BATCH_SIZE", "junk")
        assert forced_batch_size() is None

    def test_environment_wins_over_configured(self, monkeypatch):
        monkeypatch.setenv("REPRO_SOLVE_BATCH_SIZE", "8")
        assert resolve_batch_size(configured=3) == 8
        monkeypatch.delenv("REPRO_SOLVE_BATCH_SIZE")
        assert resolve_batch_size(configured=3) == 3
        assert resolve_batch_size(configured=None) is None

    def test_adaptive_targets_one_batch_per_worker(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BATCH_SIZE", raising=False)
        assert adaptive_batch_size(12, 4) == 3
        assert adaptive_batch_size(13, 4) == 4
        assert adaptive_batch_size(1, 4) == 1
        assert adaptive_batch_size(0, 4) == 1

    def test_adaptive_clamps_and_density_shrink(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BATCH_SIZE", raising=False)
        # Clamp: one worker and 1000 tasks still caps at MAX_BATCH_SIZE.
        assert adaptive_batch_size(1000, 1) == MAX_BATCH_SIZE
        # Heavy estimated enumeration shrinks the batch so one task never
        # concentrates the whole round's predicted work.
        light = adaptive_batch_size(64, 1, estimated_cells=64)
        heavy = adaptive_batch_size(64, 1, estimated_cells=64 * 1024)
        assert heavy < light
        assert heavy >= 1

    def test_fixed_size_wins_outright(self, monkeypatch):
        monkeypatch.delenv("REPRO_SOLVE_BATCH_SIZE", raising=False)
        assert adaptive_batch_size(1000, 1, configured=5) == 5

    def test_chunked(self):
        assert chunked([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]
        assert chunked([], 3) == []
        with pytest.raises(ValueError):
            chunked([1], 0)


class TestPoolBatchTraffic:
    def test_statistics_record_tasks_vs_cells(self):
        from repro.parallel.pool import WorkerPool

        pool = WorkerPool(max_workers=1, mode="serial", name="traffic-test")
        pool._record_batch_traffic(2, 10)
        assert pool.statistics.tasks_shipped == 2
        assert pool.statistics.cells_solved == 10
        assert pool.statistics.cells_per_task == 5.0
        snapshot = pool.statistics.snapshot()
        assert snapshot.as_dict()["cells_per_task"] == 5.0

    def test_avg_probes_batched_one_task_per_shard(self, monkeypatch):
        """A 3-probe round over 2 shards ships 2 tasks carrying 6 cells."""
        monkeypatch.setenv("REPRO_SOLVE_BATCH", "1")
        from repro.core.bounds import BoundOptions, PCBoundSolver
        from repro.parallel.pool import WorkerPool

        from test_property_soundness import scenario

        _, _, _, pcset, _ = scenario(717, "disjoint")
        solver = PCBoundSolver(pcset, BoundOptions(solve_workers=2))
        sharded = solver.sharded_plan(None, "v", max_shards=2)
        keyed = [(solver.shard_program_key(shard, None, "v"),
                  solver.shard_program(shard, None, "v"))
                 for shard in sharded]
        assert len(keyed) >= 2
        keyed = keyed[:2]
        pool = WorkerPool(max_workers=2, mode="thread", name="probe-test")
        probes = [(1.0, True, True), (2.0, False, True), (3.0, True, False)]
        outcomes = pool.avg_probes(keyed, probes)
        assert len(outcomes) == len(probes)
        assert all(len(per_shard) == len(keyed) for per_shard in outcomes)
        assert pool.statistics.tasks_shipped == len(keyed)
        assert pool.statistics.cells_solved == len(keyed) * len(probes)
        # Unbatched control: same results, one task per (probe, shard).
        monkeypatch.setenv("REPRO_SOLVE_BATCH", "0")
        control_pool = WorkerPool(max_workers=2, mode="thread",
                                  name="probe-control")
        control = control_pool.avg_probes(keyed, probes)
        assert control == outcomes
        assert control_pool.statistics.tasks_shipped == \
            len(keyed) * len(probes)


class TestAdmissionInversion:
    def _cost(self, units, cells, constraints=10, shards=1, warm=False,
              hit_rate=0.0):
        from repro.service.admission import QueryCost

        return QueryCost(units=units, aggregate="count",
                         constraint_count=constraints, estimated_cells=cells,
                         shard_count=shards, strategy="serial",
                         program_warm=warm, pool_warm_hit_rate=hit_rate)

    def test_inversion_recovers_the_fitting_cell_count(self):
        """price(cell_budget) <= budget < price(cell_budget + 1)."""
        from repro.service.admission import admissible_cell_budget

        # Serial cold COUNT: units = (cells + constraints) + cells.
        cells, constraints = 500, 20
        cost = self._cost(units=float(2 * cells + constraints), cells=cells,
                          constraints=constraints)
        budget = 300.0
        fitting = admissible_cell_budget(cost, budget)
        assert fitting == 140  # 2 * 140 + 20 == 280 <= 300 < 2 * 141 + 20

    def test_inversion_warm_query_prices_solve_only(self):
        from repro.service.admission import admissible_cell_budget

        cost = self._cost(units=500.0, cells=500, warm=True)
        assert admissible_cell_budget(cost, 123.0) == 123

    def test_inversion_zero_when_nothing_fits(self):
        from repro.service.admission import admissible_cell_budget

        cost = self._cost(units=1020.0, cells=500, constraints=20)
        assert admissible_cell_budget(cost, 10.0) == 0

    def test_rejection_carries_cell_budget_and_message(self):
        from repro.exceptions import QueryRejectedError
        from repro.service.admission import (
            AdmissionController,
            AdmissionPolicy,
        )

        controller = AdmissionController(AdmissionPolicy(max_query_cost=50.0))
        cost = self._cost(units=220.0, cells=100, constraints=10)
        with pytest.raises(QueryRejectedError) as caught:
            controller.admit(cost)
        error = caught.value
        assert error.reason == "over-budget"
        assert error.cell_budget is not None and error.cell_budget > 0
        assert f"~{error.cell_budget} estimated cell(s)" in str(error)

    def test_batch_rejection_carries_cell_budget(self):
        from repro.exceptions import QueryRejectedError
        from repro.service.admission import (
            AdmissionController,
            AdmissionPolicy,
        )

        controller = AdmissionController(AdmissionPolicy(max_query_cost=50.0))
        costs = [self._cost(units=10.0, cells=5),
                 self._cost(units=220.0, cells=100)]
        with pytest.raises(QueryRejectedError) as caught:
            controller.admit_many(costs)
        assert caught.value.cell_budget is not None


class TestProfileBatchAccounting:
    def _node(self, name, duration, attributes=None, children=None):
        from repro.obs.profile import ProfileNode

        return ProfileNode(name=name, span_id=name, start=0.0,
                           duration=duration,
                           attributes=dict(attributes or {}),
                           children=list(children or []))

    def test_shard_times_aggregate_per_shard_id(self):
        """Ten one-cell task spans == one ten-cell batch span, per shard."""
        from repro.obs.profile import QueryProfile

        tasked = QueryProfile(trace_id="t1", root=self._node(
            "bound", 1.0, children=[
                self._node(f"pool.solve-{shard}-{i}", 0.1, {"shard": shard})
                for shard in (0, 1) for i in range(10)]))
        batched = QueryProfile(trace_id="t2", root=self._node(
            "bound", 1.0, children=[
                self._node("pool.probe_batch",
                           1.0, {"shard": 0, "cells": 10}),
                self._node("pool.probe_batch",
                           1.0, {"shard": 1, "cells": 10})]))
        assert len(tasked.shard_times()) == 2
        assert len(batched.shard_times()) == 2
        assert tasked.shard_cells() == [10, 10]
        assert batched.shard_cells() == [10, 10]
        assert tasked.shard_skew() == pytest.approx(1.0)
        assert batched.shard_skew() == pytest.approx(1.0)

    def test_cell_skew_sees_hot_shard_through_batching(self):
        """Task counts mask the hot shard; the cell counters must not."""
        from repro.obs.profile import QueryProfile

        profile = QueryProfile(trace_id="t3", root=self._node(
            "bound", 1.0, children=[
                self._node("pool.solve_batch", 0.5, {"shard": 0, "cells": 30}),
                self._node("pool.solve_batch", 0.5, {"shard": 1, "cells": 10}),
            ]))
        assert profile.shard_cell_skew() == pytest.approx(30 / 20)

    def test_batch_counts_and_render(self):
        from repro.obs.profile import QueryProfile

        profile = QueryProfile(trace_id="t4", root=self._node(
            "bound", 1.0, children=[
                self._node("pool.solve_batch", 0.2, {"cells": 4}),
                self._node("pool.probe_batch", 0.2, {"cells": 6}),
                self._node("pool.solve", 0.2, {}),
            ]))
        counts = profile.batch_counts()
        assert counts == {"batched_tasks": 2.0, "batched_cells": 10.0}
        rendered = profile.render()
        assert "batched 10 cell(s) in 2 task(s)" in rendered
        payload = profile.to_dict()
        assert payload["batched_tasks"] == 2.0
        assert payload["batched_cells"] == 10.0

    def test_solver_batch_size_histogram_observes(self, monkeypatch):
        """The kernel layer records batch widths into solver.batch_size."""
        monkeypatch.setenv("REPRO_SOLVE_BATCH", "1")
        from repro.core.bounds import BoundOptions, PCBoundSolver
        from repro.obs.metrics import get_registry
        from repro.relational.aggregates import AggregateFunction

        from test_property_soundness import scenario

        _, _, _, pcset, _ = scenario(818, "disjoint")
        program = PCBoundSolver(pcset, BoundOptions()).program(None, "v")
        before = get_registry().histogram("solver.batch_size").count
        program.bound_batch([(AggregateFunction.COUNT, 0.0, 0),
                             (AggregateFunction.SUM, 0.0, 0)])
        after = get_registry().histogram("solver.batch_size").count
        assert after > before
