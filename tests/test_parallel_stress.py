"""Concurrency stress: hammer the caches and the service from many threads.

The parallel fan-out work leans on two concurrency invariants that single-
threaded tests cannot falsify:

* **compile-once** — no matter how many threads race on the same (region,
  attribute) pair, the program cache's per-key locking admits exactly one
  compilation per distinct key (duplicate compiles beyond genuine cache
  misses are a correctness bug in the locking, not just wasted work);
* **range stability** — concurrent execution returns ranges identical to a
  serial run of the same queries, on every path (service batch, direct
  solver sharding, raw cache traffic).

The quick variants run in tier-1; the heavier ``stress``-marked variants
(deselected by default, selected by the CI stress job via ``-m stress``)
push thread counts and iteration counts high enough to give races a real
chance to interleave.

The thread width honours the ``REPRO_TEST_WORKERS`` environment variable so
CI can pin the suite on multiple worker configurations.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.core.bounds import BoundOptions, PCBoundSolver
from repro.core.builders import build_partition_pcs
from repro.core.engine import ContingencyQuery
from repro.core.predicates import Predicate
from repro.relational.relation import Relation
from repro.relational.schema import ColumnType, Schema
from repro.service import ContingencyService, LRUCache


def worker_width(default: int = 4) -> int:
    """Thread width for this run (CI pins it via REPRO_TEST_WORKERS)."""
    value = os.environ.get("REPRO_TEST_WORKERS", "")
    return int(value) if value.isdigit() and int(value) > 0 else default


def stress_pcset() -> tuple[Relation, object]:
    rng = np.random.default_rng(42)
    schema = Schema.from_pairs([("t", ColumnType.FLOAT), ("v", ColumnType.FLOAT)])
    t = rng.uniform(0.0, 60.0, 300)
    v = np.round(rng.uniform(1.0, 90.0, 300), 3)
    relation = Relation.from_rows(schema, list(zip(t.tolist(), v.tolist())),
                                  name="stress")
    return relation, build_partition_pcs(relation, ["t"], 8)


def mixed_queries(regions: int) -> list[ContingencyQuery]:
    queries: list[ContingencyQuery] = []
    for index in range(regions):
        region = Predicate.range("t", 6.0 * index, 6.0 * index + 12.0)
        queries.extend([
            ContingencyQuery.count(region),
            ContingencyQuery.sum("v", region),
            ContingencyQuery.avg("v", region),
            ContingencyQuery.min("v", region),
            ContingencyQuery.max("v", region),
        ])
    return queries


def run_service_rounds(threads: int, rounds: int,
                       queries: list[ContingencyQuery]):
    """Fire ``rounds`` concurrent batches and return (service, all results)."""
    _, pcset = stress_pcset()
    service = ContingencyService(max_workers=threads)
    service.register("stress", pcset)
    results = []
    with ThreadPoolExecutor(max_workers=threads) as pool:
        futures = [pool.submit(service.execute_batch, "stress", queries)
                   for _ in range(rounds)]
        results = [future.result() for future in futures]
    return service, results


def distinct_program_groups(queries: list[ContingencyQuery]) -> int:
    return len({(query.region, query.attribute) for query in queries})


# --------------------------------------------------------------------- #
# Tier-1 variants
# --------------------------------------------------------------------- #
def test_concurrent_batches_compile_each_program_once():
    """Many concurrent batches, one compilation per distinct program key."""
    queries = mixed_queries(regions=4)
    service, results = run_service_rounds(threads=worker_width(), rounds=4,
                                          queries=queries)
    statistics = service.statistics()
    assert statistics.programs_compiled == distinct_program_groups(queries)
    # Every concurrent round produced byte-identical ranges.
    reference = [(r.lower, r.upper) for r in results[0].reports]
    for result in results[1:]:
        assert [(r.lower, r.upper) for r in result.reports] == reference


def test_concurrent_ranges_match_serial_run():
    queries = mixed_queries(regions=3)
    _, pcset = stress_pcset()
    serial_service = ContingencyService(max_workers=1)
    serial_service.register("stress", pcset)
    serial = serial_service.execute_batch("stress", queries)
    _, results = run_service_rounds(threads=worker_width(), rounds=2,
                                    queries=queries)
    expected = [(r.lower, r.upper) for r in serial.reports]
    for result in results:
        assert [(r.lower, r.upper) for r in result.reports] == expected


def test_lru_cache_deduplicates_racing_factories():
    """The per-key lock admits one factory call per key under contention."""
    cache = LRUCache(max_entries=64)
    calls: dict[int, int] = {}
    calls_lock = threading.Lock()

    def factory_for(key: int):
        def factory():
            with calls_lock:
                calls[key] = calls.get(key, 0) + 1
            return key * 2
        return factory

    def hammer(_worker: int):
        for key in range(16):
            assert cache.get_or_compute(key, factory_for(key)) == key * 2

    with ThreadPoolExecutor(max_workers=worker_width()) as pool:
        list(pool.map(hammer, range(worker_width() * 2)))
    assert calls == {key: 1 for key in range(16)}


def test_sharded_solver_is_thread_safe():
    """Concurrent sharded bounds agree with each other and with serial."""
    _, pcset = stress_pcset()
    serial = PCBoundSolver(pcset, BoundOptions())
    sharded = PCBoundSolver(pcset, BoundOptions(solve_workers=3))
    queries = mixed_queries(regions=3)

    def solve_all(_worker: int):
        return [sharded.bound(q.aggregate, q.attribute, q.region)
                for q in queries]

    with ThreadPoolExecutor(max_workers=worker_width()) as pool:
        outcomes = list(pool.map(solve_all, range(worker_width())))
    expected = [serial.bound(q.aggregate, q.attribute, q.region)
                for q in queries]
    for ranges in outcomes:
        assert [(r.lower, r.upper) for r in ranges] == \
            [(r.lower, r.upper) for r in expected]


# --------------------------------------------------------------------- #
# Stress variants (deselected by default; CI runs them with `-m stress`)
# --------------------------------------------------------------------- #
@pytest.mark.stress
def test_stress_many_threads_many_rounds():
    """High-contention soak: wide pools, repeated rounds, one compile per key."""
    queries = mixed_queries(regions=8)
    threads = max(worker_width(), 8)
    service, results = run_service_rounds(threads=threads, rounds=12,
                                          queries=queries)
    statistics = service.statistics()
    assert statistics.programs_compiled == distinct_program_groups(queries)
    reference = [(r.lower, r.upper) for r in results[0].reports]
    for result in results[1:]:
        assert [(r.lower, r.upper) for r in result.reports] == reference


@pytest.mark.stress
def test_stress_program_cache_thrash_stays_consistent():
    """Under forced LRU eviction, re-compiles happen but ranges never drift."""
    _, pcset = stress_pcset()
    # A program cache far smaller than the working set: every round evicts.
    service = ContingencyService(program_cache_entries=2,
                                 report_cache_entries=1,
                                 max_workers=worker_width())
    service.register("thrash", pcset)
    queries = mixed_queries(regions=6)
    serial_service = ContingencyService(max_workers=1)
    serial_service.register("thrash", pcset)
    expected = [(r.lower, r.upper)
                for r in serial_service.execute_batch("thrash", queries).reports]
    for _ in range(4):
        result = service.execute_batch("thrash", queries)
        assert [(r.lower, r.upper) for r in result.reports] == expected
    statistics = service.statistics()
    # Evictions force re-compiles, but never more than one per cache miss.
    cache_statistics = statistics.program_cache
    assert statistics.programs_compiled <= cache_statistics.misses
    assert cache_statistics.evictions > 0


@pytest.mark.stress
def test_stress_decomposition_counters_stay_exact():
    """Counter accounting stays exact under maximal interleaving."""
    queries = mixed_queries(regions=5)
    service, _ = run_service_rounds(threads=max(worker_width(), 8), rounds=8,
                                    queries=queries)
    statistics = service.statistics()
    distinct_regions = len({query.region for query in queries})
    assert statistics.decompositions_computed == distinct_regions
