"""A persistent, corruption-tolerant cache tier backed by sqlite.

:class:`PersistentStore` is the disk side of the service cache stack: the
in-memory :class:`~repro.service.cache.LRUCache` instances for decompositions
and reports attach a store (see :meth:`LRUCache.attach_store`) and from then
on every ``put`` writes through and every memory miss falls back to a store
read, so warm work survives process restarts and can be shared between
replicas pointing at the same directory.

Design rules, in order of importance:

* **Never wrong, never fatal.**  Cache keys embed content fingerprints, so a
  row can only ever be stale-keyed, not stale-valued — and any failure on the
  read path (missing file, truncated database, unpicklable row, schema drift)
  degrades to a plain cache miss.  A corrupted store file is recreated in
  place; the caller recomputes and repopulates.
* **Schema versioned.**  ``PRAGMA user_version`` stamps the on-disk layout;
  opening a store written by an incompatible version drops and recreates the
  table rather than guessing at row meaning.
* **Content-addressed rows.**  Lookup keys are the SHA-256 of the pickled
  cache key (cache keys are tuples of fingerprints/predicates, already
  content-derived); values are pickled Python objects.  Two processes running
  the same code produce the same key bytes for the same logical entry.

Rows are namespaced by ``kind`` (one per attached cache) so decompositions
and reports share one file without colliding.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterator

from ..obs.metrics import get_registry

__all__ = ["PersistentStore", "StoreStatistics", "default_cache_dir"]

#: Bump whenever the table layout or value encoding changes incompatibly.
SCHEMA_VERSION = 1

_DB_FILENAME = "repro-cache.sqlite"

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_dir() -> str | None:
    """The cache directory from ``REPRO_CACHE_DIR`` (``None`` when unset)."""
    value = os.environ.get(_ENV_CACHE_DIR, "").strip()
    return value or None


@dataclass
class StoreStatistics:
    """Counters describing one store's traffic (reads include misses)."""

    reads: int = 0
    hits: int = 0
    writes: int = 0
    errors: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "reads": self.reads,
            "hits": self.hits,
            "writes": self.writes,
            "errors": self.errors,
        }

    def snapshot(self) -> "StoreStatistics":
        return StoreStatistics(self.reads, self.hits, self.writes, self.errors)


class PersistentStore:
    """A sqlite-backed key/value tier for the service caches.

    Parameters
    ----------
    cache_dir:
        Directory holding the database file (created if absent).  Multiple
        stores — even in different processes — may point at the same
        directory; sqlite serialises writers.
    """

    def __init__(self, cache_dir: str | Path):
        self._directory = Path(cache_dir)
        self._path = self._directory / _DB_FILENAME
        self._lock = threading.RLock()
        self._statistics = StoreStatistics()
        self._connection: sqlite3.Connection | None = None
        self._closed = False
        try:
            self._directory.mkdir(parents=True, exist_ok=True)
        except OSError:
            # An unusable directory is a permanently cold store, not an
            # error: every read misses, every write no-ops.  The query
            # path must never pay for a misconfigured cache location.
            self._count_error()
            return
        self._open()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        return self._path

    @property
    def statistics(self) -> StoreStatistics:
        return self._statistics

    def close(self) -> None:
        with self._lock:
            self._closed = True
            if self._connection is not None:
                try:
                    self._connection.close()
                except sqlite3.Error:
                    pass
                self._connection = None

    def _open(self) -> None:
        """Open (or create) the database, recreating it when incompatible."""
        try:
            self._connection = self._connect()
        except sqlite3.Error:
            self._recreate()

    def _connect(self) -> sqlite3.Connection:
        connection = sqlite3.connect(str(self._path), check_same_thread=False)
        version = connection.execute("PRAGMA user_version").fetchone()[0]
        if version not in (0, SCHEMA_VERSION):
            # Written by an incompatible layout: drop rather than guess.
            connection.execute("DROP TABLE IF EXISTS entries")
        connection.execute(
            "CREATE TABLE IF NOT EXISTS entries ("
            " kind TEXT NOT NULL,"
            " key BLOB NOT NULL,"
            " key_pickle BLOB NOT NULL,"
            " value BLOB NOT NULL,"
            " PRIMARY KEY (kind, key))"
        )
        connection.execute(f"PRAGMA user_version = {SCHEMA_VERSION}")
        connection.commit()
        return connection

    def _recreate(self) -> None:
        """Replace a corrupted/truncated database file with a fresh one.

        Losing the warm entries is exactly the contract: a bad store is a
        cold cache, never an error surfaced to a query.
        """
        if self._connection is not None:
            try:
                self._connection.close()
            except sqlite3.Error:
                pass
            self._connection = None
        try:
            self._path.unlink(missing_ok=True)
            self._connection = self._connect()
        except (OSError, sqlite3.Error):
            self._connection = None
        self._count_error()

    def _count_error(self) -> None:
        self._statistics.errors += 1
        get_registry().counter("store.errors").inc()

    # ------------------------------------------------------------------ #
    # Key/value encoding
    # ------------------------------------------------------------------ #
    @staticmethod
    def _encode_key(key: Hashable) -> tuple[bytes, bytes]:
        """``(sha256 lookup key, pickled key)`` for a cache key tuple."""
        key_pickle = pickle.dumps(key, protocol=4)
        return hashlib.sha256(key_pickle).digest(), key_pickle

    # ------------------------------------------------------------------ #
    # Read / write
    # ------------------------------------------------------------------ #
    def read(self, kind: str, key: Hashable) -> object | None:
        """Return the stored value, or ``None`` on any miss or failure."""
        self._statistics.reads += 1
        get_registry().counter("store.reads").inc()
        with self._lock:
            if self._closed or self._connection is None:
                return None
            try:
                digest, _ = self._encode_key(key)
                row = self._connection.execute(
                    "SELECT value FROM entries WHERE kind = ? AND key = ?",
                    (kind, digest),
                ).fetchone()
            except (pickle.PicklingError, sqlite3.Error, TypeError, ValueError):
                self._recreate()
                return None
        if row is None:
            return None
        try:
            value = pickle.loads(row[0])
        except Exception:
            # A bad row is a miss, never an error: drop it and move on.
            self._count_error()
            self.delete(kind, key)
            return None
        self._statistics.hits += 1
        get_registry().counter("store.hits").inc()
        return value

    def write(self, kind: str, key: Hashable, value: object) -> None:
        """Persist ``value`` (best-effort — failures are swallowed)."""
        try:
            digest, key_pickle = self._encode_key(key)
            value_pickle = pickle.dumps(value, protocol=4)
        except Exception:
            self._count_error()
            return
        with self._lock:
            if self._closed or self._connection is None:
                return
            try:
                self._connection.execute(
                    "INSERT OR REPLACE INTO entries (kind, key, key_pickle, value)"
                    " VALUES (?, ?, ?, ?)",
                    (kind, digest, key_pickle, value_pickle),
                )
                self._connection.commit()
            except sqlite3.Error:
                self._recreate()
                return
        self._statistics.writes += 1
        get_registry().counter("store.writes").inc()

    def delete(self, kind: str, key: Hashable) -> None:
        """Remove one entry (best-effort)."""
        with self._lock:
            if self._closed or self._connection is None:
                return
            try:
                digest, _ = self._encode_key(key)
                self._connection.execute(
                    "DELETE FROM entries WHERE kind = ? AND key = ?",
                    (kind, digest),
                )
                self._connection.commit()
            except Exception:
                self._count_error()

    def keys(self, kind: str) -> Iterator[Hashable]:
        """Iterate the decoded cache keys of one kind (bad rows skipped)."""
        with self._lock:
            if self._closed or self._connection is None:
                return
            try:
                rows = self._connection.execute(
                    "SELECT key_pickle FROM entries WHERE kind = ?", (kind,)
                ).fetchall()
            except sqlite3.Error:
                self._recreate()
                return
        for (key_pickle,) in rows:
            try:
                yield pickle.loads(key_pickle)
            except Exception:
                self._count_error()

    def invalidate_where(self, kind: str,
                         predicate: Callable[[Hashable], bool]) -> int:
        """Delete every row of ``kind`` whose decoded key matches."""
        doomed = []
        for key in self.keys(kind):
            try:
                if predicate(key):
                    doomed.append(key)
            except Exception:
                continue
        for key in doomed:
            self.delete(kind, key)
        return len(doomed)

    def entry_count(self, kind: str | None = None) -> int:
        """Number of persisted rows (``-1`` when the store is unusable)."""
        with self._lock:
            if self._closed or self._connection is None:
                return -1
            try:
                if kind is None:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM entries").fetchone()
                else:
                    row = self._connection.execute(
                        "SELECT COUNT(*) FROM entries WHERE kind = ?",
                        (kind,)).fetchone()
                return int(row[0])
            except sqlite3.Error:
                self._recreate()
                return -1

    def __repr__(self) -> str:
        return (f"PersistentStore({str(self._path)!r}, "
                f"reads={self._statistics.reads}, "
                f"hits={self._statistics.hits}, "
                f"writes={self._statistics.writes}, "
                f"errors={self._statistics.errors})")
