"""The contingency-analysis service facade.

:class:`ContingencyService` is the deployment-shaped entry point the ROADMAP
asks for: register constraint sets once, then answer single queries and
concurrent batches against them with all the amortisation machinery wired
together —

* a **decomposition cache** (shared LRU) so any two queries over equal
  constraint sets and regions pay for one cell enumeration total,
* a **program cache** (shared LRU) holding compiled
  :class:`~repro.plan.BoundProgram` objects, so warm queries skip plan
  optimization, profile extraction and MILP skeleton construction and only
  patch parameters into an existing program,
* a **report cache** so a byte-identical repeated query is answered without
  touching the solver at all,
* a **session registry** with content-fingerprint deduplication and
  versioning,
* a **batch executor** that groups queries by region and fans them out over
  a thread pool.

Usage::

    service = ContingencyService()
    service.register("sales-outage", pcset, observed=sales)
    report = service.analyze("sales-outage", ContingencyQuery.sum("price"))
    batch = service.execute_batch("sales-outage", queries)
    print(service.statistics().summary())
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

import numpy as np

from ..core.bounds import BoundOptions
from ..core.engine import ContingencyQuery, ContingencyReport
from ..core.pcset import PredicateConstraintSet
from ..exceptions import QueryDeadlineError, ReproError
from ..faults import Deadline, current_deadline, deadline_scope
from ..obs.metrics import get_registry
from ..obs.profile import QueryProfile
from ..obs.trace import Trace, get_tracer
from ..parallel.pool import WorkerPool, default_pool_mode
from ..plan.passes import ObservedCellStatistics, ShardLoadMemo
from ..relational.relation import Relation
from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionTicket,
    QueryCost,
    price_query,
)
from .batch import BatchExecutor, BatchResult
from .cache import CacheStatistics, LRUCache
from .fingerprint import fingerprint_query
from .registry import RegisteredSession, SessionRegistry
from .store import PersistentStore, default_cache_dir

__all__ = ["ServiceStatistics", "ContingencyService"]


@dataclass
class ServiceStatistics:
    """A snapshot of the service's cumulative behaviour."""

    decomposition_cache: CacheStatistics
    program_cache: CacheStatistics
    report_cache: CacheStatistics
    queries_answered: int
    batches_executed: int
    sessions_registered: int
    decompositions_computed: int
    decomposition_solver_calls: int
    programs_compiled: int
    #: Queries that raised QueryDeadlineError (in admission or mid-solve).
    deadline_exceeded: int = 0
    #: Queries answered with at least one worst-case-degraded shard.
    degraded: int = 0
    worker_pool: dict[str, float] | None = None
    admission: dict[str, float] | None = None
    #: Persistent-store traffic (None when no cache_dir is configured).
    store: dict[str, int] | None = None
    #: Report-cache entries kept live across appends (delta did not touch
    #: their query region) vs. dropped (delta rows matched the region).
    delta_migrations: int = 0
    delta_invalidations: int = 0

    def as_dict(self) -> dict[str, object]:
        return {
            "decomposition_cache": self.decomposition_cache.as_dict(),
            "program_cache": self.program_cache.as_dict(),
            "report_cache": self.report_cache.as_dict(),
            "queries_answered": self.queries_answered,
            "batches_executed": self.batches_executed,
            "sessions_registered": self.sessions_registered,
            "decompositions_computed": self.decompositions_computed,
            "decomposition_solver_calls": self.decomposition_solver_calls,
            "programs_compiled": self.programs_compiled,
            "deadline_exceeded": self.deadline_exceeded,
            "degraded": self.degraded,
            "worker_pool": (None if self.worker_pool is None
                            else dict(self.worker_pool)),
            "admission": (None if self.admission is None
                          else dict(self.admission)),
            "store": (None if self.store is None else dict(self.store)),
            "delta_migrations": self.delta_migrations,
            "delta_invalidations": self.delta_invalidations,
        }

    def summary(self) -> str:
        decomposition = self.decomposition_cache
        program = self.program_cache
        report = self.report_cache
        lines = [
            f"queries answered       : {self.queries_answered} "
            f"({self.batches_executed} batch(es), "
            f"{self.sessions_registered} session(s))",
            f"decomposition cache    : {decomposition.hits} hit(s) / "
            f"{decomposition.misses} miss(es) / "
            f"{decomposition.evictions} eviction(s) "
            f"(hit rate {decomposition.hit_rate:.1%})",
            f"program cache          : {program.hits} hit(s) / "
            f"{program.misses} miss(es) / {program.evictions} eviction(s) "
            f"(hit rate {program.hit_rate:.1%})",
            f"report cache           : {report.hits} hit(s) / "
            f"{report.misses} miss(es) / {report.evictions} eviction(s) "
            f"(hit rate {report.hit_rate:.1%})",
            f"decompositions computed: {self.decompositions_computed} "
            f"({self.decomposition_solver_calls} satisfiability call(s), "
            f"{self.programs_compiled} program(s) compiled)",
            f"fault tolerance        : {self.deadline_exceeded} deadline(s) "
            f"exceeded / {self.degraded} degraded "
            f"answer(s)",
        ]
        if self.worker_pool is not None:
            pool = self.worker_pool
            lines.append(
                f"worker pool            : "
                f"{int(pool.get('tasks_retried', 0))} task(s) retried / "
                f"{int(pool.get('tasks_quarantined', 0))} quarantined / "
                f"{int(pool.get('worker_restarts', 0))} crash restart(s) / "
                f"{int(pool.get('breaker_trips', 0))} breaker trip(s)")
        if self.admission is not None:
            lines.append(
                f"admission control      : "
                f"{int(self.admission['admitted'])} admitted / "
                f"{int(self.admission['deferred'])} deferred / "
                f"{int(self.admission['rejected'])} rejected "
                f"({self.admission['units_admitted']:.1f} unit(s) admitted)")
        if self.store is not None:
            lines.append(
                f"persistent store       : "
                f"{int(self.store['reads'])} read(s) / "
                f"{int(self.store['hits'])} hit(s) / "
                f"{int(self.store['writes'])} write(s) / "
                f"{int(self.store['errors'])} error(s)")
        if self.delta_migrations or self.delta_invalidations:
            lines.append(
                f"append deltas          : "
                f"{self.delta_migrations} report(s) migrated / "
                f"{self.delta_invalidations} invalidated")
        return "\n".join(lines)


class ContingencyService:
    """Registry + caches + batch executor behind one object.

    Parameters
    ----------
    decomposition_cache_entries:
        Capacity of the shared decomposition LRU (each entry is one
        region-specific cell decomposition).
    program_cache_entries:
        Capacity of the shared compiled-program LRU (each entry is one
        (session, region, attribute) bound program).
    report_cache_entries:
        Capacity of the per-(session, query) report LRU.
    max_workers:
        Thread-pool width for batch execution.
    default_options:
        :class:`BoundOptions` applied to sessions registered without
        explicit options.
    verify:
        Opt-in verification mode.  The only supported value,
        ``"cross-backend"``, solves every program on a second registry
        backend (``verify_backend``) and intersects the ranges; a disjoint
        pair raises :class:`~repro.exceptions.DisjointRangeError`, turning
        a silent solver defect into an alarm.
    verify_backend:
        The second backend for ``verify="cross-backend"`` (default:
        ``branch-and-bound``, the pure-Python implementation — maximally
        independent from the default scipy/HiGHS path).
    pool_mode:
        Flavour of the service-owned persistent
        :class:`~repro.parallel.pool.WorkerPool`: ``"thread"`` (default),
        ``"process"`` (warm worker caches + real CPU scale-out), or
        ``"serial"``.  Defaults to the ``REPRO_POOL`` environment toggle
        (``1`` selects processes — the CI leg that exercises the warm-pool
        path).  The pool outlives every batch: it serves batch phase 2 and
        every session's sharded fan-out, and is torn down by
        :meth:`shutdown` (or the atexit reaper).
    admission:
        Optional :class:`~repro.service.admission.AdmissionPolicy` enabling
        program-aware admission control: every cold query is priced from
        its plan (constraint count, estimated cells, sharded layout,
        program warmth, pool warm-hit rate) *before* anything is solved,
        and queries over the per-query budget — or arriving when capacity
        and the bounded admission queue are both exhausted — are shed with
        :class:`~repro.exceptions.QueryRejectedError`.  Report-cache hits
        bypass admission (answering from cache costs nothing to meter).
    cache_dir:
        Optional directory for the persistent cache tier (see
        :mod:`repro.service.store`).  When set — explicitly or via the
        ``REPRO_CACHE_DIR`` environment toggle — the decomposition and
        report caches write through to a sqlite store in that directory and
        read from it on memory misses, so warm work survives restarts and
        can be shared between replicas.  The store is strictly
        best-effort: any store failure is a cache miss, never an error.
        Compiled programs are deliberately not persisted — they recompile
        in milliseconds from a cached decomposition and may hold
        backend-specific state.
    """

    _VERIFY_MODES = (None, "cross-backend")

    def __init__(self, *, decomposition_cache_entries: int = 256,
                 program_cache_entries: int = 1024,
                 report_cache_entries: int = 2048,
                 max_workers: int | None = None,
                 default_options: BoundOptions | None = None,
                 verify: str | None = None,
                 verify_backend: str = "branch-and-bound",
                 pool_mode: str | None = None,
                 admission: AdmissionPolicy | None = None,
                 cache_dir: str | None = None):
        if verify not in self._VERIFY_MODES:
            raise ReproError(
                f"unknown verify mode {verify!r}; expected one of "
                f"{self._VERIFY_MODES}")
        self._decomposition_cache = LRUCache(decomposition_cache_entries,
                                             name="decomposition")
        self._program_cache = LRUCache(program_cache_entries, name="program")
        self._report_cache = LRUCache(report_cache_entries, name="report")
        cache_dir = cache_dir if cache_dir is not None else default_cache_dir()
        self._store: PersistentStore | None = None
        if cache_dir:
            self._store = PersistentStore(cache_dir)
            self._decomposition_cache.attach_store(self._store,
                                                   "decomposition")
            self._report_cache.attach_store(self._store, "report")
        self._worker_pool = WorkerPool(max_workers=max_workers,
                                       mode=pool_mode or default_pool_mode(),
                                       name="service")
        self._cell_statistics = ObservedCellStatistics()
        self._shard_loads = ShardLoadMemo()
        self._registry = SessionRegistry(
            decomposition_cache=self._decomposition_cache,
            program_cache=self._program_cache,
            worker_pool=self._worker_pool,
            cell_statistics=self._cell_statistics,
            shard_loads=self._shard_loads)
        self._executor = BatchExecutor(max_workers, pool=self._worker_pool)
        self._default_options = default_options
        self._verify_backend = verify_backend if verify == "cross-backend" else None
        self._admission = (None if admission is None
                           else AdmissionController(admission))
        self._queries_answered = 0
        self._batches_executed = 0
        self._deadline_exceeded = 0
        self._degraded = 0
        self._delta_migrations = 0
        self._delta_invalidations = 0
        self._counter_lock = threading.Lock()
        # Side index from report-cache key parts to the query object, so an
        # append can re-evaluate cached queries' WHERE regions against the
        # delta.  Entries missing here (e.g. reports loaded from a previous
        # process's store) simply are not migrated — a miss, never unsound.
        self._report_queries: dict[tuple[str, str], ContingencyQuery] = {}

    # ------------------------------------------------------------------ #
    # Registry facade
    # ------------------------------------------------------------------ #
    @property
    def registry(self) -> SessionRegistry:
        return self._registry

    @property
    def worker_pool(self) -> WorkerPool:
        """The service-owned persistent worker pool."""
        return self._worker_pool

    @property
    def cell_statistics(self) -> ObservedCellStatistics:
        """The shared adaptive cell-count feed (one across all sessions)."""
        return self._cell_statistics

    @property
    def shard_loads(self) -> ShardLoadMemo:
        """The shared shard-load feedback memo (one across all sessions)."""
        return self._shard_loads

    @property
    def admission(self) -> AdmissionController | None:
        """The admission controller (None when the service admits freely)."""
        return self._admission

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop the worker pool (idempotent; it restarts lazily if the
        service keeps serving).  The atexit reaper covers services that are
        never shut down explicitly."""
        self._executor.close()
        self._worker_pool.shutdown()
        if self._store is not None:
            self._store.close()

    def __enter__(self) -> "ContingencyService":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    @property
    def decomposition_cache(self) -> LRUCache:
        return self._decomposition_cache

    @property
    def program_cache(self) -> LRUCache:
        return self._program_cache

    @property
    def report_cache(self) -> LRUCache:
        return self._report_cache

    @property
    def store(self) -> PersistentStore | None:
        """The persistent cache tier (None without a cache_dir)."""
        return self._store

    def register(self, name: str, pcset: PredicateConstraintSet,
                 observed: Relation | None = None,
                 options: BoundOptions | None = None) -> RegisteredSession:
        """Register (or idempotently re-register) a constraint session.

        Under ``verify="cross-backend"`` the verification backend is folded
        into the session's options (unless the caller pinned one
        explicitly), so it participates in the session fingerprint — a
        verified session and an unverified one never share report-cache
        entries, because their failure behaviour differs.
        """
        options = options or self._default_options
        if self._verify_backend is not None:
            options = options or BoundOptions()
            if options.verify_backend is None:
                options = replace(options, verify_backend=self._verify_backend)
        return self._registry.register(name, pcset, observed=observed,
                                       options=options)

    def session(self, name: str,
                version: int | None = None) -> RegisteredSession:
        return self._registry.get(name, version)

    def sessions(self) -> list[RegisteredSession]:
        return self._registry.sessions()

    # ------------------------------------------------------------------ #
    # Query answering
    # ------------------------------------------------------------------ #
    def analyze(self, name: str, query: ContingencyQuery,
                version: int | None = None,
                profile: bool = False) -> ContingencyReport:
        """Answer one query against a registered session, through the caches.

        The report cache key is (session fingerprint, query fingerprint):
        session fingerprints cover constraints, observed data and options,
        so a cached report can never leak across semantically different
        sessions, while re-registered identical content keeps its warm
        cache.

        ``profile=True`` additionally records the query's span tree —
        forcing a trace for just this call, whether or not ``REPRO_TRACE``
        is set — and returns a report whose ``profile`` attribute is the
        rendered-able :class:`~repro.obs.QueryProfile` (the EXPLAIN ANALYZE
        view; cached reports themselves are never mutated).
        """
        session = self._registry.get(name, version)
        if not profile:
            return self._analyze_in_session(session, query)
        tracer = get_tracer()
        with tracer.trace("query", force=True) as handle:
            tracer.annotate(query=query.describe(), session=session.name)
            report = self._analyze_in_session(session, query)
        query_profile = (QueryProfile.from_trace(handle)
                         if isinstance(handle, Trace) else None)
        return replace(report, profile=query_profile)

    def _analyze_in_session(self, session: RegisteredSession,
                            query: ContingencyQuery) -> ContingencyReport:
        with self._counter_lock:
            self._queries_answered += 1
        get_registry().counter("service.queries_answered").inc()
        query_fingerprint = fingerprint_query(query)
        key = ("report", session.fingerprint, query_fingerprint)
        self._remember_query(session.fingerprint, query_fingerprint, query)
        tracer = get_tracer()
        if tracer.active:
            # peek() perturbs neither LRU recency nor the cache counters,
            # so annotating the verdict is observation-only.
            tracer.annotate(report_cache=(
                "hit" if self._report_cache.peek(key) is not None
                else "miss"))
        # Report-cache hits bypass both admission *and* the deadline: a
        # cached answer is effectively instantaneous, so metering it against
        # the budget could only produce spurious expiries.  Everything
        # colder runs under the session's deadline scope, which covers the
        # admission wait (a deferred query's solve budget shrinks while it
        # is parked) as well as the solve itself.
        try:
            with self._deadline(session):
                report = self._analyze_admitted(session, query, key, tracer)
        except QueryDeadlineError:
            with self._counter_lock:
                self._deadline_exceeded += 1
            raise
        if report.degraded_shards:
            with self._counter_lock:
                self._degraded += 1
        return report

    def _deadline(self, session: RegisteredSession):
        """The deadline scope for one query against ``session``.

        An ambient deadline installed by the caller (e.g. a batch-level
        budget) wins over the session's configured ``deadline_seconds`` —
        the scope is a no-op then, mirroring the solver's own guard.
        """
        options = session.options
        seconds = None if options is None else options.deadline_seconds
        if seconds is None or current_deadline() is not None:
            return deadline_scope(None)
        return deadline_scope(Deadline(seconds))

    def _analyze_admitted(self, session: RegisteredSession,
                          query: ContingencyQuery, key, tracer
                          ) -> ContingencyReport:
        if self._admission is None:
            return self._report_cache.get_or_compute(
                key, lambda: session.analyze(query))
        # Admission-controlled path: cache hits bypass pricing entirely
        # (they cost nothing worth metering); cold queries are priced from
        # their plan and admitted — or shed — before any solve runs.  The
        # solve itself still goes through get_or_compute, so concurrent
        # racers on one key keep the single-flight dedup the non-admission
        # path has: each racer holds its own admitted units while waiting
        # (two requests genuinely are in flight), but only the winner
        # solves — the losers adopt the cached report.
        report = self._report_cache.get(key)
        if report is not None:
            return report
        with tracer.span("admission"):
            cost = self._price(session, query)
            tracer.annotate(units=cost.units)
            ticket = self._admission.admit(cost,
                                           session=session.fingerprint)
        with ticket:
            return self._report_cache.get_or_compute(
                key, lambda: session.analyze(query))

    def _price(self, session: RegisteredSession,
               query: ContingencyQuery) -> QueryCost:
        """Price one query from its plan (no decomposition, no solve)."""
        return price_query(session.analyzer.solver, query,
                           pool_statistics=self._worker_pool.statistics,
                           cell_statistics=self._cell_statistics)

    def execute_batch(self, name: str, queries: list[ContingencyQuery],
                      version: int | None = None) -> BatchResult:
        """Answer a batch concurrently; reports come back in input order.

        Queries already in the report cache are answered inline, and
        identical queries *within* the batch are deduplicated before
        dispatch — only distinct cache misses go through the region-grouped
        concurrent executor, so a dashboard that fires the same query from
        several widgets pays for one solve.
        """
        session = self._registry.get(name, version)
        with self._counter_lock:
            self._batches_executed += 1
            self._queries_answered += len(queries)
        registry = get_registry()
        registry.counter("service.batches_executed").inc()
        registry.counter("service.queries_answered").inc(len(queries))

        cached: dict[int, ContingencyReport] = {}
        missing_by_query: dict[str, list[int]] = {}
        for position, query in enumerate(queries):
            query_fingerprint = fingerprint_query(query)
            key = ("report", session.fingerprint, query_fingerprint)
            self._remember_query(session.fingerprint, query_fingerprint, query)
            report = self._report_cache.get(key)
            if report is None:
                missing_by_query.setdefault(query_fingerprint, []).append(position)
            else:
                cached[position] = report

        distinct_positions = [positions[0]
                              for positions in missing_by_query.values()]
        distinct_queries = [queries[position]
                            for position in distinct_positions]
        # Price the batch's distinct cache misses and admit them as one
        # capacity reservation before anything is dispatched: every query
        # must clear the per-query budget, and the whole batch is shed at
        # the plan stage when it cannot.
        ticket: AdmissionTicket | None = None
        if self._admission is not None and distinct_queries:
            costs = [self._price(session, query)
                     for query in distinct_queries]
            ticket = self._admission.admit_many(
                costs, session=session.fingerprint)
        try:
            result = self._executor.execute(session.analyzer, distinct_queries,
                                            session_key=session.fingerprint)
        finally:
            if ticket is not None:
                ticket.release()
        for (query_fingerprint, positions), report in zip(
                missing_by_query.items(), result.reports):
            if report.degraded_shards:
                with self._counter_lock:
                    self._degraded += 1
            self._report_cache.put(
                ("report", session.fingerprint, query_fingerprint), report)
            for position in positions:
                cached[position] = report

        reports = [cached[position] for position in range(len(queries))]
        result.statistics.total_queries = len(queries)
        return BatchResult(reports, result.statistics)

    # ------------------------------------------------------------------ #
    # Data deltas
    # ------------------------------------------------------------------ #
    def _remember_query(self, session_fingerprint: str,
                        query_fingerprint: str,
                        query: ContingencyQuery) -> None:
        """Record the report-key → query mapping used for delta migration."""
        with self._counter_lock:
            self._report_queries[(session_fingerprint, query_fingerprint)] = query
            # Bound the index: prune entries whose report is long gone once
            # the map outgrows the report cache by a wide margin.
            if len(self._report_queries) > 4 * self._report_cache.max_entries:
                keep = {
                    parts: stored_query
                    for parts, stored_query in self._report_queries.items()
                    if ("report", *parts) in self._report_cache
                }
                self._report_queries = keep

    def append_rows(self, name: str,
                    rows: "Relation | list", *,
                    version: int | None = None) -> RegisteredSession:
        """Append rows to a session's observed relation, keeping warm work.

        Registers a new session version whose observed relation is
        ``session.observed.append(rows)`` and *migrates* every cached report
        the delta provably cannot change: a report depends on observed data
        only through the rows matching its query's WHERE region (the
        missing-partition bound is data-independent — see
        :meth:`~repro.core.engine.PCAnalyzer.analyze`), so a cached report
        whose region matches **zero** delta rows is bit-identical under the
        new version and is re-keyed to it.  Reports whose region intersects
        the delta are left behind under the old fingerprint (the old
        version stays queryable and they remain correct *for it*) and are
        counted as ``cache.delta_invalidations`` — the new version
        recomputes them cold.

        Decomposition and program caches are keyed by constraint-set
        content, not data, so they stay warm across appends by
        construction; only report-level reuse needs this migration.

        ``rows`` may be a relation with the session's schema, row tuples in
        schema order, or ``{column: value}`` mappings.  Non-append mutations
        have no such incremental path — re-register the session, which is a
        full invalidation of report-level reuse.
        """
        session = self._registry.get(name, version)
        if session.observed is None:
            raise ReproError(
                f"session {name!r} has no observed relation to append to")
        if isinstance(rows, Relation):
            delta = rows
        else:
            materialised = list(rows)
            delta = (Relation.from_dicts(session.observed.schema, materialised)
                     if materialised and isinstance(materialised[0], dict)
                     else Relation.from_rows(session.observed.schema,
                                             materialised))
        appended = session.observed.append(delta)
        new_session = self._registry.register(name, session.pcset,
                                              observed=appended,
                                              options=session.options)
        if new_session.fingerprint == session.fingerprint:
            return new_session  # empty delta — nothing to migrate
        migrated = 0
        invalidated = 0
        with self._counter_lock:
            candidates = [
                (query_fingerprint, query)
                for (session_fingerprint, query_fingerprint), query
                in self._report_queries.items()
                if session_fingerprint == session.fingerprint
            ]
        for query_fingerprint, query in candidates:
            report = self._report_cache.peek(
                ("report", session.fingerprint, query_fingerprint))
            if report is None:
                continue
            where = query.to_aggregate_query().where
            if bool(np.asarray(where.evaluate(delta)).any()):
                invalidated += 1
                continue
            self._report_cache.put(
                ("report", new_session.fingerprint, query_fingerprint), report)
            self._remember_query(new_session.fingerprint, query_fingerprint,
                                 query)
            migrated += 1
        with self._counter_lock:
            self._delta_migrations += migrated
            self._delta_invalidations += invalidated
        registry = get_registry()
        if migrated:
            registry.counter("cache.delta_migrations").inc(migrated)
        if invalidated:
            registry.counter("cache.delta_invalidations").inc(invalidated)
        return new_session

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    def statistics(self) -> ServiceStatistics:
        decompositions = 0
        solver_calls = 0
        programs = 0
        for session in self._registry.sessions():
            session_decompositions, session_calls, session_programs = \
                session.solver_counters()
            decompositions += session_decompositions
            solver_calls += session_calls
            programs += session_programs
        return ServiceStatistics(
            decomposition_cache=self._decomposition_cache.statistics.snapshot(),
            program_cache=self._program_cache.statistics.snapshot(),
            report_cache=self._report_cache.statistics.snapshot(),
            queries_answered=self._queries_answered,
            batches_executed=self._batches_executed,
            sessions_registered=len(self._registry),
            decompositions_computed=decompositions,
            decomposition_solver_calls=solver_calls,
            programs_compiled=programs,
            deadline_exceeded=self._deadline_exceeded,
            degraded=self._degraded,
            worker_pool=self._worker_pool.statistics.as_dict(),
            admission=(None if self._admission is None
                       else self._admission.statistics.as_dict()),
            store=(None if self._store is None
                   else self._store.statistics.as_dict()),
            delta_migrations=self._delta_migrations,
            delta_invalidations=self._delta_invalidations,
        )

    def clear_caches(self) -> None:
        """Drop cached decompositions, programs and reports (counters kept)."""
        self._decomposition_cache.clear()
        self._program_cache.clear()
        self._report_cache.clear()
