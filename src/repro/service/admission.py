"""Program-aware admission control: price queries from their plans.

A production service must refuse work it cannot afford *before* paying for
it.  The plan pipeline makes that possible: ``plan_for(query)`` plus the
sharding pass expose — without decomposing or solving anything — exactly the
quantities that predict a query's cost: the optimized constraint count, the
estimated satisfiable-cell count (observed-density-scaled through the same
:class:`~repro.plan.passes.ObservedCellStatistics` feed strategy selection
uses), the sharded layout (strategy and shard count), whether the compiled
program is already warm in the cache, and the worker pool's warm-hit rate.

:func:`price_query` folds those signals into a scalar unit count
(:class:`QueryCost`), and :class:`AdmissionController` enforces an
:class:`AdmissionPolicy` over it:

* a **per-query budget** (``max_query_cost``) — queries priced above it are
  shed immediately with :class:`~repro.exceptions.QueryRejectedError`;
* a **concurrent capacity** (``capacity``) with a **bounded queue**
  (``max_pending``) — queries that fit the budget but not the currently
  free capacity are *deferred* on the queue until running work releases
  units, and rejected only when the queue itself is full or the wait
  exceeds ``max_wait_seconds``.

The deferred queue is **not** FIFO: released capacity goes to the
*shortest-priced* waiter first (small queries never stall behind a giant
one), tempered by two fairness rules.  A session never jumps its own work
past another session's indefinitely — when the last admission went to the
same session and somebody else is waiting, that somebody wins the tie —
and a newcomer never bypasses the queue while anyone is waiting, so a
large waiter always sees capacity drain toward it instead of being
starved by a stream of small arrivals.

Everything happens at the plan stage: a rejected query never touches the
decomposition cache, never compiles a program, and never dispatches a pool
task.  Report-cache hits bypass admission entirely — answering from cache
costs nothing worth metering.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..exceptions import QueryDeadlineError, QueryRejectedError
from ..faults import current_deadline
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..plan.passes import ObservedCellStatistics, estimated_cell_count
from ..relational.aggregates import AggregateFunction

__all__ = ["QueryCost", "price_query", "admissible_cell_budget",
           "AdmissionPolicy", "AdmissionStatistics", "AdmissionTicket",
           "AdmissionController"]

#: Registry counter names, precomputed so the mutation hot path never
#: formats strings (mirrors the worker pool's ``_POOL_METRICS`` idiom).
_ADMISSION_METRICS = {
    field: f"admission.{field}"
    for field in ("priced", "admitted", "deferred", "rejected_over_budget",
                  "rejected_queue_full", "rejected_timeout", "units_admitted")
}


@dataclass(frozen=True)
class QueryCost:
    """One query's priced execution, with the signals behind the number.

    ``units`` is the scalar the controller meters; the remaining fields
    record how it was derived so rejections are explainable (``describe``)
    and monitoring can aggregate by cause.
    """

    units: float
    aggregate: str
    constraint_count: int
    estimated_cells: int
    shard_count: int
    strategy: str
    program_warm: bool
    pool_warm_hit_rate: float

    def describe(self) -> str:
        warmth = "warm" if self.program_warm else "cold"
        return (f"{self.aggregate} priced at {self.units:.1f} unit(s) "
                f"({self.constraint_count} constraint(s), "
                f"~{self.estimated_cells} cell(s), {self.strategy} x "
                f"{self.shard_count} shard(s), {warmth} program)")

    def as_dict(self) -> dict[str, object]:
        return {
            "units": self.units,
            "aggregate": self.aggregate,
            "constraint_count": self.constraint_count,
            "estimated_cells": self.estimated_cells,
            "shard_count": self.shard_count,
            "strategy": self.strategy,
            "program_warm": self.program_warm,
            "pool_warm_hit_rate": self.pool_warm_hit_rate,
        }


def price_query(solver, query, *, pool_statistics=None,
                cell_statistics: ObservedCellStatistics | None = None
                ) -> QueryCost:
    """Price ``query`` against ``solver``'s plan — no decomposition, no solve.

    The model is deliberately simple, monotone, and sourced entirely from
    plan-stage quantities (one unit ≈ one satisfiability check or one
    patched-objective solve over one cell):

    * **build cost** — a cold (region, attribute) pair pays the enumeration
      plus compilation, ``estimated_cells + constraints``; a warm pair pays
      nothing.  The worker pool's warm-hit rate discounts the cold cost —
      a pool that has been answering this workload likely holds the
      per-shard skeletons already.
    * **solve cost** — one objective patch over the estimated cells, divided
      by the shard count (shards solve concurrently), and multiplied by the
      probe budget for AVG (each binary-search probe is one patched solve
      per direction).

    Monotone by construction: more constraints or more estimated cells can
    only raise the price, warmth and sharding can only lower it.
    """
    sharded = solver.sharded_plan(query.region, query.attribute)
    plan = sharded.parent
    estimate, _ = estimated_cell_count(plan, cell_statistics)
    cells = max(1, estimate)
    constraints = len(plan.pcset)
    # The sharded layout only discounts the price when the solver will
    # actually execute it — a session without fan-out runs serially no
    # matter how the plan could have been split.
    workers = getattr(solver.options, "solve_workers", None)
    fans_out = (workers is not None and workers > 1) and sharded.is_sharded
    shard_count = len(sharded) if fans_out else 1
    strategy = sharded.strategy if fans_out else "serial"
    # Warmth is probed against the programs the chosen layout will actually
    # look up: component-sharded execution compiles only shard-token keys
    # (the unsharded pair key stays forever cold there), while serial and
    # region-sharded execution compile the pair program itself.
    if fans_out and sharded.strategy == "component":
        warm = all(solver.has_cached_program(query.region, query.attribute,
                                             shard=shard)
                   for shard in sharded)
    else:
        warm = solver.has_cached_program(query.region, query.attribute)
    warm_hit_rate = 0.0
    if pool_statistics is not None:
        warm_hit_rate = min(1.0, max(0.0, pool_statistics.warm_hit_rate))

    build = 0.0
    if not warm:
        build = float(cells + constraints)
        # Sharded builds fan out; pool warmth means skeletons are likely
        # already resident worker-side.
        build = build / shard_count * (1.0 - 0.5 * warm_hit_rate)
    probes = 1
    if query.aggregate is AggregateFunction.AVG:
        probes = 2 * getattr(solver.options, "avg_max_iterations", 64)
    solve = probes * float(cells) / shard_count
    return QueryCost(units=build + solve,
                     aggregate=query.aggregate.value,
                     constraint_count=constraints,
                     estimated_cells=cells,
                     shard_count=shard_count,
                     strategy=strategy,
                     program_warm=warm,
                     pool_warm_hit_rate=warm_hit_rate)


def admissible_cell_budget(cost: QueryCost, budget: float) -> int:
    """The largest estimated-cell count that would clear ``budget``.

    Inverts :func:`price_query` for a query with ``cost``'s shape (same
    aggregate, constraint count, sharded layout and warmth): the price is
    linear in the estimated cells, so solving ``price(cells) <= budget``
    for ``cells`` gives rejected callers a concrete downscoping target —
    "tighten your region below this many estimated cells and the query
    fits" — instead of an opaque unit total.
    """
    shard_count = max(1, cost.shard_count)
    cells = max(1, cost.estimated_cells)
    discount = 0.0
    if not cost.program_warm:
        discount = (1.0 - 0.5 * cost.pool_warm_hit_rate) / shard_count
    # Recover the probe multiplier from the priced total — the only term
    # price_query derives from options rather than recording on the cost.
    build = (cells + cost.constraint_count) * discount
    probes = max((cost.units - build) * shard_count / cells, 1.0)
    per_cell = probes / shard_count + discount
    base = cost.constraint_count * discount
    if budget <= base:
        return 0
    return max(0, int((budget - base) / per_cell))


@dataclass
class AdmissionPolicy:
    """The budgets an :class:`AdmissionController` enforces.

    ``max_query_cost``
        Per-query ceiling in cost units; ``None`` disables shedding by size.
    ``capacity``
        Total units allowed in flight at once; ``None`` disables capacity
        metering (every admitted query runs immediately).
    ``max_pending``
        How many queries may *wait* for capacity (the bounded admission
        queue).  ``0`` rejects immediately when capacity is exhausted.
    ``max_wait_seconds``
        Deadline for a deferred query; waiting past it rejects with reason
        ``"timeout"`` so callers never hang on an overloaded deployment.
    """

    max_query_cost: float | None = None
    capacity: float | None = None
    max_pending: int = 0
    max_wait_seconds: float = 30.0


@dataclass
class AdmissionStatistics:
    """What the controller has decided so far."""

    priced: int = 0
    admitted: int = 0
    deferred: int = 0
    rejected_over_budget: int = 0
    rejected_queue_full: int = 0
    rejected_timeout: int = 0
    units_admitted: float = 0.0
    units_in_flight: float = 0.0
    pending: int = 0

    @property
    def rejected(self) -> int:
        return (self.rejected_over_budget + self.rejected_queue_full
                + self.rejected_timeout)

    def as_dict(self) -> dict[str, float]:
        return {
            "priced": self.priced,
            "admitted": self.admitted,
            "deferred": self.deferred,
            "rejected": self.rejected,
            "rejected_over_budget": self.rejected_over_budget,
            "rejected_queue_full": self.rejected_queue_full,
            "rejected_timeout": self.rejected_timeout,
            "units_admitted": self.units_admitted,
            "units_in_flight": self.units_in_flight,
            "pending": self.pending,
        }

    def snapshot(self) -> "AdmissionStatistics":
        return AdmissionStatistics(
            self.priced, self.admitted, self.deferred,
            self.rejected_over_budget, self.rejected_queue_full,
            self.rejected_timeout, self.units_admitted,
            self.units_in_flight, self.pending)


class AdmissionTicket:
    """Admitted capacity that must be released when the work finishes.

    Context-managed; ``release`` is idempotent so error paths can release
    defensively.  Releasing wakes deferred queries waiting for capacity.
    """

    def __init__(self, controller: "AdmissionController", units: float):
        self._controller = controller
        self._units = units
        self._released = False

    @property
    def units(self) -> float:
        return self._units

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._units)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


class _Waiter:
    """One deferred query parked on the admission queue.

    ``seq`` is the arrival order (the final tiebreaker, so equal-priced
    waiters from one session still admit FIFO); ``units`` and ``session``
    feed the head-selection ordering in
    :meth:`AdmissionController._select_head`.
    """

    __slots__ = ("units", "session", "seq")

    def __init__(self, units: float, session, seq: int):
        self.units = units
        self.session = session
        self.seq = seq


class AdmissionController:
    """Thread-safe enforcement of one :class:`AdmissionPolicy`.

    ``admit`` either returns an :class:`AdmissionTicket` (possibly after a
    bounded wait on the admission queue) or raises
    :class:`~repro.exceptions.QueryRejectedError`.  The controller never
    runs queries itself — the service holds the ticket across the solve and
    releases it in a ``finally``.

    Deferred queries admit in shortest-priced-first order with a
    per-session fairness penalty, and only ever through the selected queue
    head — a waiter that is not the head stays parked even when its units
    would fit, which is what lets a large waiter accumulate the capacity
    it needs instead of starving behind smaller arrivals.
    """

    def __init__(self, policy: AdmissionPolicy | None = None):
        self._policy = policy or AdmissionPolicy()
        self._condition = threading.Condition()
        self._in_flight = 0.0
        self._pending = 0
        self._statistics = AdmissionStatistics()
        self._waiters: list[_Waiter] = []
        self._seq = 0
        self._last_session = None

    def _bump(self, field: str, amount: float = 1) -> None:
        """Advance one decision counter in the dataclass snapshot *and* the
        process-wide metrics registry (``admission.*``)."""
        statistics = self._statistics
        setattr(statistics, field, getattr(statistics, field) + amount)
        get_registry().counter(_ADMISSION_METRICS[field]).inc(amount)

    @property
    def policy(self) -> AdmissionPolicy:
        return self._policy

    @property
    def statistics(self) -> AdmissionStatistics:
        with self._condition:
            snapshot = self._statistics.snapshot()
            snapshot.units_in_flight = self._in_flight
            snapshot.pending = self._pending
            return snapshot

    # ------------------------------------------------------------------ #
    # Admission
    # ------------------------------------------------------------------ #
    def admit(self, cost: QueryCost, enforce_budget: bool = True,
              session=None, *, already_priced: bool = False
              ) -> AdmissionTicket:
        """Admit ``cost`` units, deferring on the bounded queue if needed.

        ``session`` is an opaque caller identity (the service passes the
        session fingerprint); it only feeds the per-session fairness rule
        in head selection, never pricing.  ``enforce_budget`` is disabled
        by :meth:`admit_many`, which has already applied the per-query
        ceiling to each member — the combined reservation is only metered
        against capacity; ``already_priced`` likewise skips the priced
        counter when the batch path has already counted every member.
        """
        policy = self._policy
        with self._condition:
            if not already_priced:
                self._bump("priced")
            budget = policy.max_query_cost if enforce_budget else None
            if budget is not None and cost.units > budget:
                self._bump("rejected_over_budget")
                fitting = admissible_cell_budget(cost, budget)
                raise QueryRejectedError(
                    f"query rejected before any solve was dispatched: "
                    f"{cost.describe()} exceeds the per-query budget of "
                    f"{budget:.1f} unit(s); a same-shaped query of at most "
                    f"~{fitting} estimated cell(s) would fit",
                    cost=cost.units, limit=budget, reason="over-budget",
                    cell_budget=fitting)
            capacity = policy.capacity
            if capacity is not None:
                # A newcomer never bypasses parked waiters, even when its
                # own units would fit — otherwise a stream of small
                # arrivals starves whoever is queued.
                must_wait = bool(self._waiters) or not self._fits(cost.units,
                                                                  capacity)
                if must_wait:
                    if self._pending >= policy.max_pending:
                        self._bump("rejected_queue_full")
                        raise QueryRejectedError(
                            f"query rejected: {cost.describe()} cannot run "
                            f"now ({self._in_flight:.1f}/{capacity:.1f} "
                            f"unit(s) in flight) and the admission queue is "
                            f"full ({policy.max_pending} pending)",
                            cost=cost.units, limit=capacity,
                            reason="queue-full")
                    waiter = _Waiter(cost.units, session, self._seq)
                    self._seq += 1
                    self._waiters.append(waiter)
                    self._pending += 1
                    deferred = False
                    try:
                        # The query's ambient deadline keeps ticking while
                        # the query is parked: the effective wait is the
                        # smaller of the policy's patience and whatever
                        # budget the deadline has left, and an expiry caused
                        # by the *query deadline* surfaces as
                        # QueryDeadlineError rather than an admission
                        # rejection — the query ran out of time, the
                        # service did not shed it.
                        query_deadline = current_deadline()
                        deadline = time.monotonic() + policy.max_wait_seconds
                        # Head-only admission: a waiter admits only while it
                        # is the selected head AND its units fit — a
                        # non-head waiter stays parked even if it would fit,
                        # so capacity drains toward the head.
                        while not (self._select_head() is waiter
                                   and self._fits(cost.units, capacity)):
                            if not deferred:
                                deferred = True
                                self._bump("deferred")
                                get_tracer().annotate(admission="deferred")
                            remaining = deadline - time.monotonic()
                            if query_deadline is not None:
                                remaining = min(remaining,
                                                query_deadline.remaining())
                            if remaining <= 0 or \
                                    not self._condition.wait(remaining):
                                if query_deadline is not None and \
                                        query_deadline.expired():
                                    raise QueryDeadlineError(
                                        f"query deadline of "
                                        f"{query_deadline.seconds:.3f}s "
                                        f"expired after "
                                        f"{query_deadline.elapsed():.3f}s "
                                        f"while deferred in the admission "
                                        f"queue ({cost.describe()})",
                                        deadline=query_deadline.seconds,
                                        elapsed=query_deadline.elapsed())
                                self._bump("rejected_timeout")
                                raise QueryRejectedError(
                                    f"query rejected: {cost.describe()} "
                                    f"waited "
                                    f"{policy.max_wait_seconds:.1f}s for "
                                    f"capacity",
                                    cost=cost.units, limit=capacity,
                                    reason="timeout")
                    finally:
                        self._waiters.remove(waiter)
                        self._pending -= 1
                        # Whether admitted or timed out, the head changed —
                        # re-run head selection in the remaining waiters.
                        self._condition.notify_all()
            self._in_flight += cost.units
            self._last_session = session
            self._bump("admitted")
            self._bump("units_admitted", cost.units)
            return AdmissionTicket(self, cost.units)

    def admit_many(self, costs: list[QueryCost],
                   session=None) -> AdmissionTicket:
        """Admit a batch: per-query budget checks, one combined capacity ask.

        Each query must individually clear ``max_query_cost`` (a batch is
        not a loophole around the per-query ceiling); the batch then
        occupies the *sum* of its units until released, reflecting that its
        queries run concurrently.

        Every member is counted as priced exactly once, up front — the
        earlier scheme counted only the offending member on rejection and
        only the combined reservation on success, so the ``priced`` counter
        under-reported batch traffic on both paths.
        """
        policy = self._policy
        with self._condition:
            self._bump("priced", len(costs))
        budget = policy.max_query_cost
        if budget is not None:
            for cost in costs:
                if cost.units > budget:
                    with self._condition:
                        self._bump("rejected_over_budget")
                    fitting = admissible_cell_budget(cost, budget)
                    raise QueryRejectedError(
                        f"batch rejected before any solve was dispatched: "
                        f"{cost.describe()} exceeds the per-query budget of "
                        f"{budget:.1f} unit(s); a same-shaped query of at "
                        f"most ~{fitting} estimated cell(s) would fit",
                        cost=cost.units, limit=budget, reason="over-budget",
                        cell_budget=fitting)
        total = sum(cost.units for cost in costs)
        combined = QueryCost(units=total, aggregate="batch",
                             constraint_count=max((c.constraint_count
                                                   for c in costs), default=0),
                             estimated_cells=max((c.estimated_cells
                                                  for c in costs), default=0),
                             shard_count=max((c.shard_count for c in costs),
                                             default=1),
                             strategy="batch",
                             program_warm=all(c.program_warm for c in costs),
                             pool_warm_hit_rate=max((c.pool_warm_hit_rate
                                                     for c in costs),
                                                    default=0.0))
        return self.admit(combined, enforce_budget=False, session=session,
                          already_priced=True)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _select_head(self) -> _Waiter | None:
        """The waiter next in line: shortest-priced first, fairness-aware.

        Ordering key is ``(penalty, units, seq)``: the penalty is 1 only
        when the waiter belongs to the session that got the *previous*
        admission while some other session is also waiting — so one
        session's flood of cheap queries alternates with everyone else
        instead of monopolizing released capacity.  Must be called with
        the condition lock held.
        """
        if not self._waiters:
            return None

        def key(waiter: _Waiter):
            penalty = 0
            if waiter.session == self._last_session and any(
                    other.session != waiter.session
                    for other in self._waiters):
                penalty = 1
            return (penalty, waiter.units, waiter.seq)

        return min(self._waiters, key=key)

    def _fits(self, units: float, capacity: float) -> bool:
        # A query bigger than the whole capacity may still run alone —
        # otherwise it could never run at all; the per-query ceiling is
        # max_query_cost's job, not capacity's.
        return self._in_flight + units <= capacity or self._in_flight == 0.0

    def _release(self, units: float) -> None:
        with self._condition:
            self._in_flight = max(0.0, self._in_flight - units)
            self._condition.notify_all()
