"""Stable content fingerprints for the service layer.

The service caches decompositions and reports across requests, sessions and
threads, so cache keys cannot rely on object identity or on Python's
randomised ``hash()``.  This module derives *content hashes*: two objects
that are semantically identical — same predicates, same value/frequency
constraints, same solver options — fingerprint identically in every process,
which is what lets a registry deduplicate re-registered constraint sets and
lets independent analyzers share one decomposition cache.

Fingerprints are hex SHA-256 digests of a canonical token stream.  Constraint
*names* are deliberately excluded: renaming a predicate-constraint changes
reports cosmetically but never changes a bound, so it must not invalidate
caches.  Constraint *order* is preserved: cell decompositions index
constraints positionally, so two sets with the same constraints in different
orders are different cache namespaces.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

import numpy as np

from ..core.bounds import BoundOptions
from ..core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from ..core.engine import ContingencyQuery
from ..core.pcset import PredicateConstraintSet
from ..core.predicates import Predicate
from ..relational.relation import Relation
from ..solvers.sat import AttributeDomain

__all__ = [
    "fingerprint_predicate",
    "fingerprint_constraint",
    "fingerprint_pcset",
    "fingerprint_query",
    "fingerprint_bound_options",
    "fingerprint_relation",
    "decomposition_namespace",
    "combine_fingerprints",
]


def _digest(tokens: Iterable[str]) -> str:
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x1f")  # unit separator: "a"+"bc" != "ab"+"c"
    return hasher.hexdigest()


def _number(value: float) -> str:
    """Canonical rendering of a numeric endpoint (inf-safe, int/float stable)."""
    value = float(value)
    if math.isinf(value):
        return "+inf" if value > 0 else "-inf"
    return repr(value)


def _literal(value: object) -> str:
    """Canonical rendering of a categorical literal."""
    return f"{type(value).__name__}:{value!r}"


def _predicate_tokens(predicate: Predicate) -> list[str]:
    tokens = ["predicate"]
    for attribute, constraint in sorted(predicate.ranges.items()):
        tokens.append(f"range:{attribute}:{_number(constraint.low)}"
                      f":{_number(constraint.high)}:{int(constraint.integral)}")
    for attribute, constraint in sorted(predicate.memberships.items()):
        values = ",".join(sorted(_literal(v) for v in constraint.values))
        tokens.append(f"member:{attribute}:{values}")
    return tokens


def _value_tokens(values: ValueConstraint) -> list[str]:
    tokens = ["values"]
    for attribute, (low, high) in sorted(values.bounds.items()):
        tokens.append(f"bound:{attribute}:{_number(low)}:{_number(high)}")
    return tokens


def _frequency_tokens(frequency: FrequencyConstraint) -> list[str]:
    return ["frequency", str(frequency.lower), str(frequency.upper)]


def _domain_tokens(attribute: str, domain: AttributeDomain) -> list[str]:
    if domain.is_numeric:
        interval = domain.interval
        assert interval is not None
        return [f"domain:{attribute}:numeric:{_number(interval.low)}"
                f":{_number(interval.high)}:{int(interval.integral)}"]
    assert domain.categories is not None
    values = ",".join(sorted(_literal(v) for v in domain.categories.values))
    return [f"domain:{attribute}:categorical:{values}"]


def fingerprint_predicate(predicate: Predicate) -> str:
    """Content hash of a box predicate (conjunct order never matters)."""
    return _digest(_predicate_tokens(predicate))


def fingerprint_constraint(constraint: PredicateConstraint) -> str:
    """Content hash of one predicate-constraint (its name is excluded)."""
    tokens = ["constraint"]
    tokens.extend(_predicate_tokens(constraint.predicate))
    tokens.extend(_value_tokens(constraint.values))
    tokens.extend(_frequency_tokens(constraint.frequency))
    return _digest(tokens)


def fingerprint_pcset(pcset: PredicateConstraintSet) -> str:
    """Content hash of a constraint set (order-sensitive, domain-sensitive)."""
    tokens = ["pcset", str(len(pcset))]
    for constraint in pcset:
        tokens.append(fingerprint_constraint(constraint))
    for attribute, domain in sorted(pcset.domains.items()):
        tokens.extend(_domain_tokens(attribute, domain))
    return _digest(tokens)


def fingerprint_query(query: ContingencyQuery) -> str:
    """Content hash of a contingency query (aggregate, attribute, region)."""
    tokens = ["query", query.aggregate.value, query.attribute or ""]
    if query.region is not None:
        tokens.extend(_predicate_tokens(query.region))
    return _digest(tokens)


def fingerprint_bound_options(options: BoundOptions) -> str:
    """Content hash of the solver tuning knobs (plan-pipeline knobs included).

    ``solve_workers`` and ``shard_strategy`` participate because sharded and
    serial execution may legitimately differ under approximate
    (early-stopped) enumeration, ``verify_backend`` because a verified
    session fails differently from an unverified one, and ``degrade``
    because a degraded answer is a (sound) superset of the exact one — the
    two must never share a report-cache entry.  ``parallel_mode`` is
    excluded: thread vs process pools can never change a range, only its
    wall-clock cost; ``deadline_seconds`` likewise — a deadline changes
    whether a query *finishes*, never the range it finishes with.
    """
    tokens = [
        "options",
        options.strategy.value,
        str(options.milp_backend),
        "" if options.early_stop_depth is None else str(options.early_stop_depth),
        str(int(options.check_closure)),
        _number(options.avg_tolerance),
        str(options.avg_max_iterations),
        "" if options.cell_budget is None else str(options.cell_budget),
        str(int(options.optimize)),
        str(int(options.program_reuse)),
        "" if options.solve_workers is None else str(options.solve_workers),
        "" if options.verify_backend is None else str(options.verify_backend),
        options.shard_strategy,
        "" if options.degrade is None else str(options.degrade),
    ]
    return _digest(tokens)


def fingerprint_relation(relation: Relation) -> str:
    """Exact content hash of an observed relation.

    Session deduplication and the report cache treat this as *identity*:
    two relations must fingerprint equally iff their schemas and cell values
    match, otherwise a re-registration with changed data would silently keep
    serving reports computed from the old rows.  Numeric columns are
    digested from their raw array bytes (one C-speed pass per column);
    string columns fall back to per-value rendering.  The relation's display
    name is excluded — renaming does not change any query answer.
    """
    tokens = ["relation", str(relation.num_rows)]
    for column in relation.schema:
        tokens.append(f"column:{column.name}:{column.ctype.value}")
        values = relation.column(column.name)
        if column.is_numeric:
            data = np.ascontiguousarray(values).tobytes()
            tokens.append(hashlib.sha256(data).hexdigest())
        else:
            tokens.append(_digest(_literal(value) for value in values))
    return _digest(tokens)


def decomposition_namespace(pcset: PredicateConstraintSet,
                            options: BoundOptions) -> str:
    """The cache namespace for decompositions of ``pcset`` under ``options``.

    Only the knobs that change the *decomposition itself* participate:
    strategy, early-stop depth, and the plan-pipeline knobs that decide what
    gets decomposed (the optimizer toggle and the cell budget behind
    strategy selection).  The MILP backend, the closure check and the AVG
    search tolerance all act after decomposition, so solvers that differ
    only in those still share cached decompositions.
    """
    tokens = [
        "decomposition-namespace",
        fingerprint_pcset(pcset),
        options.strategy.value,
        "" if options.early_stop_depth is None else str(options.early_stop_depth),
        str(int(options.optimize)),
        "" if options.cell_budget is None else str(options.cell_budget),
    ]
    return _digest(tokens)


def combine_fingerprints(*fingerprints: str) -> str:
    """Fold several fingerprints into one (used for session identities)."""
    return _digest(["combined", *fingerprints])
