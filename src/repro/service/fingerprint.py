"""Stable content fingerprints for the service layer.

The service caches decompositions and reports across requests, sessions and
threads, so cache keys cannot rely on object identity or on Python's
randomised ``hash()``.  This module derives *content hashes*: two objects
that are semantically identical — same predicates, same value/frequency
constraints, same solver options — fingerprint identically in every process,
which is what lets a registry deduplicate re-registered constraint sets and
lets independent analyzers share one decomposition cache.

Fingerprints are hex SHA-256 digests of a canonical token stream.  Constraint
*names* are deliberately excluded: renaming a predicate-constraint changes
reports cosmetically but never changes a bound, so it must not invalidate
caches.  Constraint *order* is preserved: cell decompositions index
constraints positionally, so two sets with the same constraints in different
orders are different cache namespaces.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from ..core.bounds import BoundOptions
from ..core.constraints import (
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from ..core.engine import ContingencyQuery
from ..core.pcset import PredicateConstraintSet
from ..core.predicates import Predicate
from ..relational.relation import Relation
from ..solvers.sat import AttributeDomain

__all__ = [
    "fingerprint_predicate",
    "fingerprint_constraint",
    "fingerprint_pcset",
    "fingerprint_query",
    "fingerprint_bound_options",
    "fingerprint_relation",
    "relation_version",
    "RelationVersion",
    "decomposition_namespace",
    "combine_fingerprints",
]


def _digest(tokens: Iterable[str]) -> str:
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode("utf-8"))
        hasher.update(b"\x1f")  # unit separator: "a"+"bc" != "ab"+"c"
    return hasher.hexdigest()


def _number(value: float) -> str:
    """Canonical rendering of a numeric endpoint (inf-safe, int/float stable)."""
    value = float(value)
    if math.isinf(value):
        return "+inf" if value > 0 else "-inf"
    return repr(value)


def _literal(value: object) -> str:
    """Canonical rendering of a categorical literal."""
    return f"{type(value).__name__}:{value!r}"


def _predicate_tokens(predicate: Predicate) -> list[str]:
    tokens = ["predicate"]
    for attribute, constraint in sorted(predicate.ranges.items()):
        tokens.append(f"range:{attribute}:{_number(constraint.low)}"
                      f":{_number(constraint.high)}:{int(constraint.integral)}")
    for attribute, constraint in sorted(predicate.memberships.items()):
        values = ",".join(sorted(_literal(v) for v in constraint.values))
        tokens.append(f"member:{attribute}:{values}")
    return tokens


def _value_tokens(values: ValueConstraint) -> list[str]:
    tokens = ["values"]
    for attribute, (low, high) in sorted(values.bounds.items()):
        tokens.append(f"bound:{attribute}:{_number(low)}:{_number(high)}")
    return tokens


def _frequency_tokens(frequency: FrequencyConstraint) -> list[str]:
    return ["frequency", str(frequency.lower), str(frequency.upper)]


def _domain_tokens(attribute: str, domain: AttributeDomain) -> list[str]:
    if domain.is_numeric:
        interval = domain.interval
        assert interval is not None
        return [f"domain:{attribute}:numeric:{_number(interval.low)}"
                f":{_number(interval.high)}:{int(interval.integral)}"]
    assert domain.categories is not None
    values = ",".join(sorted(_literal(v) for v in domain.categories.values))
    return [f"domain:{attribute}:categorical:{values}"]


def fingerprint_predicate(predicate: Predicate) -> str:
    """Content hash of a box predicate (conjunct order never matters)."""
    return _digest(_predicate_tokens(predicate))


def fingerprint_constraint(constraint: PredicateConstraint) -> str:
    """Content hash of one predicate-constraint (its name is excluded)."""
    tokens = ["constraint"]
    tokens.extend(_predicate_tokens(constraint.predicate))
    tokens.extend(_value_tokens(constraint.values))
    tokens.extend(_frequency_tokens(constraint.frequency))
    return _digest(tokens)


def fingerprint_pcset(pcset: PredicateConstraintSet) -> str:
    """Content hash of a constraint set (order-sensitive, domain-sensitive)."""
    tokens = ["pcset", str(len(pcset))]
    for constraint in pcset:
        tokens.append(fingerprint_constraint(constraint))
    for attribute, domain in sorted(pcset.domains.items()):
        tokens.extend(_domain_tokens(attribute, domain))
    return _digest(tokens)


def fingerprint_query(query: ContingencyQuery) -> str:
    """Content hash of a contingency query (aggregate, attribute, region)."""
    tokens = ["query", query.aggregate.value, query.attribute or ""]
    if query.region is not None:
        tokens.extend(_predicate_tokens(query.region))
    return _digest(tokens)


def fingerprint_bound_options(options: BoundOptions) -> str:
    """Content hash of the solver tuning knobs (plan-pipeline knobs included).

    ``solve_workers`` and ``shard_strategy`` participate because sharded and
    serial execution may legitimately differ under approximate
    (early-stopped) enumeration, ``verify_backend`` because a verified
    session fails differently from an unverified one, and ``degrade``
    because a degraded answer is a (sound) superset of the exact one — the
    two must never share a report-cache entry.  ``parallel_mode`` is
    excluded: thread vs process pools can never change a range, only its
    wall-clock cost; ``deadline_seconds`` likewise — a deadline changes
    whether a query *finishes*, never the range it finishes with.
    """
    tokens = [
        "options",
        options.strategy.value,
        str(options.milp_backend),
        "" if options.early_stop_depth is None else str(options.early_stop_depth),
        str(int(options.check_closure)),
        _number(options.avg_tolerance),
        str(options.avg_max_iterations),
        "" if options.cell_budget is None else str(options.cell_budget),
        str(int(options.optimize)),
        str(int(options.program_reuse)),
        "" if options.solve_workers is None else str(options.solve_workers),
        "" if options.verify_backend is None else str(options.verify_backend),
        options.shard_strategy,
        "" if options.degrade is None else str(options.degrade),
    ]
    return _digest(tokens)


def _update_column_hasher(hasher: "hashlib._Hash", is_numeric: bool,
                          values: np.ndarray) -> None:
    """Feed one column's values into ``hasher`` in the canonical encoding.

    The encoding is chosen so that streaming a base column followed by delta
    columns produces *exactly* the digest a cold pass over the concatenated
    column would: numeric arrays hash their raw contiguous bytes (and
    ``concat`` preserves dtype, so bytes concatenate), string columns hash
    per-value renderings with unit separators.
    """
    if is_numeric:
        hasher.update(np.ascontiguousarray(values).tobytes())
    else:
        for value in values:
            hasher.update(_literal(value).encode("utf-8"))
            hasher.update(b"\x1f")


def _column_hashers(relation: Relation) -> dict[str, "hashlib._Hash"]:
    """Per-column running hashers for ``relation``, memoized on the object.

    For a relation with append lineage the hashers are built incrementally:
    copy the base relation's (memoized) hasher states via ``hashlib``'s
    ``.copy()`` and stream only the delta bytes — O(delta) work that yields
    digests byte-identical to a cold full-content pass, preserving the
    "fingerprints equal iff content equal" contract.  Callers must ``copy()``
    a hasher before finalising if they intend to extend it further.
    """
    cached = getattr(relation, "_fingerprint_hashers", None)
    if cached is not None:
        return cached
    lineage = relation.append_lineage
    if lineage is not None:
        base, deltas = lineage
        hashers = {name: hasher.copy()
                   for name, hasher in _column_hashers(base).items()}
        for delta in deltas:
            for column in relation.schema:
                _update_column_hasher(hashers[column.name], column.is_numeric,
                                      delta.column(column.name))
    else:
        hashers = {}
        for column in relation.schema:
            hasher = hashlib.sha256()
            _update_column_hasher(hasher, column.is_numeric,
                                  relation.column(column.name))
            hashers[column.name] = hasher
    relation._fingerprint_hashers = hashers
    return hashers


def fingerprint_relation(relation: Relation) -> str:
    """Exact content hash of an observed relation.

    Session deduplication and the report cache treat this as *identity*:
    two relations must fingerprint equally iff their schemas and cell values
    match, otherwise a re-registration with changed data would silently keep
    serving reports computed from the old rows.  Numeric columns are
    digested from their raw array bytes (one C-speed pass per column);
    string columns fall back to per-value rendering.  The relation's display
    name is excluded — renaming does not change any query answer.

    The digest is memoized on the relation object (relations are immutable),
    and relations built via :meth:`Relation.append` are hashed incrementally
    from their lineage — only the delta bytes are streamed, yet the digest
    equals the one a cold full-content pass would produce.
    """
    memo = getattr(relation, "_fingerprint_memo", None)
    if memo is not None:
        return memo
    hashers = _column_hashers(relation)
    tokens = ["relation", str(relation.num_rows)]
    for column in relation.schema:
        tokens.append(f"column:{column.name}:{column.ctype.value}")
        tokens.append(hashers[column.name].copy().hexdigest())
    digest = _digest(tokens)
    relation._fingerprint_memo = digest
    return digest


@dataclass(frozen=True)
class RelationVersion:
    """A versioned identity for an observed relation.

    ``base`` is the content fingerprint of the original relation and
    ``deltas`` the ordered content fingerprints of each appended batch.  Two
    relations with the same version are byte-identical *and* share an append
    history, so caches keyed by the base fingerprint can migrate entries
    delta-by-delta instead of rebuilding.  A relation without append lineage
    has an empty delta chain.
    """

    base: str
    deltas: tuple[str, ...] = ()

    @property
    def fingerprint(self) -> str:
        """Combined digest of the whole version chain."""
        return combine_fingerprints("relation-version", self.base, *self.deltas)

    @property
    def delta_count(self) -> int:
        return len(self.deltas)

    def describe(self) -> str:
        if not self.deltas:
            return f"base {self.base[:12]}"
        return f"base {self.base[:12]} +{len(self.deltas)} delta(s)"


def relation_version(relation: Relation) -> RelationVersion:
    """The :class:`RelationVersion` of ``relation`` (lineage-aware)."""
    lineage = relation.append_lineage
    if lineage is None:
        return RelationVersion(fingerprint_relation(relation))
    base, deltas = lineage
    return RelationVersion(
        fingerprint_relation(base),
        tuple(fingerprint_relation(delta) for delta in deltas),
    )


def decomposition_namespace(pcset: PredicateConstraintSet,
                            options: BoundOptions) -> str:
    """The cache namespace for decompositions of ``pcset`` under ``options``.

    Only the knobs that change the *decomposition itself* participate:
    strategy, early-stop depth, and the plan-pipeline knobs that decide what
    gets decomposed (the optimizer toggle and the cell budget behind
    strategy selection).  The MILP backend, the closure check and the AVG
    search tolerance all act after decomposition, so solvers that differ
    only in those still share cached decompositions.
    """
    tokens = [
        "decomposition-namespace",
        fingerprint_pcset(pcset),
        options.strategy.value,
        "" if options.early_stop_depth is None else str(options.early_stop_depth),
        str(int(options.optimize)),
        "" if options.cell_budget is None else str(options.cell_budget),
    ]
    return _digest(tokens)


def combine_fingerprints(*fingerprints: str) -> str:
    """Fold several fingerprints into one (used for session identities)."""
    return _digest(["combined", *fingerprints])
