"""A thread-safe LRU cache with hit/miss/eviction statistics.

This is the storage substrate for the service layer: one instance holds cell
decompositions (keyed by decomposition namespace and query region), another
holds finished contingency reports (keyed by session identity and query
fingerprint).  The design constraints come from the batch executor:

* **Thread safety** — batched queries run on a thread pool, so every
  operation takes an internal lock.
* **Compute deduplication** — fifty concurrent queries over the same region
  must trigger *one* decomposition, not fifty.  :meth:`get_or_compute`
  serialises the factory per key (other keys proceed in parallel) so the
  losers of the race reuse the winner's value.
* **Observability** — hit/miss/eviction counters feed the service statistics
  that the benchmark suite and the CLI report.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, TypeVar

__all__ = ["CacheStatistics", "LRUCache"]

_MISSING = object()
Value = TypeVar("Value")


@dataclass
class CacheStatistics:
    """Counters describing one cache's traffic.

    ``evictions`` counts capacity-driven removals only; ``invalidations``
    counts removals requested via :meth:`LRUCache.invalidate_where` — the
    two removal paths have very different meanings (memory pressure vs.
    "this entry is no longer valid") and must not be conflated in stats.
    """

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    puts: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when idle)."""
        if not self.lookups:
            return 0.0
        return self.hits / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }

    def snapshot(self) -> "CacheStatistics":
        return CacheStatistics(self.hits, self.misses, self.evictions,
                               self.puts, self.invalidations)


class LRUCache:
    """A bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    max_entries:
        Capacity; the least recently *used* entry is evicted on overflow.
        Must be positive — a service that wants caching off should simply not
        pass a cache.
    name:
        Label used in statistics summaries.

    A persistent tier may be attached via :meth:`attach_store` (see
    :mod:`repro.service.store`): writes then go through to the store, and a
    memory miss falls back to a store read before reporting a true miss, so
    warm entries survive process restarts.  The store never affects
    correctness — a store failure or absent row is simply a miss.
    """

    def __init__(self, max_entries: int = 256, name: str = "cache"):
        if max_entries <= 0:
            raise ValueError(f"max_entries must be positive, got {max_entries}")
        self._max_entries = max_entries
        self._name = name
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._statistics = CacheStatistics()
        self._lock = threading.RLock()
        self._key_locks: dict[Hashable, threading.Lock] = {}
        self._store = None
        self._store_kind = name

    def attach_store(self, store: object, kind: str | None = None) -> None:
        """Back this cache with a persistent tier.

        ``store`` is duck-typed: it must expose ``read(kind, key)`` (returning
        ``None`` on miss/failure), ``write(kind, key, value)`` and
        ``invalidate_where(kind, predicate)``.  ``kind`` namespaces this
        cache's rows inside the shared store file (defaults to the cache
        name).  Entries loaded from the store are promoted into memory
        without being written back.
        """
        self._store = store
        self._store_kind = kind if kind is not None else self._name

    @property
    def store(self) -> object | None:
        return self._store

    @property
    def name(self) -> str:
        return self._name

    @property
    def max_entries(self) -> int:
        return self._max_entries

    @property
    def statistics(self) -> CacheStatistics:
        """Live statistics (take :meth:`CacheStatistics.snapshot` to freeze)."""
        return self._statistics

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self) -> list[Hashable]:
        with self._lock:
            return list(self._entries)

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #
    def get(self, key: Hashable, default: object = None) -> object:
        """Look up ``key``, counting a hit or a miss and refreshing recency.

        With a persistent tier attached, a memory miss falls back to a store
        read; a store hit promotes the value into memory (without writing it
        back to the store).  The memory counters still record the miss — the
        store keeps its own hit/read counters — so in-memory statistics stay
        comparable with and without a persistent tier.
        """
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is not _MISSING:
                self._entries.move_to_end(key)
                self._statistics.hits += 1
                return value
            self._statistics.misses += 1
        store = self._store
        if store is None:
            return default
        loaded = store.read(self._store_kind, key)
        if loaded is None:
            return default
        with self._lock:
            self._entries[key] = loaded
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._statistics.evictions += 1
        return loaded

    def peek(self, key: Hashable, default: object = None) -> object:
        """Look up ``key`` without touching recency or the counters."""
        with self._lock:
            value = self._entries.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: object) -> None:
        """Insert or overwrite ``key``, evicting the LRU entry on overflow.

        Write-through: with a persistent tier attached the value is also
        written to the store (capacity eviction never touches the store —
        evicted entries remain readable from disk).
        """
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            self._statistics.puts += 1
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._statistics.evictions += 1
        store = self._store
        if store is not None:
            store.write(self._store_kind, key, value)

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Remove every entry whose *key* satisfies ``predicate``.

        Returns the number of in-memory entries removed; removals are counted
        under ``invalidations``, never ``evictions`` (capacity pressure and
        validity are different removal reasons).  With a persistent tier
        attached the matching store rows are deleted too, so an invalidated
        entry cannot resurrect on the next restart.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._statistics.invalidations += len(doomed)
        store = self._store
        if store is not None:
            store.invalidate_where(self._store_kind, predicate)
        return len(doomed)

    def get_or_compute(self, key: Hashable,
                       factory: Callable[[], Value]) -> Value:
        """Return the cached value, computing (once) and caching on a miss.

        Concurrent callers with the same key block on a per-key lock while
        the first caller runs ``factory``; callers with different keys never
        block each other.  The hit/miss counters see exactly one event per
        call, so single-threaded traffic has exact, reproducible counts.
        """
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value  # type: ignore[return-value]
        with self._lock:
            key_lock = self._key_locks.setdefault(key, threading.Lock())
        with key_lock:
            # A concurrent computation may have finished while we waited on
            # the key lock; peek so the race loser does not double-count.
            value = self.peek(key, _MISSING)
            if value is _MISSING:
                value = factory()
                self.put(key, value)
            with self._lock:
                self._key_locks.pop(key, None)
        return value  # type: ignore[return-value]

    def clear(self) -> None:
        """Drop every in-memory entry (statistics and the store persist).

        An attached persistent tier is deliberately untouched: ``clear`` is a
        memory-pressure valve, not an invalidation — use
        :meth:`invalidate_where` to remove entries from both tiers.
        """
        with self._lock:
            self._entries.clear()

    def reset_statistics(self) -> None:
        with self._lock:
            self._statistics = CacheStatistics()

    def __repr__(self) -> str:
        with self._lock:
            return (f"LRUCache({self._name!r}, {len(self._entries)}/"
                    f"{self._max_entries} entries, "
                    f"hits={self._statistics.hits}, "
                    f"misses={self._statistics.misses}, "
                    f"evictions={self._statistics.evictions})")
