"""Concurrent execution of contingency-query batches.

Production traffic arrives as batches — a dashboard refresh fires dozens of
aggregate queries against the same constraint session at once.  Two
observations shape the executor:

* Queries cluster on a few WHERE regions (per-widget filters), and the
  expensive step — cell decomposition — depends only on the region.  The
  executor therefore groups the batch by region and *warms* each distinct
  region's decomposition first, so the MILP solves that follow all run
  against cached decompositions.
* Warm queries are independent, so they fan out over a worker pool.  The
  pool is **persistent** (:class:`~repro.parallel.pool.WorkerPool`): the
  executor borrows the service's pool (or lazily owns one) instead of
  spinning a fresh executor per batch, so process workers keep warm
  program caches across batches — the first batch ships compiled skeletons
  and registers the session on each worker, every later batch ships only
  keys and queries.

Results come back in input order, each paired with the same
:class:`~repro.core.engine.ContingencyReport` a sequential
:meth:`PCAnalyzer.analyze` call would produce, plus batch-level statistics
(including the pool's warm-cache traffic for the batch).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.engine import ContingencyQuery, ContingencyReport, PCAnalyzer
from ..core.predicates import Predicate
from ..obs.metrics import timed
from ..obs.trace import get_tracer
from ..parallel.executor import SolveExecutor, default_workers
from ..parallel.pool import WorkerPool
from ..solvers.registry import backend_capabilities

__all__ = ["BatchStatistics", "BatchResult", "BatchExecutor"]


@dataclass
class BatchStatistics:
    """What one batch execution cost."""

    total_queries: int = 0
    region_groups: int = 0
    program_groups: int = 0
    max_workers: int = 0
    executor_mode: str = "thread"
    warm_seconds: float = 0.0
    execute_seconds: float = 0.0
    group_sizes: dict[str, int] = field(default_factory=dict)
    pool_statistics: dict[str, float] | None = None

    @property
    def wall_seconds(self) -> float:
        return self.warm_seconds + self.execute_seconds

    def as_dict(self) -> dict[str, object]:
        return {
            "total_queries": self.total_queries,
            "region_groups": self.region_groups,
            "program_groups": self.program_groups,
            "max_workers": self.max_workers,
            "executor_mode": self.executor_mode,
            "warm_seconds": self.warm_seconds,
            "execute_seconds": self.execute_seconds,
            "wall_seconds": self.wall_seconds,
            "group_sizes": dict(self.group_sizes),
            "pool_statistics": (None if self.pool_statistics is None
                                else dict(self.pool_statistics)),
        }

    def summary(self) -> str:
        return (f"{self.total_queries} queries in {self.region_groups} region "
                f"group(s) over {self.max_workers} worker(s): "
                f"warm {self.warm_seconds * 1000:.1f} ms + "
                f"execute {self.execute_seconds * 1000:.1f} ms")


@dataclass
class BatchResult:
    """Per-query reports (input order) plus batch statistics."""

    reports: list[ContingencyReport]
    statistics: BatchStatistics

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def summary(self) -> str:
        lines = [self.statistics.summary()]
        lines.extend(f"  {report.summary()}" for report in self.reports)
        return "\n".join(lines)


def _session_key_for(analyzer: PCAnalyzer) -> str:
    """A content fingerprint identifying ``analyzer`` on pool workers.

    Matches the registry's session fingerprint (constraints + options +
    observed data), so a service-passed key and a derived key for the same
    session address the same worker-side state.
    """
    from .fingerprint import (
        combine_fingerprints,
        fingerprint_bound_options,
        fingerprint_pcset,
        fingerprint_relation,
    )

    parts = [fingerprint_pcset(analyzer.pcset),
             fingerprint_bound_options(analyzer.options)]
    if analyzer.observed is not None:
        parts.append(fingerprint_relation(analyzer.observed))
    return combine_fingerprints(*parts)


class BatchExecutor:
    """Runs query batches against an analyzer, concurrently and region-grouped.

    Parameters
    ----------
    max_workers:
        Pool width (default: ``min(8, cpu_count)``).  ``1`` degrades
        gracefully to sequential execution — useful for debugging and for
        analyzers that are not safe to share across threads (a plain
        :class:`PCAnalyzer` without a shared thread-safe decomposition cache
        should be driven with ``max_workers=1``; analyzers built by the
        service layer are always safe).
    mode:
        The pool flavour for phase 2 (``"thread"`` by default;
        ``"process"`` for the warm persistent-pool path).  Phase 1
        (program warming) always uses threads — warming must populate the
        *parent's* caches, which a worker process cannot do.
    pool:
        A long-lived :class:`~repro.parallel.pool.WorkerPool` to borrow
        (the service passes its own).  When omitted the executor lazily
        creates and owns one with ``(max_workers, mode)`` — still
        persistent across its batches — and tears it down in
        :meth:`close` / on interpreter exit.
    """

    def __init__(self, max_workers: int | None = None, mode: str = "thread",
                 pool: WorkerPool | None = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._max_workers = max_workers or default_workers()
        self._mode = mode
        # Fail fast on an unknown mode (SolveExecutor validates the name).
        SolveExecutor(max_workers=1, mode=mode)
        self._pool = pool
        self._owns_pool = pool is None
        self._own_pool: WorkerPool | None = None
        self._fallback_pool: WorkerPool | None = None

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def mode(self) -> str:
        return self._mode

    @property
    def pool(self) -> WorkerPool | None:
        """The pool batches currently borrow (None until first use)."""
        return self._pool if self._pool is not None else self._own_pool

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down pools this executor owns (idempotent).  Borrowed pools
        belong to their owner (the service) and are left running."""
        if self._owns_pool and self._own_pool is not None:
            self._own_pool.shutdown()
            self._own_pool = None
        if self._fallback_pool is not None:
            self._fallback_pool.shutdown()
            self._fallback_pool = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _borrowed_pool(self) -> WorkerPool:
        if self._pool is not None:
            return self._pool
        if self._own_pool is None:
            self._own_pool = WorkerPool(max_workers=self._max_workers,
                                        mode=self._mode, name="batch")
        return self._own_pool

    def _thread_fallback(self) -> WorkerPool:
        """A thread pool for analyzers whose backend is not process-safe."""
        if self._fallback_pool is None:
            self._fallback_pool = WorkerPool(max_workers=self._max_workers,
                                            mode="thread",
                                            name="batch-fallback")
        return self._fallback_pool

    # ------------------------------------------------------------------ #
    # Grouping
    # ------------------------------------------------------------------ #
    def group_by_region(self, queries: list[ContingencyQuery]
                        ) -> dict[Predicate | None, list[int]]:
        """Input positions grouped by (content-equal) query region."""
        groups: dict[Predicate | None, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(query.region, []).append(position)
        return groups

    def group_by_program(self, queries: list[ContingencyQuery]
                         ) -> dict[tuple[Predicate | None, str | None], list[int]]:
        """Input positions grouped by compiled-program identity.

        A bound program is keyed by (region, aggregated attribute) — one
        program answers every aggregate over the pair, so COUNT/SUM/AVG/...
        queries over the same region and attribute share one compilation.
        """
        groups: dict[tuple[Predicate | None, str | None], list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault((query.region, query.attribute), []).append(position)
        return groups

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(self, analyzer: PCAnalyzer,
                queries: list[ContingencyQuery],
                session_key: str | None = None) -> BatchResult:
        """Answer every query; reports come back in input order.

        ``session_key`` identifies the analyzer on pool workers (the
        service passes its session fingerprint); omitted, a content
        fingerprint is derived so direct executor use still gets warm
        worker routing.
        """
        statistics = BatchStatistics(total_queries=len(queries),
                                     max_workers=self._max_workers,
                                     executor_mode=self._mode)
        if not queries:
            return BatchResult([], statistics)

        groups = self.group_by_region(queries)
        statistics.region_groups = len(groups)
        statistics.group_sizes = {
            "TRUE" if region is None else repr(region): len(positions)
            for region, positions in groups.items()
        }
        program_groups = self.group_by_program(queries)
        statistics.program_groups = len(program_groups)

        # Phase 1 — warm one compiled program per distinct (region,
        # attribute) pair.  Pairs sharing a region share one cached
        # decomposition underneath, so this still decomposes each region
        # exactly once; distinct pairs compile in parallel and the per-key
        # locking inside a shared cache dedupes any overlap with
        # concurrent batches.
        tracer = get_tracer()
        pairs = list(program_groups)
        with timed("batch.warm_seconds") as warm_timer, \
                tracer.span("batch.warm"):
            tracer.annotate(programs=len(pairs))
            if self._max_workers == 1 or len(pairs) == 1:
                for region, attribute in pairs:
                    analyzer.prepare(region, attribute)
            else:
                with ThreadPoolExecutor(
                        max_workers=self._max_workers) as warm_pool:
                    list(warm_pool.map(lambda pair: analyzer.prepare(*pair),
                                       pairs))
        statistics.warm_seconds = warm_timer.seconds

        # Phase 2 — every query now runs against a warm program, fanned out
        # through the persistent worker pool.  Thread mode keeps the
        # historical shared-memory behaviour; process mode registers the
        # session on each involved worker once, pre-ships the warm compiled
        # skeletons to their affinity workers, and from then on ships only
        # keys — the per-batch fork/pickle cost the per-call executor used
        # to pay is gone.  Backends that are not process-safe fall back to
        # the thread pool.
        pool = self._borrowed_pool()
        if (pool.mode == "process" and not backend_capabilities(
                analyzer.options.milp_backend).process_safe):
            pool = self._thread_fallback()
        statistics.executor_mode = pool.mode
        before = pool.statistics.snapshot()
        with timed("batch.execute_seconds") as execute_timer, \
                tracer.span("batch.execute"):
            tracer.annotate(queries=len(queries), mode=pool.mode)
            if pool.mode == "process":
                solver = analyzer.solver
                key = session_key or _session_key_for(analyzer)
                entries = {}
                keyed_queries = []
                for query in queries:
                    program_key = solver.program_key(query.region,
                                                     query.attribute)
                    program = solver.program(query.region, query.attribute)
                    depth = solver.resolved_early_stop_depth(query.region,
                                                             query.attribute)
                    entries[program_key] = program
                    keyed_queries.append((program_key, program, query, depth))
                pool.warm(entries)
                reports = pool.analyze(key, analyzer, keyed_queries)
            else:
                keyed_queries = [(None, None, query, None)
                                 for query in queries]
                reports = pool.analyze(session_key or "batch", analyzer,
                                       keyed_queries)
        statistics.execute_seconds = execute_timer.seconds
        after = pool.statistics.snapshot()
        # Pool traffic attributed to this batch as a before/after delta of
        # the (shared) pool's counters.  Exact for the common sequential
        # case; when batches overlap on one service the deltas apportion the
        # pool's combined traffic across the overlapping batches — an
        # observability caveat, never a correctness one.
        statistics.pool_statistics = {
            name: after.as_dict()[name] - before.as_dict()[name]
            for name in ("tasks_dispatched", "programs_shipped", "warm_hits",
                         "sessions_shipped", "worker_restarts",
                         "tasks_shipped", "cells_solved")
        }
        return BatchResult(reports, statistics)
