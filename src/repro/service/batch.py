"""Concurrent execution of contingency-query batches.

Production traffic arrives as batches — a dashboard refresh fires dozens of
aggregate queries against the same constraint session at once.  Two
observations shape the executor:

* Queries cluster on a few WHERE regions (per-widget filters), and the
  expensive step — cell decomposition — depends only on the region.  The
  executor therefore groups the batch by region and *warms* each distinct
  region's decomposition first, so the MILP solves that follow all run
  against cached decompositions.
* Warm queries are independent, so they fan out over a thread pool.  The
  MILP/LP solves release the GIL inside scipy and the box-SAT work is
  already cached, which makes the fan-out worthwhile even on CPython.

Results come back in input order, each paired with the same
:class:`~repro.core.engine.ContingencyReport` a sequential
:meth:`PCAnalyzer.analyze` call would produce, plus batch-level statistics.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..core.engine import ContingencyQuery, ContingencyReport, PCAnalyzer
from ..core.predicates import Predicate
from ..parallel.executor import SolveExecutor, default_workers

__all__ = ["BatchStatistics", "BatchResult", "BatchExecutor"]


@dataclass
class BatchStatistics:
    """What one batch execution cost."""

    total_queries: int = 0
    region_groups: int = 0
    program_groups: int = 0
    max_workers: int = 0
    executor_mode: str = "thread"
    warm_seconds: float = 0.0
    execute_seconds: float = 0.0
    group_sizes: dict[str, int] = field(default_factory=dict)

    @property
    def wall_seconds(self) -> float:
        return self.warm_seconds + self.execute_seconds

    def as_dict(self) -> dict[str, object]:
        return {
            "total_queries": self.total_queries,
            "region_groups": self.region_groups,
            "program_groups": self.program_groups,
            "max_workers": self.max_workers,
            "executor_mode": self.executor_mode,
            "warm_seconds": self.warm_seconds,
            "execute_seconds": self.execute_seconds,
            "wall_seconds": self.wall_seconds,
            "group_sizes": dict(self.group_sizes),
        }

    def summary(self) -> str:
        return (f"{self.total_queries} queries in {self.region_groups} region "
                f"group(s) over {self.max_workers} worker(s): "
                f"warm {self.warm_seconds * 1000:.1f} ms + "
                f"execute {self.execute_seconds * 1000:.1f} ms")


@dataclass
class BatchResult:
    """Per-query reports (input order) plus batch statistics."""

    reports: list[ContingencyReport]
    statistics: BatchStatistics

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def summary(self) -> str:
        lines = [self.statistics.summary()]
        lines.extend(f"  {report.summary()}" for report in self.reports)
        return "\n".join(lines)


class BatchExecutor:
    """Runs query batches against an analyzer, concurrently and region-grouped.

    Parameters
    ----------
    max_workers:
        Thread-pool width (default: ``min(8, cpu_count)``).  ``1`` degrades
        gracefully to sequential execution — useful for debugging and for
        analyzers that are not safe to share across threads (a plain
        :class:`PCAnalyzer` without a shared thread-safe decomposition cache
        should be driven with ``max_workers=1``; analyzers built by the
        service layer are always safe).
    mode:
        The :class:`~repro.parallel.SolveExecutor` flavour for phase 2
        (``"thread"`` by default).  Phase 1 (program warming) always uses
        threads — warming must populate the *parent's* caches, which a
        worker process cannot do.
    """

    def __init__(self, max_workers: int | None = None, mode: str = "thread"):
        if max_workers is not None and max_workers <= 0:
            raise ValueError(f"max_workers must be positive, got {max_workers}")
        self._max_workers = max_workers or default_workers()
        self._mode = mode
        # Fail fast on an unknown mode (SolveExecutor validates).
        SolveExecutor(max_workers=1, mode=mode)

    @property
    def max_workers(self) -> int:
        return self._max_workers

    @property
    def mode(self) -> str:
        return self._mode

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def group_by_region(self, queries: list[ContingencyQuery]
                        ) -> dict[Predicate | None, list[int]]:
        """Input positions grouped by (content-equal) query region."""
        groups: dict[Predicate | None, list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault(query.region, []).append(position)
        return groups

    def group_by_program(self, queries: list[ContingencyQuery]
                         ) -> dict[tuple[Predicate | None, str | None], list[int]]:
        """Input positions grouped by compiled-program identity.

        A bound program is keyed by (region, aggregated attribute) — one
        program answers every aggregate over the pair, so COUNT/SUM/AVG/...
        queries over the same region and attribute share one compilation.
        """
        groups: dict[tuple[Predicate | None, str | None], list[int]] = {}
        for position, query in enumerate(queries):
            groups.setdefault((query.region, query.attribute), []).append(position)
        return groups

    def execute(self, analyzer: PCAnalyzer,
                queries: list[ContingencyQuery]) -> BatchResult:
        """Answer every query; reports come back in input order."""
        statistics = BatchStatistics(total_queries=len(queries),
                                     max_workers=self._max_workers,
                                     executor_mode=self._mode)
        if not queries:
            return BatchResult([], statistics)

        groups = self.group_by_region(queries)
        statistics.region_groups = len(groups)
        statistics.group_sizes = {
            "TRUE" if region is None else repr(region): len(positions)
            for region, positions in groups.items()
        }
        program_groups = self.group_by_program(queries)
        statistics.program_groups = len(program_groups)

        # Phase 1 — warm one compiled program per distinct (region,
        # attribute) pair.  Pairs sharing a region share one cached
        # decomposition underneath, so this still decomposes each region
        # exactly once; distinct pairs compile in parallel and the per-key
        # locking inside a shared cache dedupes any overlap with
        # concurrent batches.
        started = time.perf_counter()
        pairs = list(program_groups)
        if self._max_workers == 1 or len(pairs) == 1:
            for region, attribute in pairs:
                analyzer.prepare(region, attribute)
        else:
            with ThreadPoolExecutor(max_workers=self._max_workers) as pool:
                list(pool.map(lambda pair: analyzer.prepare(*pair), pairs))
        statistics.warm_seconds = time.perf_counter() - started

        # Phase 2 — every query now runs against a warm decomposition,
        # fanned out through the shared solve executor.  Thread mode keeps
        # the historical behaviour; process mode (opt-in) pickles the warm
        # analyzer to worker processes for GIL-free solves — best combined
        # with *private* (non-service) caches, whose compiled programs
        # travel in the pickle; shared LRU caches cannot cross processes,
        # so service-built analyzers arrive cold in workers (a persistent
        # warm worker pool is a ROADMAP item).  The analyzer's MILP backend
        # is passed so the process_safe capability gate fails fast instead
        # of crashing inside a worker.
        started = time.perf_counter()
        with SolveExecutor(max_workers=self._max_workers, mode=self._mode,
                           backend=analyzer.options.milp_backend) as executor:
            reports = executor.map(analyzer.analyze, queries)
        statistics.execute_seconds = time.perf_counter() - started
        return BatchResult(reports, statistics)
