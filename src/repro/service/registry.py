"""Named, versioned registration of constraint sets and observed relations.

A production deployment does not ship a constraint file with every query:
an analyst registers "the outage constraints for the sales table" once, the
service assigns it a version, and subsequent queries reference it by name.
The registry is the session layer that makes this possible:

* registering the *same content* under the same name is idempotent — the
  content fingerprint (see :mod:`repro.service.fingerprint`) deduplicates,
  so retries and redundant client registrations never fork versions;
* registering *changed content* bumps the version, and old versions stay
  queryable (reports are reproducible even after constraints evolve);
* every session lazily owns one :class:`~repro.core.engine.PCAnalyzer`
  wired to the registry's shared decomposition cache, so all sessions over
  equal constraint sets share decomposition work.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.bounds import BoundOptions
from ..core.engine import ContingencyQuery, ContingencyReport, PCAnalyzer
from ..core.pcset import PredicateConstraintSet
from ..exceptions import ReproError
from ..relational.relation import Relation
from .fingerprint import (
    RelationVersion,
    combine_fingerprints,
    decomposition_namespace,
    fingerprint_bound_options,
    fingerprint_pcset,
    fingerprint_relation,
    relation_version,
)

__all__ = ["RegisteredSession", "SessionRegistry"]


@dataclass
class RegisteredSession:
    """One (name, version) binding of constraints + observed data + options."""

    name: str
    version: int
    pcset: PredicateConstraintSet
    observed: Relation | None
    options: BoundOptions
    fingerprint: str
    registered_at: float
    _decomposition_cache: object = field(default=None, repr=False)
    _program_cache: object = field(default=None, repr=False)
    _worker_pool: object = field(default=None, repr=False)
    _cell_statistics: object = field(default=None, repr=False)
    _shard_loads: object = field(default=None, repr=False)
    _analyzer: PCAnalyzer | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    @property
    def analyzer(self) -> PCAnalyzer:
        """The session's analyzer, created on first use and then reused."""
        with self._lock:
            if self._analyzer is None:
                self._analyzer = PCAnalyzer(
                    self.pcset, observed=self.observed, options=self.options,
                    decomposition_cache=self._decomposition_cache,
                    cache_namespace=decomposition_namespace(self.pcset,
                                                            self.options),
                    program_cache=self._program_cache,
                    worker_pool=self._worker_pool,
                    cell_statistics=self._cell_statistics,
                    shard_loads=self._shard_loads)
            return self._analyzer

    def analyze(self, query: ContingencyQuery) -> ContingencyReport:
        return self.analyzer.analyze(query)

    def solver_counters(self) -> tuple[int, int, int]:
        """(decompositions computed, satisfiability calls, programs compiled)
        so far; all zero when the session has never answered a query
        (analyzer not built)."""
        with self._lock:
            if self._analyzer is None:
                return (0, 0, 0)
            solver = self._analyzer.solver
            return (solver.decompositions_computed,
                    solver.decomposition_solver_calls,
                    solver.programs_compiled)

    @property
    def relation_version(self) -> RelationVersion | None:
        """The observed relation's versioned identity (None when data-less).

        Lineage-aware: a session registered from an appended relation
        reports its base fingerprint plus the ordered delta digests, which
        is what lets the service tell "version N+1 is version N plus these
        rows" apart from "version N+1 is different data".
        """
        if self.observed is None:
            return None
        return relation_version(self.observed)

    def describe(self) -> dict[str, object]:
        version = self.relation_version
        return {
            "name": self.name,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "constraints": len(self.pcset),
            "total_max_rows": self.pcset.total_max_rows(),
            "observed_rows": 0 if self.observed is None else self.observed.num_rows,
            "relation_version": None if version is None else version.describe(),
            "shard_strategy": self.options.shard_strategy,
            "deadline_seconds": self.options.deadline_seconds,
            "degrade": self.options.degrade,
            "registered_at": self.registered_at,
        }


def _session_fingerprint(pcset: PredicateConstraintSet,
                         observed: Relation | None,
                         options: BoundOptions) -> str:
    parts = [fingerprint_pcset(pcset), fingerprint_bound_options(options)]
    if observed is not None:
        parts.append(fingerprint_relation(observed))
    return combine_fingerprints(*parts)


class SessionRegistry:
    """Thread-safe store of :class:`RegisteredSession` objects.

    Parameters
    ----------
    decomposition_cache:
        Shared cache handed to every session's analyzer (usually the
        owning :class:`~repro.service.service.ContingencyService`'s cache).
        ``None`` gives each analyzer its private per-instance cache.
    program_cache:
        Shared cache of compiled bound programs, handed to every session's
        analyzer alongside the decomposition cache.
    worker_pool:
        The owning service's persistent worker pool, handed to every
        session's analyzer so sharded fan-out borrows it instead of
        spinning per-call executors.
    cell_statistics:
        Shared :class:`~repro.plan.passes.ObservedCellStatistics` feed, so
        every session's measured decompositions inform every other
        session's adaptive cell budgeting.
    shard_loads:
        Shared :class:`~repro.plan.passes.ShardLoadMemo`, so every
        session's observed per-shard cell loads inform every other
        session's region cut placement.
    """

    def __init__(self, decomposition_cache=None, program_cache=None,
                 worker_pool=None, cell_statistics=None, shard_loads=None):
        self._decomposition_cache = decomposition_cache
        self._program_cache = program_cache
        self._worker_pool = worker_pool
        self._cell_statistics = cell_statistics
        self._shard_loads = shard_loads
        self._sessions: dict[str, list[RegisteredSession]] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def register(self, name: str, pcset: PredicateConstraintSet,
                 observed: Relation | None = None,
                 options: BoundOptions | None = None) -> RegisteredSession:
        """Bind constraints (and optional observed data) to ``name``.

        Returns the existing latest session when its content fingerprint
        matches (idempotent re-registration); otherwise creates version
        ``latest + 1``.
        """
        if not name:
            raise ReproError("session name must be non-empty")
        options = options or BoundOptions()
        fingerprint = _session_fingerprint(pcset, observed, options)
        with self._lock:
            versions = self._sessions.setdefault(name, [])
            if versions and versions[-1].fingerprint == fingerprint:
                return versions[-1]
            session = RegisteredSession(
                name=name,
                version=len(versions) + 1,
                pcset=pcset,
                observed=observed,
                options=options,
                fingerprint=fingerprint,
                registered_at=time.time(),
                _decomposition_cache=self._decomposition_cache,
                _program_cache=self._program_cache,
                _worker_pool=self._worker_pool,
                _cell_statistics=self._cell_statistics,
                _shard_loads=self._shard_loads,
            )
            versions.append(session)
            return session

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def get(self, name: str, version: int | None = None) -> RegisteredSession:
        """The session registered under ``name`` (latest version by default)."""
        with self._lock:
            versions = self._sessions.get(name)
            if not versions:
                raise ReproError(f"no session registered under {name!r}")
            if version is None:
                return versions[-1]
            for session in versions:
                if session.version == version:
                    return session
            raise ReproError(
                f"session {name!r} has no version {version} "
                f"(latest is {versions[-1].version})")

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def versions(self, name: str) -> list[RegisteredSession]:
        with self._lock:
            return list(self._sessions.get(name, []))

    def sessions(self) -> list[RegisteredSession]:
        """Every registered session, ordered by (name, version)."""
        with self._lock:
            return [session
                    for name in sorted(self._sessions)
                    for session in self._sessions[name]]

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._sessions

    def __len__(self) -> int:
        """Number of registered sessions across all names and versions."""
        with self._lock:
            return sum(len(versions) for versions in self._sessions.values())
