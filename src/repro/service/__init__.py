"""The contingency-analysis service layer (registry, caches, batching).

This subpackage turns the one-shot :class:`~repro.core.engine.PCAnalyzer`
into a long-lived service: constraint sets are registered once under stable
names, cell decompositions and finished reports are cached by content
fingerprint, and query batches execute concurrently over a thread pool.

Layering: ``repro.service`` sits strictly above ``repro.core`` — core never
imports it at module scope.  The one upward reference (the bound solver
deriving a default cache namespace) is a lazy import that only triggers when
a shared cache is in play.
"""

from .admission import (
    AdmissionController,
    AdmissionPolicy,
    AdmissionStatistics,
    QueryCost,
    price_query,
)
from .batch import BatchExecutor, BatchResult, BatchStatistics
from .cache import CacheStatistics, LRUCache
from .fingerprint import (
    RelationVersion,
    combine_fingerprints,
    decomposition_namespace,
    fingerprint_bound_options,
    fingerprint_constraint,
    fingerprint_pcset,
    fingerprint_predicate,
    fingerprint_query,
    fingerprint_relation,
    relation_version,
)
from .registry import RegisteredSession, SessionRegistry
from .service import ContingencyService, ServiceStatistics
from .store import PersistentStore, StoreStatistics, default_cache_dir

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "AdmissionStatistics",
    "QueryCost",
    "price_query",
    "BatchExecutor",
    "BatchResult",
    "BatchStatistics",
    "CacheStatistics",
    "LRUCache",
    "PersistentStore",
    "StoreStatistics",
    "default_cache_dir",
    "RelationVersion",
    "relation_version",
    "combine_fingerprints",
    "decomposition_namespace",
    "fingerprint_bound_options",
    "fingerprint_constraint",
    "fingerprint_pcset",
    "fingerprint_predicate",
    "fingerprint_query",
    "fingerprint_relation",
    "RegisteredSession",
    "SessionRegistry",
    "ContingencyService",
    "ServiceStatistics",
]
