"""Constraint mis-specification (paper §6.3.2, Figure 6).

Users write predicate-constraints by hand, so the paper studies what happens
when the value ranges are *wrong*: independent Gaussian noise is added to
each value constraint's minimum and maximum.  Under-estimated ranges can cut
off the true values, producing failures; the experiment measures how failure
rates grow with the noise level and how overlapping constraints dampen it.
"""

from __future__ import annotations

import numpy as np

from ..core.constraints import PredicateConstraint, ValueConstraint
from ..core.pcset import PredicateConstraintSet
from ..exceptions import WorkloadError

__all__ = ["corrupt_value_constraints", "corrupt_frequency_constraints"]


def corrupt_value_constraints(pcset: PredicateConstraintSet,
                              noise_std_fraction: float,
                              rng: np.random.Generator | None = None
                              ) -> PredicateConstraintSet:
    """Add Gaussian noise to every value constraint's lower and upper bound.

    ``noise_std_fraction`` scales the noise standard deviation relative to
    each constraint's own value range (so "1 SD of noise" means the bound
    moves by about the width of the range it describes, matching the
    figure's 1/2/3-SD sweep).
    """
    if noise_std_fraction < 0:
        raise WorkloadError("noise_std_fraction must be non-negative")
    generator = rng if rng is not None else np.random.default_rng()

    def corrupt(constraint: PredicateConstraint) -> PredicateConstraint:
        noisy_bounds: dict[str, tuple[float, float]] = {}
        for attribute, (low, high) in constraint.values.bounds.items():
            scale = max(abs(high - low), 1e-9) * noise_std_fraction
            noisy_low = low + float(generator.normal(0.0, scale))
            noisy_high = high + float(generator.normal(0.0, scale))
            if noisy_low > noisy_high:
                noisy_low, noisy_high = noisy_high, noisy_low
            noisy_bounds[attribute] = (noisy_low, noisy_high)
        return PredicateConstraint(constraint.predicate,
                                   ValueConstraint(noisy_bounds),
                                   constraint.frequency,
                                   name=constraint.name)

    corrupted = pcset.map_constraints(corrupt)
    # Corruption does not change the predicates, so structural hints survive.
    if pcset.is_pairwise_disjoint():
        corrupted.mark_disjoint(True)
    if pcset.is_closed():
        corrupted.mark_closed(True)
    return corrupted


def corrupt_frequency_constraints(pcset: PredicateConstraintSet,
                                  noise_std_fraction: float,
                                  rng: np.random.Generator | None = None
                                  ) -> PredicateConstraintSet:
    """Add multiplicative noise to every frequency constraint's upper bound.

    Used by robustness ablations: an under-estimated frequency bound can
    also cause failures, independently of value-range noise.
    """
    if noise_std_fraction < 0:
        raise WorkloadError("noise_std_fraction must be non-negative")
    generator = rng if rng is not None else np.random.default_rng()

    def corrupt(constraint: PredicateConstraint) -> PredicateConstraint:
        factor = max(0.0, 1.0 + float(generator.normal(0.0, noise_std_fraction)))
        return PredicateConstraint(constraint.predicate, constraint.values,
                                   constraint.frequency.scaled(factor),
                                   name=constraint.name)

    corrupted = pcset.map_constraints(corrupt)
    if pcset.is_pairwise_disjoint():
        corrupted.mark_disjoint(True)
    if pcset.is_closed():
        corrupted.mark_closed(True)
    return corrupted
