"""Workload generators: random queries, missing-data scenarios, noisy PCs."""

from .missing import MissingDataScenario, remove_correlated, remove_random, remove_region
from .noise import corrupt_frequency_constraints, corrupt_value_constraints
from .queries import QueryWorkloadSpec, generate_query_workload, random_region

__all__ = [
    "MissingDataScenario",
    "remove_correlated",
    "remove_random",
    "remove_region",
    "corrupt_frequency_constraints",
    "corrupt_value_constraints",
    "QueryWorkloadSpec",
    "generate_query_workload",
    "random_region",
]
