"""Random query workloads (paper §6: "1000 randomly chosen predicates").

The experiments evaluate each estimator on large batches of randomly
generated aggregate queries whose WHERE clauses are random ranges over the
dataset's predicate attributes.  This module generates those workloads
deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.engine import ContingencyQuery
from ..core.predicates import Predicate
from ..exceptions import WorkloadError
from ..relational.aggregates import AggregateFunction
from ..relational.relation import Relation

__all__ = ["QueryWorkloadSpec", "random_region", "generate_query_workload"]


@dataclass(frozen=True)
class QueryWorkloadSpec:
    """Description of a random query workload.

    Attributes
    ----------
    aggregate:
        The aggregate of every query in the workload.
    attribute:
        The aggregated attribute (``None`` for COUNT(*)).
    predicate_attributes:
        The attributes random WHERE ranges are drawn over.
    num_queries:
        Workload size (the paper uses 1000).
    min_selectivity / max_selectivity:
        The width of each random range as a fraction of the attribute's
        observed span.
    """

    aggregate: AggregateFunction
    attribute: str | None
    predicate_attributes: tuple[str, ...]
    num_queries: int = 1000
    min_selectivity: float = 0.05
    max_selectivity: float = 0.4

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise WorkloadError("num_queries must be positive")
        if not 0.0 < self.min_selectivity <= self.max_selectivity <= 1.0:
            raise WorkloadError(
                "selectivities must satisfy 0 < min <= max <= 1, got "
                f"({self.min_selectivity}, {self.max_selectivity})"
            )


def random_region(relation: Relation, attributes: Sequence[str],
                  rng: np.random.Generator,
                  min_selectivity: float = 0.05,
                  max_selectivity: float = 0.4) -> Predicate:
    """A random box predicate over ``attributes`` of ``relation``.

    Each attribute gets a random sub-range whose width is a random fraction
    (between the two selectivities) of the attribute's observed span.
    """
    if not attributes:
        raise WorkloadError("random_region needs at least one attribute")
    predicate = Predicate.true()
    for attribute in attributes:
        low, high = relation.column_range(attribute)
        if high == low:
            high = low + 1.0
        span = high - low
        width = span * float(rng.uniform(min_selectivity, max_selectivity))
        start = low + float(rng.uniform(0.0, max(span - width, 1e-12)))
        predicate = predicate.with_range(attribute, start, start + width)
    return predicate


def generate_query_workload(relation: Relation, spec: QueryWorkloadSpec,
                            seed: int | None = 23) -> list[ContingencyQuery]:
    """Generate ``spec.num_queries`` random queries against ``relation``."""
    rng = np.random.default_rng(seed)
    queries: list[ContingencyQuery] = []
    for _ in range(spec.num_queries):
        region = random_region(relation, spec.predicate_attributes, rng,
                               spec.min_selectivity, spec.max_selectivity)
        queries.append(ContingencyQuery(spec.aggregate, spec.attribute, region))
    return queries
