"""Missing-data scenario generators (paper §6.2).

The paper removes rows from each dataset *in a correlated way* — e.g. the
rows with the highest ``light`` values go missing — precisely because that
is the regime where extrapolation and sampling-based estimates break down.
This module produces (observed, missing) splits under several missingness
mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.predicates import Predicate
from ..exceptions import WorkloadError
from ..relational.relation import Relation

__all__ = ["MissingDataScenario", "remove_correlated", "remove_random",
           "remove_region"]


@dataclass(frozen=True)
class MissingDataScenario:
    """An (observed, missing) split of a relation plus its provenance."""

    observed: Relation
    missing: Relation
    mechanism: str
    fraction: float

    @property
    def total_rows(self) -> int:
        return self.observed.num_rows + self.missing.num_rows

    @property
    def actual_fraction(self) -> float:
        total = self.total_rows
        return self.missing.num_rows / total if total else 0.0


def remove_correlated(relation: Relation, fraction: float, attribute: str,
                      highest: bool = True) -> MissingDataScenario:
    """Remove the top (or bottom) ``fraction`` of rows ranked by ``attribute``.

    This is the paper's correlated-missingness mechanism: the missing rows
    systematically carry extreme values of the aggregate, which is what
    makes extrapolation from the observed rows misleading.
    """
    _validate_fraction(fraction)
    if relation.num_rows == 0:
        raise WorkloadError("cannot build a missing-data scenario from an empty relation")
    count_missing = int(round(relation.num_rows * fraction))
    count_missing = min(max(count_missing, 0), relation.num_rows)
    ordered = relation.sort_by(attribute, descending=highest)
    missing = ordered.head(count_missing)
    observed = ordered.take(np.arange(count_missing, ordered.num_rows))
    direction = "highest" if highest else "lowest"
    return MissingDataScenario(observed, missing,
                               mechanism=f"correlated-{direction}-{attribute}",
                               fraction=fraction)


def remove_random(relation: Relation, fraction: float,
                  rng: np.random.Generator | None = None) -> MissingDataScenario:
    """Remove a uniformly random ``fraction`` of rows (the benign mechanism)."""
    _validate_fraction(fraction)
    generator = rng if rng is not None else np.random.default_rng()
    count_missing = int(round(relation.num_rows * fraction))
    permutation = generator.permutation(relation.num_rows)
    missing = relation.take(permutation[:count_missing])
    observed = relation.take(permutation[count_missing:])
    return MissingDataScenario(observed, missing, mechanism="random",
                               fraction=fraction)


def remove_region(relation: Relation, region: Predicate) -> MissingDataScenario:
    """Remove every row inside ``region`` (e.g. "the New York branch outage")."""
    mask = region.to_expression().evaluate(relation)
    missing = relation.filter(mask)
    observed = relation.filter(~mask)
    fraction = missing.num_rows / relation.num_rows if relation.num_rows else 0.0
    return MissingDataScenario(observed, missing, mechanism="region",
                               fraction=fraction)


def _validate_fraction(fraction: float) -> None:
    if not 0.0 <= fraction <= 1.0:
        raise WorkloadError(f"fraction must lie in [0, 1], got {fraction}")
