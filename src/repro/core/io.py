"""Serialisation and parsing of predicate-constraint sets.

The paper argues that predicate-constraints should be treated like analysis
code: "checked, versioned, and tested".  That requires a durable, diff-able
representation.  This module provides two:

* a JSON document format (:func:`pcset_to_dict` / :func:`pcset_from_dict`,
  plus file helpers) that round-trips every feature of the library, and
* a compact one-line-per-constraint text syntax mirroring the paper's own
  notation, e.g.::

      branch = 'Chicago' AND 0 <= utc <= 24 => 0.0 <= price <= 149.99, (0, 5)

  parsed by :func:`parse_constraint` / :func:`parse_constraints`.

The text syntax intentionally covers only the predicate language of §3.1
(conjunctions of ranges and equalities); anything richer should use JSON.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable, Mapping

from ..exceptions import ConstraintError, PredicateError
from ..solvers.sat import AttributeDomain
from .constraints import FrequencyConstraint, PredicateConstraint, ValueConstraint
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = [
    "predicate_to_dict",
    "predicate_from_dict",
    "constraint_to_dict",
    "constraint_from_dict",
    "pcset_to_dict",
    "pcset_from_dict",
    "save_pcset",
    "load_pcset",
    "parse_constraint",
    "parse_constraints",
]

_INF = float("inf")


# --------------------------------------------------------------------- #
# JSON document format
# --------------------------------------------------------------------- #
def _encode_bound(value: float) -> float | str:
    if value == _INF:
        return "inf"
    if value == -_INF:
        return "-inf"
    return float(value)


def _decode_bound(value: float | str) -> float:
    if value == "inf":
        return _INF
    if value == "-inf":
        return -_INF
    return float(value)


def predicate_to_dict(predicate: Predicate) -> dict:
    """JSON-serialisable representation of a box predicate."""
    return {
        "ranges": {
            attribute: {
                "low": _encode_bound(constraint.low),
                "high": _encode_bound(constraint.high),
                "integral": constraint.integral,
            }
            for attribute, constraint in predicate.ranges.items()
        },
        "memberships": {
            attribute: sorted(constraint.values, key=repr)
            for attribute, constraint in predicate.memberships.items()
        },
    }


def predicate_from_dict(payload: Mapping) -> Predicate:
    """Inverse of :func:`predicate_to_dict`."""
    predicate = Predicate.true()
    for attribute, entry in payload.get("ranges", {}).items():
        predicate = predicate.with_range(
            attribute, _decode_bound(entry.get("low", "-inf")),
            _decode_bound(entry.get("high", "inf")),
            bool(entry.get("integral", False)))
    for attribute, values in payload.get("memberships", {}).items():
        predicate = predicate.with_membership(attribute, values)
    return predicate


def constraint_to_dict(constraint: PredicateConstraint) -> dict:
    """JSON-serialisable representation of one predicate-constraint."""
    return {
        "name": constraint.name,
        "predicate": predicate_to_dict(constraint.predicate),
        "values": {
            attribute: [_encode_bound(low), _encode_bound(high)]
            for attribute, (low, high) in constraint.values.bounds.items()
        },
        "frequency": [constraint.frequency.lower, constraint.frequency.upper],
    }


def constraint_from_dict(payload: Mapping) -> PredicateConstraint:
    """Inverse of :func:`constraint_to_dict`."""
    try:
        frequency_low, frequency_high = payload["frequency"]
    except (KeyError, ValueError, TypeError) as exc:
        raise ConstraintError(f"malformed frequency entry in {payload!r}") from exc
    values = {
        attribute: (_decode_bound(low), _decode_bound(high))
        for attribute, (low, high) in payload.get("values", {}).items()
    }
    return PredicateConstraint(
        predicate_from_dict(payload.get("predicate", {})),
        ValueConstraint(values),
        FrequencyConstraint(int(frequency_low), int(frequency_high)),
        name=str(payload.get("name", "pc")),
    )


def _domain_to_dict(domain: AttributeDomain) -> dict:
    if domain.is_numeric:
        interval = domain.interval
        return {"kind": "numeric", "low": _encode_bound(interval.low),
                "high": _encode_bound(interval.high),
                "integral": interval.integral}
    return {"kind": "categorical",
            "values": sorted(domain.categories.values, key=repr)}


def _domain_from_dict(payload: Mapping) -> AttributeDomain:
    if payload.get("kind") == "categorical":
        return AttributeDomain.categorical(payload.get("values", []))
    return AttributeDomain.numeric(
        _decode_bound(payload.get("low", "-inf")),
        _decode_bound(payload.get("high", "inf")),
        bool(payload.get("integral", False)))


def pcset_to_dict(pcset: PredicateConstraintSet) -> dict:
    """JSON-serialisable representation of a whole constraint set."""
    return {
        "format": "repro.predicate-constraints",
        "version": 1,
        "constraints": [constraint_to_dict(constraint) for constraint in pcset],
        "domains": {attribute: _domain_to_dict(domain)
                    for attribute, domain in pcset.domains.items()},
        "hints": {
            "disjoint": pcset.is_pairwise_disjoint() if len(pcset) <= 64 else None,
        },
    }


def pcset_from_dict(payload: Mapping) -> PredicateConstraintSet:
    """Inverse of :func:`pcset_to_dict`."""
    domains = {attribute: _domain_from_dict(entry)
               for attribute, entry in payload.get("domains", {}).items()}
    pcset = PredicateConstraintSet(domains=domains)
    for entry in payload.get("constraints", []):
        pcset.add(constraint_from_dict(entry))
    hints = payload.get("hints", {})
    if hints.get("disjoint") is True:
        pcset.mark_disjoint(True)
    return pcset


def save_pcset(pcset: PredicateConstraintSet, path: str | Path) -> Path:
    """Write a constraint set to a JSON file."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(pcset_to_dict(pcset), indent=2, sort_keys=True))
    return target


def load_pcset(path: str | Path) -> PredicateConstraintSet:
    """Read a constraint set previously written by :func:`save_pcset`."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro.predicate-constraints":
        raise ConstraintError(
            f"{path} is not a predicate-constraint document "
            f"(format={payload.get('format')!r})")
    return pcset_from_dict(payload)


# --------------------------------------------------------------------- #
# One-line text syntax
# --------------------------------------------------------------------- #
_RANGE_PATTERN = re.compile(
    r"^\s*(?P<low>[-+0-9.eE]+|-inf)\s*<=\s*(?P<attr>\w+)\s*<=\s*(?P<high>[-+0-9.eE]+|inf)\s*$")
_EQUALITY_PATTERN = re.compile(
    r"^\s*(?P<attr>\w+)\s*=\s*(?P<value>'[^']*'|\"[^\"]*\"|[-+0-9.eE]+)\s*$")
_MEMBERSHIP_PATTERN = re.compile(
    r"^\s*(?P<attr>\w+)\s+IN\s+\((?P<values>[^)]*)\)\s*$", re.IGNORECASE)
_FREQUENCY_PATTERN = re.compile(
    r"^\s*\(\s*(?P<low>\d+)\s*,\s*(?P<high>\d+)\s*\)\s*$")


def _parse_literal(text: str):
    text = text.strip()
    if (text.startswith("'") and text.endswith("'")) or \
            (text.startswith('"') and text.endswith('"')):
        return text[1:-1]
    return float(text)


def _parse_conjunct_into_predicate(predicate: Predicate, conjunct: str) -> Predicate:
    range_match = _RANGE_PATTERN.match(conjunct)
    if range_match:
        low = -_INF if range_match.group("low") == "-inf" else float(range_match.group("low"))
        high = _INF if range_match.group("high") == "inf" else float(range_match.group("high"))
        return predicate.with_range(range_match.group("attr"), low, high)
    membership_match = _MEMBERSHIP_PATTERN.match(conjunct)
    if membership_match:
        values = [_parse_literal(piece)
                  for piece in membership_match.group("values").split(",") if piece.strip()]
        return predicate.with_membership(membership_match.group("attr"), values)
    equality_match = _EQUALITY_PATTERN.match(conjunct)
    if equality_match:
        value = _parse_literal(equality_match.group("value"))
        attribute = equality_match.group("attr")
        if isinstance(value, float):
            return predicate.with_range(attribute, value, value)
        return predicate.with_equals(attribute, value)
    raise PredicateError(f"cannot parse predicate conjunct {conjunct!r}")


def _parse_predicate(text: str) -> Predicate:
    text = text.strip()
    if not text or text.upper() == "TRUE":
        return Predicate.true()
    predicate = Predicate.true()
    for conjunct in re.split(r"\bAND\b", text, flags=re.IGNORECASE):
        predicate = _parse_conjunct_into_predicate(predicate, conjunct)
    return predicate


def _parse_value_constraints(text: str) -> ValueConstraint:
    text = text.strip()
    if not text or text.upper() == "TRUE":
        return ValueConstraint()
    bounds: dict[str, tuple[float, float]] = {}
    for conjunct in re.split(r"\bAND\b", text, flags=re.IGNORECASE):
        range_match = _RANGE_PATTERN.match(conjunct)
        if not range_match:
            raise ConstraintError(
                f"value constraints must be ranges like '0 <= price <= 10', "
                f"got {conjunct!r}")
        low = -_INF if range_match.group("low") == "-inf" else float(range_match.group("low"))
        high = _INF if range_match.group("high") == "inf" else float(range_match.group("high"))
        bounds[range_match.group("attr")] = (low, high)
    return ValueConstraint(bounds)


def parse_constraint(text: str, name: str | None = None) -> PredicateConstraint:
    """Parse one constraint written in the paper's arrow notation.

    Syntax::

        <predicate> => <value constraints>, (<min rows>, <max rows>)

    where both the predicate and the value constraints are ``AND``-separated
    conjunctions of ``low <= attr <= high``, ``attr = literal`` or
    ``attr IN (v1, v2, ...)`` terms, and ``TRUE`` denotes the tautology.
    """
    if "=>" not in text:
        raise ConstraintError(f"constraint {text!r} is missing '=>'")
    predicate_text, remainder = text.split("=>", 1)
    frequency_match = re.search(r"\(\s*\d+\s*,\s*\d+\s*\)\s*$", remainder)
    if not frequency_match:
        raise ConstraintError(
            f"constraint {text!r} is missing a trailing frequency '(lo, hi)'")
    frequency_text = frequency_match.group(0)
    values_text = remainder[: frequency_match.start()].rstrip().rstrip(",")
    frequency_parts = _FREQUENCY_PATTERN.match(frequency_text)
    assert frequency_parts is not None
    return PredicateConstraint(
        _parse_predicate(predicate_text),
        _parse_value_constraints(values_text),
        FrequencyConstraint(int(frequency_parts.group("low")),
                            int(frequency_parts.group("high"))),
        name=name or f"pc_{abs(hash(text)) % 10_000}",
    )


def parse_constraints(lines: Iterable[str],
                      domains: Mapping[str, AttributeDomain] | None = None
                      ) -> PredicateConstraintSet:
    """Parse several constraints (one per non-empty, non-comment line)."""
    pcset = PredicateConstraintSet(domains=domains)
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        pcset.add(parse_constraint(stripped, name=f"pc_{index}"))
    return pcset
