"""Box predicates: the predicate language of predicate-constraints.

The paper restricts predicates to *conjunctions of ranges and equalities*
(§3.1) so that satisfiability testing during cell decomposition stays
tractable.  A :class:`Predicate` is therefore an axis-aligned box over a
mixed numeric/categorical attribute space:

* numeric attributes are constrained to closed intervals
  (``low <= a <= high``), optionally integral;
* categorical attributes are constrained to finite value sets
  (``a = 'Chicago'`` or ``a IN {...}``).

Predicates compile both to :class:`repro.solvers.sat.Box` (for the cell
decomposition's satisfiability checks) and to
:class:`repro.relational.expressions.Expression` (for exact evaluation
against relations when validating constraints or computing ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from ..exceptions import PredicateError
from ..relational.expressions import (
    Between,
    Expression,
    IsIn,
    TrueExpression,
    conjunction,
)
from ..solvers.sat import Box, CategoricalSet, Interval

__all__ = ["AttributeRange", "AttributeMembership", "Predicate"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(frozen=True)
class AttributeRange:
    """A closed numeric range constraint on one attribute."""

    attribute: str
    low: float = _NEG_INF
    high: float = _POS_INF
    integral: bool = False

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise PredicateError(
                f"range on {self.attribute!r} has low {self.low} > high {self.high}"
            )

    def to_interval(self) -> Interval:
        return Interval(self.low, self.high, self.integral)

    def contains(self, value: float) -> bool:
        return self.to_interval().contains(value)

    def intersect(self, other: "AttributeRange") -> "AttributeRange":
        if other.attribute != self.attribute:
            raise PredicateError(
                f"cannot intersect ranges on different attributes "
                f"({self.attribute!r} vs {other.attribute!r})"
            )
        low = max(self.low, other.low)
        high = min(self.high, other.high)
        if low > high:
            raise PredicateError(
                f"intersection of ranges on {self.attribute!r} is empty"
            )
        return AttributeRange(self.attribute, low, high,
                              self.integral or other.integral)


@dataclass(frozen=True)
class AttributeMembership:
    """A finite-set membership constraint on one (categorical) attribute."""

    attribute: str
    values: frozenset

    def __post_init__(self) -> None:
        if not self.values:
            raise PredicateError(
                f"membership constraint on {self.attribute!r} must list at least "
                "one value"
            )

    @classmethod
    def of(cls, attribute: str, values: Iterable) -> "AttributeMembership":
        return cls(attribute, frozenset(values))

    def to_set(self) -> CategoricalSet:
        return CategoricalSet(self.values)

    def contains(self, value) -> bool:
        return value in self.values

    def intersect(self, other: "AttributeMembership") -> "AttributeMembership":
        if other.attribute != self.attribute:
            raise PredicateError(
                f"cannot intersect memberships on different attributes "
                f"({self.attribute!r} vs {other.attribute!r})"
            )
        shared = self.values & other.values
        if not shared:
            raise PredicateError(
                f"intersection of membership sets on {self.attribute!r} is empty"
            )
        return AttributeMembership(self.attribute, shared)


class Predicate:
    """A conjunction of per-attribute range/membership constraints.

    The empty conjunction is the tautology ``TRUE`` (matches every row),
    mirroring the paper's ``TRUE => ...`` predicate-constraints.

    Instances are immutable; the fluent builders (:meth:`with_range`,
    :meth:`with_equals`, :meth:`with_membership`) return new predicates with
    the additional conjunct merged in (taking the intersection when the
    attribute is already constrained).
    """

    def __init__(self,
                 ranges: Mapping[str, AttributeRange] | None = None,
                 memberships: Mapping[str, AttributeMembership] | None = None):
        self._ranges: dict[str, AttributeRange] = dict(ranges or {})
        self._memberships: dict[str, AttributeMembership] = dict(memberships or {})
        overlap = set(self._ranges) & set(self._memberships)
        if overlap:
            raise PredicateError(
                f"attributes {sorted(overlap)} have both range and membership "
                "constraints; an attribute is either numeric or categorical"
            )

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def true(cls) -> "Predicate":
        """The tautology predicate (matches every possible row)."""
        return cls()

    @classmethod
    def range(cls, attribute: str, low: float = _NEG_INF, high: float = _POS_INF,
              integral: bool = False) -> "Predicate":
        """``low <= attribute <= high``."""
        return cls({attribute: AttributeRange(attribute, low, high, integral)})

    @classmethod
    def equals(cls, attribute: str, value) -> "Predicate":
        """``attribute = value`` (categorical equality)."""
        return cls(memberships={attribute: AttributeMembership.of(attribute, [value])})

    @classmethod
    def isin(cls, attribute: str, values: Iterable) -> "Predicate":
        """``attribute IN (values...)``."""
        return cls(memberships={attribute: AttributeMembership.of(attribute, values)})

    @classmethod
    def box(cls, ranges: Mapping[str, tuple[float, float]],
            memberships: Mapping[str, Iterable] | None = None) -> "Predicate":
        """Build a predicate from plain ``{attr: (low, high)}`` mappings."""
        range_constraints = {
            attribute: AttributeRange(attribute, low, high)
            for attribute, (low, high) in ranges.items()
        }
        membership_constraints = {
            attribute: AttributeMembership.of(attribute, values)
            for attribute, values in (memberships or {}).items()
        }
        return cls(range_constraints, membership_constraints)

    # ------------------------------------------------------------------ #
    # Fluent builders
    # ------------------------------------------------------------------ #
    def with_range(self, attribute: str, low: float = _NEG_INF,
                   high: float = _POS_INF, integral: bool = False) -> "Predicate":
        """Return this predicate with an extra range conjunct."""
        addition = AttributeRange(attribute, low, high, integral)
        ranges = dict(self._ranges)
        if attribute in ranges:
            ranges[attribute] = ranges[attribute].intersect(addition)
        else:
            ranges[attribute] = addition
        return Predicate(ranges, self._memberships)

    def with_equals(self, attribute: str, value) -> "Predicate":
        """Return this predicate with an extra equality conjunct."""
        return self.with_membership(attribute, [value])

    def with_membership(self, attribute: str, values: Iterable) -> "Predicate":
        """Return this predicate with an extra membership conjunct."""
        addition = AttributeMembership.of(attribute, values)
        memberships = dict(self._memberships)
        if attribute in memberships:
            memberships[attribute] = memberships[attribute].intersect(addition)
        else:
            memberships[attribute] = addition
        return Predicate(self._ranges, memberships)

    def conjoin(self, other: "Predicate") -> "Predicate":
        """The conjunction of two predicates.

        Raises
        ------
        PredicateError
            If the conjunction is syntactically empty (disjoint ranges or
            membership sets on a shared attribute).
        """
        result = self
        for attribute, constraint in other._ranges.items():
            result = result.with_range(attribute, constraint.low, constraint.high,
                                       constraint.integral)
        for attribute, constraint in other._memberships.items():
            result = result.with_membership(attribute, constraint.values)
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def ranges(self) -> dict[str, AttributeRange]:
        return dict(self._ranges)

    @property
    def memberships(self) -> dict[str, AttributeMembership]:
        return dict(self._memberships)

    def attributes(self) -> set[str]:
        return set(self._ranges) | set(self._memberships)

    def is_tautology(self) -> bool:
        return not self._ranges and not self._memberships

    def range_for(self, attribute: str) -> AttributeRange | None:
        return self._ranges.get(attribute)

    def membership_for(self, attribute: str) -> AttributeMembership | None:
        return self._memberships.get(attribute)

    # ------------------------------------------------------------------ #
    # Compilation targets
    # ------------------------------------------------------------------ #
    def to_box(self) -> Box:
        """Compile to the SAT solver's box representation."""
        constraints: dict[str, Interval | CategoricalSet] = {}
        for attribute, constraint in self._ranges.items():
            constraints[attribute] = constraint.to_interval()
        for attribute, constraint in self._memberships.items():
            constraints[attribute] = constraint.to_set()
        return Box(constraints)

    def to_expression(self) -> Expression:
        """Compile to a relational WHERE-clause expression."""
        conjuncts: list[Expression] = []
        for attribute, constraint in sorted(self._ranges.items()):
            conjuncts.append(Between(attribute, constraint.low, constraint.high))
        for attribute, constraint in sorted(self._memberships.items()):
            conjuncts.append(IsIn(attribute, constraint.values))
        if not conjuncts:
            return TrueExpression()
        return conjunction(conjuncts)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #
    def matches_row(self, row: Mapping[str, object]) -> bool:
        """Whether a concrete row satisfies the predicate."""
        for attribute, constraint in self._ranges.items():
            if attribute not in row or not constraint.contains(row[attribute]):
                return False
        for attribute, constraint in self._memberships.items():
            if attribute not in row or not constraint.contains(row[attribute]):
                return False
        return True

    def overlaps(self, other: "Predicate") -> bool:
        """Syntactic overlap test: whether the two boxes intersect.

        Exact for box predicates (the only kind the framework supports).
        """
        return not self.to_box().intersect(other.to_box()).is_empty()

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Predicate):
            return NotImplemented
        return self._ranges == other._ranges and self._memberships == other._memberships

    def __hash__(self) -> int:
        return hash((frozenset(self._ranges.items()),
                     frozenset(self._memberships.items())))

    def __repr__(self) -> str:
        if self.is_tautology():
            return "Predicate(TRUE)"
        parts: list[str] = []
        for attribute, constraint in sorted(self._ranges.items()):
            parts.append(f"{constraint.low} <= {attribute} <= {constraint.high}")
        for attribute, constraint in sorted(self._memberships.items()):
            rendered = ", ".join(repr(v) for v in sorted(constraint.values, key=repr))
            parts.append(f"{attribute} IN {{{rendered}}}")
        return "Predicate(" + " AND ".join(parts) + ")"
