"""Result ranges for aggregates over the missing partition (paper §4).

Given a predicate-constraint set and a query, :class:`PCBoundSolver` computes
the *result range* — the tightest ``[lower, upper]`` interval containing the
aggregate's value over every relation instance that satisfies the
constraints.  The computation follows the paper:

* decompose the (possibly overlapping) predicates into satisfiable cells,
* pose the allocation problem of §4.2 as a mixed-integer linear program
  (rows allocated per cell, frequency constraints per predicate-constraint),
* read SUM/COUNT bounds straight off the optimum, binary-search AVG bounds,
  and take cell-wise extrema for MIN/MAX.

One deviation from the paper's informal description is documented here
because it matters for soundness: when a query predicate is pushed down and
some predicate-constraint forces rows to exist (``kl > 0``), those rows may
legitimately live *outside* the query region.  We therefore add a
zero-objective slack allocation per such constraint instead of forcing the
mandatory rows into query-relevant cells, which keeps both bound directions
sound (the feasible region is a superset of the true one).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import Callable

from ..exceptions import SolverError
from ..relational.aggregates import AggregateFunction
from ..solvers.lp import SolutionStatus, Sense
from ..solvers.milp import MILPBackend, MILPModel, solve_milp
from .cells import (
    CellDecomposition,
    DecompositionStatistics,
    DecompositionStrategy,
    decompose_cached,
)
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = ["ResultRange", "PCBoundSolver", "BoundOptions", "BoundExplanation",
           "CellAllocation"]

_INF = float("inf")


@dataclass(frozen=True)
class ResultRange:
    """A deterministic result range ``[lower, upper]`` for an aggregate.

    ``None`` endpoints mean the value is undefined rather than unbounded:
    e.g. the MAX over a partition that may contain no rows has no guaranteed
    lower endpoint.  Unbounded endpoints are ``float('inf')`` /
    ``float('-inf')``.
    """

    lower: float | None
    upper: float | None
    aggregate: AggregateFunction | None = None
    attribute: str | None = None
    closed: bool = True
    statistics: DecompositionStatistics | None = None

    def contains(self, value: float | None) -> bool:
        """Whether ``value`` falls inside the range (used to score failures)."""
        if value is None:
            return True
        if self.lower is not None and value < self.lower - 1e-9:
            return False
        if self.upper is not None and value > self.upper + 1e-9:
            return False
        return True

    @property
    def width(self) -> float:
        """Upper minus lower (``inf`` when either side is unbounded/undefined)."""
        if self.lower is None or self.upper is None:
            return _INF
        return self.upper - self.lower

    @property
    def is_bounded(self) -> bool:
        return (self.lower is not None and self.upper is not None
                and math.isfinite(self.lower) and math.isfinite(self.upper))

    def over_estimation_rate(self, truth: float) -> float:
        """The paper's tightness metric: ``upper / truth`` (∞ if unbounded)."""
        if self.upper is None or not math.isfinite(self.upper):
            return _INF
        if truth == 0:
            return _INF if self.upper > 0 else 1.0
        return self.upper / truth

    def shifted(self, offset: float) -> "ResultRange":
        """Translate both endpoints by ``offset`` (used to add observed data)."""
        return ResultRange(
            lower=None if self.lower is None else self.lower + offset,
            upper=None if self.upper is None else self.upper + offset,
            aggregate=self.aggregate,
            attribute=self.attribute,
            closed=self.closed,
            statistics=self.statistics,
        )

    def __str__(self) -> str:
        label = self.aggregate.value if self.aggregate else "range"
        return f"{label}[{self.lower}, {self.upper}]"


@dataclass
class BoundOptions:
    """Tuning knobs for :class:`PCBoundSolver`."""

    strategy: DecompositionStrategy = DecompositionStrategy.DFS_REWRITE
    milp_backend: str = MILPBackend.SCIPY
    early_stop_depth: int | None = None
    check_closure: bool = True
    avg_tolerance: float = 1e-6
    avg_max_iterations: int = 64


@dataclass
class _CellProfile:
    """Per-cell data extracted from the covering constraints."""

    index: int
    covering: frozenset[int]
    capacity: int
    value_upper: float
    value_lower: float


@dataclass(frozen=True)
class CellAllocation:
    """One cell's share of the worst-case allocation behind a bound."""

    covering_constraints: tuple[str, ...]
    rows_allocated: float
    per_row_value: float

    @property
    def contribution(self) -> float:
        return self.rows_allocated * self.per_row_value


@dataclass(frozen=True)
class BoundExplanation:
    """Why a bound takes the value it does (the optimal MILP allocation).

    ``allocations`` lists every cell that received rows in the worst-case
    instance together with its per-row value; ``saturated_constraints`` names
    the predicate-constraints whose frequency upper bound is fully used —
    tightening any of those is what would tighten the bound.
    """

    aggregate: AggregateFunction
    attribute: str | None
    bound: float
    allocations: tuple[CellAllocation, ...]
    saturated_constraints: tuple[str, ...]

    def summary(self) -> str:
        lines = [f"{self.aggregate.value} upper bound = {self.bound}"]
        for allocation in self.allocations:
            lines.append(
                f"  {allocation.rows_allocated:.0f} rows x {allocation.per_row_value} "
                f"in cell covered by {', '.join(allocation.covering_constraints)}")
        if self.saturated_constraints:
            lines.append("  saturated frequency constraints: "
                         + ", ".join(self.saturated_constraints))
        return "\n".join(lines)


class PCBoundSolver:
    """Computes result ranges for one predicate-constraint set.

    Parameters
    ----------
    pcset, options:
        The constraint set and tuning knobs.
    decomposition_cache:
        Optional shared cache (any object with ``get_or_compute(key,
        factory)``, e.g. :class:`repro.service.LRUCache`).  When given,
        decompositions are stored there under a content-derived namespace so
        equal constraint sets share work across solvers and threads; when
        omitted, the solver keeps a private per-instance dict exactly as
        before (single-threaded use).
    cache_namespace:
        Overrides the namespace used inside a shared cache.  Defaults to a
        structural key derived from the constraint set's content and the
        decomposition knobs (see ``cells._structural_namespace``), which is
        always sound; the service layer passes its fingerprint-based
        namespace instead.
    """

    def __init__(self, pcset: PredicateConstraintSet,
                 options: BoundOptions | None = None,
                 decomposition_cache=None,
                 cache_namespace: object = None):
        self._pcset = pcset
        self._options = options or BoundOptions()
        self._shared_cache = decomposition_cache
        self._cache_namespace = cache_namespace
        self._decomposition_cache: dict[object, CellDecomposition] = {}
        self._decompositions_computed = 0
        self._decomposition_solver_calls = 0
        self._counter_lock = threading.Lock()

    @property
    def pcset(self) -> PredicateConstraintSet:
        return self._pcset

    @property
    def options(self) -> BoundOptions:
        return self._options

    @property
    def decompositions_computed(self) -> int:
        """How many decompositions this solver actually ran (cache misses)."""
        return self._decompositions_computed

    @property
    def decomposition_solver_calls(self) -> int:
        """Cumulative satisfiability-solver calls across fresh decompositions.

        Cache hits (shared or private) leave this counter untouched — it is
        the observable the service's acceptance tests pin down: answering a
        repeated query must not move it.
        """
        return self._decomposition_solver_calls

    # ------------------------------------------------------------------ #
    # Public bound API
    # ------------------------------------------------------------------ #
    def bound(self, aggregate: AggregateFunction, attribute: str | None = None,
              region: Predicate | None = None,
              known_sum: float = 0.0, known_count: float = 0.0) -> ResultRange:
        """The result range of ``aggregate(attribute)`` over the missing rows.

        ``known_sum`` / ``known_count`` describe the observed partition and
        are only used by AVG (whose bound depends jointly on both).
        """
        if aggregate.needs_attribute and attribute is None:
            raise SolverError(f"{aggregate.value} bounds require an attribute")
        closed = self._is_closed(region)
        if aggregate is AggregateFunction.COUNT:
            result = self._bound_count(region)
        elif aggregate is AggregateFunction.SUM:
            result = self._bound_sum(attribute, region)
        elif aggregate is AggregateFunction.AVG:
            result = self._bound_avg(attribute, region, known_sum, known_count)
        elif aggregate is AggregateFunction.MAX:
            result = self._bound_max(attribute, region)
        elif aggregate is AggregateFunction.MIN:
            result = self._bound_min(attribute, region)
        else:  # pragma: no cover - enum is exhaustive
            raise SolverError(f"unsupported aggregate {aggregate!r}")
        if not closed:
            result = self._widen_for_open_world(result, aggregate)
        return result

    def explain(self, aggregate: AggregateFunction, attribute: str | None = None,
                region: Predicate | None = None) -> BoundExplanation:
        """Explain the *upper* bound of a COUNT or SUM query.

        Returns the optimal worst-case allocation (how many rows are placed
        in which cell, at what per-row value) and the predicate-constraints
        whose frequency capacity that allocation exhausts.  Only COUNT and
        SUM are supported — their bounds come directly from one MILP solve.
        """
        if aggregate not in (AggregateFunction.COUNT, AggregateFunction.SUM):
            raise SolverError("explain() supports COUNT and SUM bounds only")
        if aggregate is AggregateFunction.SUM and attribute is None:
            raise SolverError("SUM explanations require an attribute")
        decomposition = self._decompose(region)
        profiles = self._profiles(decomposition, attribute, region)
        if not profiles:
            return BoundExplanation(aggregate, attribute, 0.0, (), ())
        coefficients = {
            profile.index: (1.0 if aggregate is AggregateFunction.COUNT
                            else profile.value_upper)
            for profile in profiles
        }
        model = self._build_model(profiles, coefficients, region, Sense.MAXIMIZE)
        backend = self._options.milp_backend
        if model.is_pure_box_problem():
            backend = MILPBackend.GREEDY
        solution = solve_milp(model, backend=backend).raise_for_status()
        assert solution.objective is not None

        allocations = []
        allocated_per_constraint = {index: 0.0 for index in range(len(self._pcset))}
        for profile in profiles:
            rows = solution.values.get(f"x{profile.index}", 0.0)
            if rows <= 0:
                continue
            names = tuple(self._pcset[i].name for i in sorted(profile.covering))
            allocations.append(CellAllocation(names, rows,
                                              coefficients[profile.index]))
            for constraint_index in profile.covering:
                allocated_per_constraint[constraint_index] += rows
        saturated = tuple(
            self._pcset[index].name
            for index, allocated in allocated_per_constraint.items()
            if allocated >= self._pcset[index].max_rows() - 1e-9
            and self._pcset[index].max_rows() > 0)
        return BoundExplanation(aggregate, attribute, solution.objective,
                                tuple(allocations), saturated)

    # ------------------------------------------------------------------ #
    # Closure handling
    # ------------------------------------------------------------------ #
    def _is_closed(self, region: Predicate | None) -> bool:
        if not self._options.check_closure:
            return True
        return self._pcset.is_closed(region)

    @staticmethod
    def _widen_for_open_world(result: ResultRange,
                              aggregate: AggregateFunction) -> ResultRange:
        """Without closure nothing constrains uncovered rows: bounds blow up."""
        lower: float | None
        upper: float | None
        if aggregate is AggregateFunction.COUNT:
            lower, upper = result.lower, _INF
        elif aggregate in (AggregateFunction.SUM, AggregateFunction.AVG):
            lower, upper = -_INF, _INF
        elif aggregate is AggregateFunction.MAX:
            lower, upper = result.lower, _INF
        else:
            lower, upper = -_INF, result.upper
        return ResultRange(lower, upper, result.aggregate, result.attribute,
                           closed=False, statistics=result.statistics)

    # ------------------------------------------------------------------ #
    # Decomposition and cell profiles
    # ------------------------------------------------------------------ #
    def decompose(self, region: Predicate | None = None) -> CellDecomposition:
        """The (cached) cell decomposition for ``region``.

        Public so callers can reuse or pre-warm decompositions — the batch
        executor warms each distinct region once before fanning queries out
        over its thread pool.
        """
        return self._decompose(region)

    def _record_decomposition(self, decomposition: CellDecomposition) -> None:
        # Distinct regions can decompose concurrently under a shared cache
        # (the batch executor warms them in parallel), so the read-modify-
        # write on the counters needs a lock to stay exact.
        with self._counter_lock:
            self._decompositions_computed += 1
            self._decomposition_solver_calls += decomposition.statistics.solver_calls

    def _decompose(self, region: Predicate | None) -> CellDecomposition:
        if self._shared_cache is not None:
            return decompose_cached(
                self._pcset, region,
                strategy=self._options.strategy,
                early_stop_depth=self._options.early_stop_depth,
                cache=self._shared_cache,
                namespace=self._cache_namespace,
                on_compute=self._record_decomposition)
        if region not in self._decomposition_cache:
            self._decomposition_cache[region] = decompose_cached(
                self._pcset, region,
                strategy=self._options.strategy,
                early_stop_depth=self._options.early_stop_depth,
                on_compute=self._record_decomposition)
        return self._decomposition_cache[region]

    def _profiles(self, decomposition: CellDecomposition, attribute: str | None,
                  region: Predicate | None) -> list[_CellProfile]:
        region_range = None
        if attribute is not None and region is not None:
            region_range = region.range_for(attribute)
        profiles: list[_CellProfile] = []
        for index, cell in enumerate(decomposition.cells):
            constraints = [self._pcset[i] for i in cell.covering]
            capacity = min(pc.max_rows() for pc in constraints)
            if attribute is None:
                value_upper, value_lower = 1.0, 1.0
            else:
                value_upper = min(pc.value_upper(attribute) for pc in constraints)
                value_lower = max(pc.value_lower(attribute) for pc in constraints)
                if region_range is not None:
                    value_upper = min(value_upper, region_range.high)
                    value_lower = max(value_lower, region_range.low)
                if value_upper < value_lower:
                    # No row can simultaneously satisfy every covering value
                    # constraint inside the query region: the cell is barren.
                    capacity = 0
            profiles.append(_CellProfile(index, cell.covering, capacity,
                                         value_upper, value_lower))
        return profiles

    # ------------------------------------------------------------------ #
    # MILP construction
    # ------------------------------------------------------------------ #
    def _build_model(self, profiles: list[_CellProfile],
                     coefficients: dict[int, float],
                     region: Predicate | None,
                     sense: Sense,
                     extra_constraints: list[tuple[dict[str, float], float, float]]
                     | None = None) -> MILPModel:
        model = MILPModel(sense=sense)
        for profile in profiles:
            model.add_variable(f"x{profile.index}", lower=0.0,
                               upper=float(profile.capacity),
                               objective=coefficients.get(profile.index, 0.0),
                               is_integer=True)
        slack_names = self._add_slack_variables(model, region)
        for constraint_index, pc in enumerate(self._pcset):
            terms: dict[str, float] = {}
            covered_capacity_total = 0
            for profile in profiles:
                if constraint_index in profile.covering:
                    terms[f"x{profile.index}"] = 1.0
                    covered_capacity_total += profile.capacity
            slack = slack_names.get(constraint_index)
            if slack is not None:
                terms[slack] = 1.0
            if not terms:
                if pc.min_rows() > 0:
                    raise SolverError(
                        f"constraint {pc.name!r} forces rows to exist but its "
                        "predicate is unsatisfiable"
                    )
                continue
            if (len(terms) == 1 and slack is None and pc.min_rows() == 0
                    and covered_capacity_total <= pc.max_rows()):
                # A single cell already bounded by its own capacity: the
                # frequency constraint is redundant.  Skipping it keeps the
                # disjoint / partitioned case a pure box problem, which the
                # greedy backend solves in linear time (paper §4.2).
                continue
            model.add_constraint(terms, lower=float(pc.min_rows()),
                                 upper=float(pc.max_rows()))
        for terms, low, high in (extra_constraints or []):
            model.add_constraint(terms, lower=low, upper=high)
        return model

    def _add_slack_variables(self, model: MILPModel,
                             region: Predicate | None) -> dict[int, str]:
        """Zero-objective allocations for rows lying outside the query region."""
        slack_names: dict[int, str] = {}
        if region is None:
            return slack_names
        solver = self._pcset.solver()
        region_box = region.to_box()
        for constraint_index, pc in enumerate(self._pcset):
            if pc.min_rows() == 0:
                # Slack allocations only matter when mandatory rows could be
                # parked outside the query region; with kl = 0 the optimiser
                # would always leave the slack at zero anyway.
                continue
            outside_possible = solver.is_satisfiable(
                [pc.predicate.to_box()], [region_box])
            if outside_possible:
                name = f"s{constraint_index}"
                model.add_variable(name, lower=0.0, upper=float(pc.max_rows()),
                                   objective=0.0, is_integer=True)
                slack_names[constraint_index] = name
        return slack_names

    def _solve(self, model: MILPModel) -> float:
        backend = self._options.milp_backend
        if model.is_pure_box_problem():
            backend = MILPBackend.GREEDY
        solution = solve_milp(model, backend=backend)
        if solution.status is SolutionStatus.INFEASIBLE:
            raise SolverError(
                "the predicate-constraint set is unsatisfiable: no allocation of "
                "missing rows meets every frequency constraint"
            )
        if solution.status is SolutionStatus.UNBOUNDED:
            return _INF if model.sense is Sense.MAXIMIZE else -_INF
        solution.raise_for_status()
        assert solution.objective is not None
        return solution.objective

    # ------------------------------------------------------------------ #
    # COUNT
    # ------------------------------------------------------------------ #
    def _bound_count(self, region: Predicate | None) -> ResultRange:
        decomposition = self._decompose(region)
        profiles = self._profiles(decomposition, None, region)
        if not profiles:
            return ResultRange(0.0, 0.0, AggregateFunction.COUNT, None,
                               statistics=decomposition.statistics)
        coefficients = {profile.index: 1.0 for profile in profiles}
        upper_model = self._build_model(profiles, coefficients, region,
                                        Sense.MAXIMIZE)
        upper = self._solve(upper_model)
        if self._pcset.has_mandatory_rows():
            lower_model = self._build_model(profiles, coefficients, region,
                                            Sense.MINIMIZE)
            lower = self._solve(lower_model)
        else:
            lower = 0.0
        return ResultRange(lower, upper, AggregateFunction.COUNT, None,
                           statistics=decomposition.statistics)

    # ------------------------------------------------------------------ #
    # SUM
    # ------------------------------------------------------------------ #
    def _bound_sum(self, attribute: str, region: Predicate | None) -> ResultRange:
        decomposition = self._decompose(region)
        profiles = self._profiles(decomposition, attribute, region)
        if not profiles:
            return ResultRange(0.0, 0.0, AggregateFunction.SUM, attribute,
                               statistics=decomposition.statistics)
        upper = self._sum_direction(profiles, region, maximise=True)
        mandatory = self._pcset.has_mandatory_rows()
        non_negative = all(profile.value_lower >= 0 for profile in profiles)
        if not mandatory and non_negative:
            lower = 0.0
        else:
            lower = self._sum_direction(profiles, region, maximise=False)
        return ResultRange(lower, upper, AggregateFunction.SUM, attribute,
                           statistics=decomposition.statistics)

    def _sum_direction(self, profiles: list[_CellProfile],
                       region: Predicate | None, maximise: bool) -> float:
        active = [p for p in profiles if p.capacity > 0]
        if maximise and any(math.isinf(p.value_upper) and p.value_upper > 0
                            for p in active):
            return _INF
        if not maximise and any(math.isinf(p.value_lower) and p.value_lower < 0
                                for p in active):
            return -_INF
        coefficients = {
            profile.index: (profile.value_upper if maximise else profile.value_lower)
            for profile in profiles
        }
        sense = Sense.MAXIMIZE if maximise else Sense.MINIMIZE
        model = self._build_model(profiles, coefficients, region, sense)
        return self._solve(model)

    # ------------------------------------------------------------------ #
    # MIN / MAX
    # ------------------------------------------------------------------ #
    def _bound_max(self, attribute: str, region: Predicate | None) -> ResultRange:
        decomposition = self._decompose(region)
        profiles = [p for p in self._profiles(decomposition, attribute, region)
                    if p.capacity > 0]
        if not profiles:
            return ResultRange(None, None, AggregateFunction.MAX, attribute,
                               statistics=decomposition.statistics)
        upper = max(profile.value_upper for profile in profiles)
        lower = self._forced_extremum(attribute, region, want_max=True)
        return ResultRange(lower, upper, AggregateFunction.MAX, attribute,
                           statistics=decomposition.statistics)

    def _bound_min(self, attribute: str, region: Predicate | None) -> ResultRange:
        decomposition = self._decompose(region)
        profiles = [p for p in self._profiles(decomposition, attribute, region)
                    if p.capacity > 0]
        if not profiles:
            return ResultRange(None, None, AggregateFunction.MIN, attribute,
                               statistics=decomposition.statistics)
        lower = min(profile.value_lower for profile in profiles)
        upper = self._forced_extremum(attribute, region, want_max=False)
        return ResultRange(lower, upper, AggregateFunction.MIN, attribute,
                           statistics=decomposition.statistics)

    def _forced_extremum(self, attribute: str, region: Predicate | None,
                         want_max: bool) -> float | None:
        """Guaranteed MAX lower / MIN upper from constraints that force rows.

        A constraint with ``kl > 0`` whose predicate lies entirely inside the
        query region guarantees at least one matching row, whose value is
        bracketed by the constraint's value bounds.
        """
        solver = self._pcset.solver()
        region_box = region.to_box() if region is not None else None
        best: float | None = None
        for pc in self._pcset:
            if pc.min_rows() <= 0:
                continue
            if region_box is not None:
                escapes_region = solver.is_satisfiable(
                    [pc.predicate.to_box()], [region_box])
                if escapes_region:
                    continue
            candidate = pc.value_lower(attribute) if want_max else pc.value_upper(attribute)
            if not math.isfinite(candidate):
                continue
            if best is None:
                best = candidate
            elif want_max:
                best = max(best, candidate)
            else:
                best = min(best, candidate)
        return best

    # ------------------------------------------------------------------ #
    # AVG (binary search, paper §4.2)
    # ------------------------------------------------------------------ #
    def _bound_avg(self, attribute: str, region: Predicate | None,
                   known_sum: float, known_count: float) -> ResultRange:
        decomposition = self._decompose(region)
        profiles = [p for p in self._profiles(decomposition, attribute, region)
                    if p.capacity > 0]
        statistics = decomposition.statistics
        if not profiles:
            if known_count > 0:
                average = known_sum / known_count
                return ResultRange(average, average, AggregateFunction.AVG,
                                   attribute, statistics=statistics)
            return ResultRange(None, None, AggregateFunction.AVG, attribute,
                               statistics=statistics)

        uppers = [p.value_upper for p in profiles]
        lowers = [p.value_lower for p in profiles]
        if any(math.isinf(u) for u in uppers) or any(math.isinf(l) for l in lowers):
            return ResultRange(-_INF, _INF, AggregateFunction.AVG, attribute,
                               statistics=statistics)

        # Fast path: nothing forces rows and there is no observed partition,
        # so a single row at the extreme cell attains the extreme average.
        if not self._pcset.has_mandatory_rows() and known_count == 0:
            return ResultRange(min(lowers), max(uppers), AggregateFunction.AVG,
                               attribute, statistics=statistics)

        high_start = max(uppers + ([known_sum / known_count] if known_count else []))
        low_start = min(lowers + ([known_sum / known_count] if known_count else []))
        upper = self._avg_search(profiles, region, known_sum, known_count,
                                 low_start, high_start, find_upper=True)
        lower = self._avg_search(profiles, region, known_sum, known_count,
                                 low_start, high_start, find_upper=False)
        return ResultRange(lower, upper, AggregateFunction.AVG, attribute,
                           statistics=statistics)

    def _avg_search(self, profiles: list[_CellProfile], region: Predicate | None,
                    known_sum: float, known_count: float,
                    low_start: float, high_start: float,
                    find_upper: bool) -> float:
        """Binary search for the extreme achievable average."""
        tolerance = self._options.avg_tolerance
        low, high = low_start, high_start
        for _ in range(self._options.avg_max_iterations):
            if high - low <= tolerance * max(1.0, abs(high), abs(low)):
                break
            midpoint = (low + high) / 2.0
            if self._average_achievable(profiles, region, known_sum, known_count,
                                        midpoint, at_least=find_upper):
                if find_upper:
                    low = midpoint
                else:
                    high = midpoint
            else:
                if find_upper:
                    high = midpoint
                else:
                    low = midpoint
        # Return the conservative endpoint so the reported range always
        # contains the true extreme average despite the finite tolerance.
        return high if find_upper else low

    def _average_achievable(self, profiles: list[_CellProfile],
                            region: Predicate | None,
                            known_sum: float, known_count: float,
                            target: float, at_least: bool) -> bool:
        """Is there an allocation whose combined average is >= (or <=) target?"""
        coefficients: dict[int, float] = {}
        for profile in profiles:
            per_row_value = profile.value_upper if at_least else profile.value_lower
            coefficients[profile.index] = per_row_value - target
        extra = []
        if known_count == 0:
            # The average only exists if at least one row is allocated.
            extra.append(({f"x{p.index}": 1.0 for p in profiles}, 1.0, _INF))
        sense = Sense.MAXIMIZE if at_least else Sense.MINIMIZE
        model = self._build_model(profiles, coefficients, region, sense, extra)
        try:
            optimum = self._solve(model)
        except SolverError:
            return False
        constant = known_sum - target * known_count
        if at_least:
            return optimum + constant >= -1e-9
        return optimum + constant <= 1e-9
