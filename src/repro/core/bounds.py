"""Result ranges for aggregates over the missing partition (paper §4).

Given a predicate-constraint set and a query, :class:`PCBoundSolver` computes
the *result range* — the tightest ``[lower, upper]`` interval containing the
aggregate's value over every relation instance that satisfies the
constraints.

Since the plan-pipeline refactor the solver is a thin facade over
:mod:`repro.plan`: every query is lowered to a logical
:class:`~repro.plan.BoundPlan`, optimized (region pruning, duplicate
merging, budget-driven strategy selection), compiled into a
:class:`~repro.plan.BoundProgram` — decomposition, cell profiles, slack
layout and MILP skeleton materialized once — and executed by patching
parameters into that program.  Programs are cached per (region, attribute),
privately or in a shared LRU supplied by the service layer, so repeated
queries (and every probe of AVG's binary search) skip model construction
entirely.

One deviation from the paper's informal description is documented here
because it matters for soundness: when a query predicate is pushed down and
some predicate-constraint forces rows to exist (``kl > 0``), those rows may
legitimately live *outside* the query region.  We therefore add a
zero-objective slack allocation per such constraint instead of forcing the
mandatory rows into query-relevant cells, which keeps both bound directions
sound (the feasible region is a superset of the true one).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace

from ..exceptions import SolverError
from ..plan.ir import BoundPlan, BoundQuery, build_plan
from ..plan.passes import optimize_plan
from ..plan.program import BoundProgram, compile_plan
from ..relational.aggregates import AggregateFunction
from ..solvers.milp import MILPBackend
from .cells import (
    CellDecomposition,
    DecompositionStrategy,
    decompose_cached,
)
from .pcset import PredicateConstraintSet
from .predicates import Predicate
from .ranges import ResultRange

__all__ = ["ResultRange", "PCBoundSolver", "BoundOptions", "BoundExplanation",
           "CellAllocation"]

_INF = float("inf")


@dataclass
class BoundOptions:
    """Tuning knobs for :class:`PCBoundSolver`.

    The first block configures decomposition and solving; the second block
    configures the plan pipeline itself:

    ``cell_budget``
        Worst-case cell count above which the strategy-selection pass trades
        exactness for an early-stopped (still sound, possibly looser)
        enumeration.  ``None`` (default) always enumerates exactly.
    ``optimize``
        Run the bound-preserving optimizer passes (region pruning, duplicate
        merging, strategy selection).  Disabling executes the raw plan.
    ``program_reuse``
        Patch parameters into compiled program skeletons (default).  When
        disabled, every solve rebuilds the MILP from scratch — the
        pre-pipeline behaviour, kept as an equivalence/benchmark baseline.

    The third block configures parallel fan-out and verification
    (see :mod:`repro.parallel`):

    ``solve_workers``
        When > 1, COUNT/SUM/MIN/MAX queries whose constraint-overlap graph
        splits into independent components are sharded into per-component
        programs and solved on a worker pool of this width.  ``None`` (and
        ``1``) keep the serial single-program path.
    ``parallel_mode``
        Pool flavour for the fan-out: ``"thread"`` (default, safe for every
        backend), ``"process"`` (real CPU scale-out; requires the backend's
        ``process_safe`` capability flag), or ``"auto"``.
    ``verify_backend``
        When set, every bound is additionally solved on this second registry
        backend and the two ranges are intersected; disjoint ranges raise
        :class:`~repro.exceptions.DisjointRangeError` (the cross-backend
        alarm).  Must name a backend different from ``milp_backend`` to be
        a meaningful oracle, though equal names are tolerated.
    """

    strategy: DecompositionStrategy = DecompositionStrategy.DFS_REWRITE
    milp_backend: str = MILPBackend.SCIPY
    early_stop_depth: int | None = None
    check_closure: bool = True
    avg_tolerance: float = 1e-6
    avg_max_iterations: int = 64
    cell_budget: int | None = None
    optimize: bool = True
    program_reuse: bool = True
    solve_workers: int | None = None
    parallel_mode: str = "thread"
    verify_backend: str | None = None


@dataclass(frozen=True)
class CellAllocation:
    """One cell's share of the worst-case allocation behind a bound."""

    covering_constraints: tuple[str, ...]
    rows_allocated: float
    per_row_value: float

    @property
    def contribution(self) -> float:
        return self.rows_allocated * self.per_row_value


@dataclass(frozen=True)
class BoundExplanation:
    """Why a bound takes the value it does (the optimal MILP allocation).

    ``allocations`` lists every cell that received rows in the worst-case
    instance together with its per-row value; ``saturated_constraints`` names
    the predicate-constraints whose frequency upper bound is fully used —
    tightening any of those is what would tighten the bound.
    """

    aggregate: AggregateFunction
    attribute: str | None
    bound: float
    allocations: tuple[CellAllocation, ...]
    saturated_constraints: tuple[str, ...]

    def summary(self) -> str:
        lines = [f"{self.aggregate.value} upper bound = {self.bound}"]
        for allocation in self.allocations:
            lines.append(
                f"  {allocation.rows_allocated:.0f} rows x {allocation.per_row_value} "
                f"in cell covered by {', '.join(allocation.covering_constraints)}")
        if self.saturated_constraints:
            lines.append("  saturated frequency constraints: "
                         + ", ".join(self.saturated_constraints))
        return "\n".join(lines)


class PCBoundSolver:
    """Computes result ranges for one predicate-constraint set.

    Parameters
    ----------
    pcset, options:
        The constraint set and tuning knobs.
    decomposition_cache:
        Optional shared cache (any object with ``get_or_compute(key,
        factory)``, e.g. :class:`repro.service.LRUCache`).  When given,
        decompositions are stored there under a content-derived namespace so
        equal constraint sets share work across solvers and threads; when
        omitted, the solver keeps a private per-instance dict (single-
        threaded use).
    cache_namespace:
        Overrides the namespace used inside a shared cache.  Defaults to a
        structural key derived from the constraint set's content and the
        decomposition knobs, which is always sound; the service layer passes
        its fingerprint-based namespace instead.
    program_cache:
        Optional shared cache for compiled :class:`BoundProgram` objects
        (same protocol as ``decomposition_cache``).  When omitted, programs
        are cached in a private per-instance dict.
    """

    def __init__(self, pcset: PredicateConstraintSet,
                 options: BoundOptions | None = None,
                 decomposition_cache=None,
                 cache_namespace: object = None,
                 program_cache=None):
        self._pcset = pcset
        self._options = options or BoundOptions()
        self._shared_cache = decomposition_cache
        self._cache_namespace = cache_namespace
        self._program_cache = program_cache
        self._decomposition_cache: dict[object, CellDecomposition] = {}
        self._decomposition_locks: dict[object, threading.Lock] = {}
        self._local_programs: dict[object, BoundProgram] = {}
        self._local_program_locks: dict[object, threading.Lock] = {}
        self._sharded_plans: dict[tuple, object] = {}
        self._decompositions_computed = 0
        self._decomposition_solver_calls = 0
        self._programs_compiled = 0
        self._counter_lock = threading.Lock()
        self._program_lock = threading.Lock()
        self._verify_solver: PCBoundSolver | None = None

    # ------------------------------------------------------------------ #
    # Pickling (process-pool fan-out)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Locks are dropped and rebuilt; shared caches do not cross processes.

        A worker process receives the solver with its *private* program and
        decomposition caches intact (warm compiled skeletons travel), but
        with any shared LRU caches replaced by ``None`` — a cache shared by
        reference cannot span processes, and silently pickling a snapshot
        would masquerade as shared state.  The worker falls back to private
        caching, which is correct, merely less deduplicated.
        """
        state = dict(self.__dict__)
        state["_shared_cache"] = None
        state["_program_cache"] = None
        state["_decomposition_locks"] = {}
        state["_local_program_locks"] = {}
        del state["_counter_lock"]
        del state["_program_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._counter_lock = threading.Lock()
        self._program_lock = threading.Lock()

    @property
    def pcset(self) -> PredicateConstraintSet:
        return self._pcset

    @property
    def options(self) -> BoundOptions:
        return self._options

    @property
    def decompositions_computed(self) -> int:
        """How many decompositions this solver actually ran (cache misses).

        Includes the verification solver's work when cross-backend
        verification is active — the observable stays "what did answering
        through this facade cost", whichever internal solver paid it.
        """
        return self._decompositions_computed + (
            0 if self._verify_solver is None
            else self._verify_solver.decompositions_computed)

    @property
    def decomposition_solver_calls(self) -> int:
        """Cumulative satisfiability-solver calls across fresh decompositions.

        Cache hits (shared or private) leave this counter untouched — it is
        the observable the service's acceptance tests pin down: answering a
        repeated query must not move it.
        """
        return self._decomposition_solver_calls + (
            0 if self._verify_solver is None
            else self._verify_solver.decomposition_solver_calls)

    @property
    def programs_compiled(self) -> int:
        """How many bound programs this solver compiled (program-cache misses)."""
        return self._programs_compiled + (
            0 if self._verify_solver is None
            else self._verify_solver.programs_compiled)

    # ------------------------------------------------------------------ #
    # Public bound API
    # ------------------------------------------------------------------ #
    def bound(self, aggregate: AggregateFunction, attribute: str | None = None,
              region: Predicate | None = None,
              known_sum: float = 0.0, known_count: float = 0.0) -> ResultRange:
        """The result range of ``aggregate(attribute)`` over the missing rows.

        ``known_sum`` / ``known_count`` describe the observed partition and
        are only used by AVG (whose bound depends jointly on both).

        Execution routes through up to three paths, all governed by the
        options: the serial compiled program (default), the sharded fan-out
        (``solve_workers > 1`` and the plan splits into independent
        components), and — orthogonally — cross-backend verification
        (``verify_backend``), which intersects the range with a second
        backend's and alarms on disagreement.
        """
        if aggregate.needs_attribute and attribute is None:
            raise SolverError(f"{aggregate.value} bounds require an attribute")
        closed = self._is_closed(region)
        result = self._bound_missing(aggregate, attribute, region,
                                     known_sum, known_count)
        if self._options.verify_backend is not None:
            result = self._cross_check(result, aggregate, attribute, region,
                                       known_sum, known_count)
        if not closed:
            result = self._widen_for_open_world(result, aggregate)
        return result

    def _bound_missing(self, aggregate: AggregateFunction,
                       attribute: str | None, region: Predicate | None,
                       known_sum: float, known_count: float) -> ResultRange:
        """The closed-world missing-partition range, serial or sharded."""
        workers = self._options.solve_workers
        if workers is not None and workers > 1:
            from ..parallel.sharding import SHARDABLE_AGGREGATES

            if aggregate in SHARDABLE_AGGREGATES:
                sharded = self.sharded_plan(region, attribute,
                                            max_shards=workers)
                if sharded.is_sharded:
                    return self._bound_sharded(sharded, aggregate, attribute,
                                               region, workers)
        program = self.program(region, attribute)
        return program.bound(aggregate, known_sum=known_sum,
                             known_count=known_count)

    def _bound_sharded(self, sharded, aggregate: AggregateFunction,
                       attribute: str | None, region: Predicate | None,
                       workers: int) -> ResultRange:
        """Fan the per-shard programs out over a pool and merge the ranges."""
        from ..parallel.executor import SolveExecutor
        from ..parallel.sharding import (
            merge_shard_ranges,
            merge_shard_statistics,
        )

        programs = [self.shard_program(shard, region, attribute)
                    for shard in sharded]
        with SolveExecutor(max_workers=workers,
                           mode=self._options.parallel_mode,
                           backend=self._options.milp_backend) as executor:
            endpoints = executor.solve_programs(programs, aggregate)
        ranges = [ResultRange(lower, upper, aggregate, attribute, closed=closed)
                  for lower, upper, closed in endpoints]
        # Statistics come from the parent's shard programs, not the worker
        # results: workers return bare endpoints, and the parent compiled
        # (or cache-loaded) every shard program anyway.
        statistics = merge_shard_statistics(
            program.decomposition.statistics for program in programs)
        return merge_shard_ranges(aggregate, ranges, attribute,
                                  statistics=statistics)

    def _cross_check(self, result: ResultRange, aggregate: AggregateFunction,
                     attribute: str | None, region: Predicate | None,
                     known_sum: float, known_count: float) -> ResultRange:
        """Solve on the verify backend and intersect (alarm on disjoint)."""
        from ..parallel.verify import cross_check_ranges

        verifier = self._verification_solver()
        secondary = verifier._bound_missing(aggregate, attribute, region,
                                            known_sum, known_count)
        label = f"{aggregate.value}({attribute or '*'})"
        return cross_check_ranges(result, secondary,
                                  self._options.milp_backend,
                                  self._options.verify_backend or "",
                                  context=label)

    def _verification_solver(self) -> "PCBoundSolver":
        """A sibling solver pinned to the verify backend, sharing the caches.

        The decomposition namespace excludes the MILP backend, so the
        verifier reuses every cached decomposition; its programs key under
        their own backend name and never collide with the primary's.
        Verification runs serially — fan-out on the oracle path would only
        obscure which backend produced a bad range.
        """
        with self._program_lock:
            if self._verify_solver is None:
                options = replace(self._options,
                                  milp_backend=self._options.verify_backend,
                                  verify_backend=None,
                                  solve_workers=None)
                self._verify_solver = PCBoundSolver(
                    self._pcset, options,
                    decomposition_cache=self._shared_cache,
                    cache_namespace=self._cache_namespace,
                    program_cache=self._program_cache)
            return self._verify_solver

    def explain(self, aggregate: AggregateFunction, attribute: str | None = None,
                region: Predicate | None = None) -> BoundExplanation:
        """Explain the *upper* bound of a COUNT or SUM query.

        Returns the optimal worst-case allocation (how many rows are placed
        in which cell, at what per-row value) and the predicate-constraints
        whose frequency capacity that allocation exhausts.  Only COUNT and
        SUM are supported — their bounds come directly from one MILP solve.
        Constraint names refer to the optimized plan, so merged duplicates
        appear under their combined ``a&b`` name.
        """
        if aggregate not in (AggregateFunction.COUNT, AggregateFunction.SUM):
            raise SolverError("explain() supports COUNT and SUM bounds only")
        if aggregate is AggregateFunction.SUM and attribute is None:
            raise SolverError("SUM explanations require an attribute")
        program = self.program(region, attribute)
        profiles = program.profiles
        if not profiles:
            return BoundExplanation(aggregate, attribute, 0.0, (), ())
        coefficients = {
            profile.index: (1.0 if aggregate is AggregateFunction.COUNT
                            else profile.value_upper)
            for profile in profiles
        }
        solution = program.solve_for_explanation(coefficients).raise_for_status()
        assert solution.objective is not None

        pcset = program.pcset
        allocations = []
        allocated_per_constraint = {index: 0.0 for index in range(len(pcset))}
        for profile in profiles:
            rows = solution.values.get(f"x{profile.index}", 0.0)
            if rows <= 0:
                continue
            names = tuple(pcset[i].name for i in sorted(profile.covering))
            allocations.append(CellAllocation(names, rows,
                                              coefficients[profile.index]))
            for constraint_index in profile.covering:
                allocated_per_constraint[constraint_index] += rows
        saturated = tuple(
            pcset[index].name
            for index, allocated in allocated_per_constraint.items()
            if allocated >= pcset[index].max_rows() - 1e-9
            and pcset[index].max_rows() > 0)
        return BoundExplanation(aggregate, attribute, solution.objective,
                                tuple(allocations), saturated)

    # ------------------------------------------------------------------ #
    # The pipeline: plan -> optimize -> compile
    # ------------------------------------------------------------------ #
    def plan(self, query) -> BoundPlan:
        """The (optimized) logical plan for anything query-shaped.

        Introspection entry point: ``solver.plan(query).describe()`` shows
        which constraints survive pruning/merging and which enumeration
        strategy the compiled program will use.
        """
        plan = build_plan(query, self._pcset, self._options)
        if self._options.optimize:
            plan = optimize_plan(plan)
        return plan

    def program(self, region: Predicate | None = None,
                attribute: str | None = None) -> BoundProgram:
        """The compiled program for a (region, attribute) pair, cached.

        One program answers every aggregate over the pair, so the cache key
        ignores the aggregate.  With a shared program cache the per-key
        locking inside ``get_or_compute`` dedupes concurrent compilations;
        the private fallback mirrors that per-key scheme, so distinct pairs
        compile in parallel (the batch executor's warm phase relies on it)
        while same-key racers share one compile.
        """
        return self._cached_program(
            (region, attribute),
            lambda: self._program_key(region, attribute),
            lambda: self._compile(region, attribute))

    def sharded_plan(self, region: Predicate | None = None,
                     attribute: str | None = None,
                     max_shards: int | None = None):
        """The :class:`~repro.parallel.ShardedBoundPlan` for a (region,
        attribute) pair: the optimized plan split along the independent
        components of its constraint-overlap graph, capped at ``max_shards``
        (defaulting to ``options.solve_workers``).  A single-component plan
        comes back with one shard (``is_sharded`` False).

        Sharded plans are memoized per (region, attribute, max_shards):
        building one runs the optimizer plus a quadratic predicate-overlap
        scan, which a warm repeated query must not pay again.  Plans and
        the shard layouts they induce are immutable, so the cached object
        is safe to share across threads.
        """
        from ..parallel.sharding import shard_plan

        if max_shards is None:
            max_shards = self._options.solve_workers
        key = (region, attribute, max_shards)
        with self._program_lock:
            cached = self._sharded_plans.get(key)
        if cached is not None:
            return cached
        aggregate = (AggregateFunction.COUNT if attribute is None
                     else AggregateFunction.SUM)
        plan = self.plan(BoundQuery(aggregate, attribute, region))
        sharded = shard_plan(plan, max_shards=max_shards)
        with self._program_lock:
            self._sharded_plans[key] = sharded
        return sharded

    def shard_program(self, shard, region: Predicate | None,
                      attribute: str | None) -> BoundProgram:
        """The compiled program for one plan shard, cached like any program.

        Shard programs live in the same (shared or private) cache as their
        unsharded siblings: the key is the ordinary (namespace, region,
        attribute) program key extended with the shard's
        :meth:`~repro.parallel.PlanShard.cache_token`, so repeated sharded
        queries patch parameters into warm per-shard skeletons exactly like
        the serial path does.
        """
        token = shard.cache_token()
        return self._cached_program(
            (region, attribute, token),
            lambda: self._program_key(region, attribute) + token,
            lambda: self._compile_shard(shard, region))

    def _cached_program(self, private_key, shared_key_factory,
                        factory) -> BoundProgram:
        """Per-key deduplicated program caching (shared LRU or private dict)."""
        if self._program_cache is not None:
            return self._program_cache.get_or_compute(
                shared_key_factory(), factory)
        key = private_key
        with self._program_lock:
            program = self._local_programs.get(key)
            if program is not None:
                return program
            key_lock = self._local_program_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._program_lock:
                program = self._local_programs.get(key)
            if program is None:
                program = factory()
                with self._program_lock:
                    self._local_programs[key] = program
                    self._local_program_locks.pop(key, None)
            return program

    def _program_key(self, region: Predicate | None,
                     attribute: str | None) -> tuple:
        """The shared-cache key for one compiled program.

        The decomposition namespace covers the constraint set's content and
        the enumeration knobs; the remaining execution knobs (backend, AVG
        search parameters, pipeline toggles) are appended explicitly because
        they change the compiled artifact without changing decompositions.
        """
        options = self._options
        return ("program", self._namespace(), options.milp_backend,
                options.avg_tolerance, options.avg_max_iterations,
                options.optimize, options.cell_budget, options.program_reuse,
                region, attribute)

    def _namespace(self) -> object:
        if self._cache_namespace is not None:
            return self._cache_namespace
        from .cells import _structural_namespace

        return _structural_namespace(self._pcset, self._options.strategy,
                                     self._options.early_stop_depth)

    def _compile(self, region: Predicate | None,
                 attribute: str | None) -> BoundProgram:
        # A representative aggregate: the optimizer passes never read it, so
        # the compiled program serves every aggregate over the pair.
        aggregate = (AggregateFunction.COUNT if attribute is None
                     else AggregateFunction.SUM)
        plan = self.plan(BoundQuery(aggregate, attribute, region))
        decomposition = self._decompose_plan(plan)
        program = compile_plan(
            plan, decomposition,
            avg_tolerance=self._options.avg_tolerance,
            avg_max_iterations=self._options.avg_max_iterations,
            reuse=self._options.program_reuse)
        with self._counter_lock:
            self._programs_compiled += 1
        return program

    def _compile_shard(self, shard, region: Predicate | None) -> BoundProgram:
        """Compile one shard's sub-plan into its own program.

        The shard's constraint subset decomposes independently (its cells
        are exactly the full decomposition's cells covered by this shard's
        constraints); under a shared cache the entry is namespaced by the
        shard token so it can never masquerade as the full decomposition of
        the same region.
        """
        plan = shard.plan
        namespace = None
        if self._shared_cache is not None and self._cache_namespace is not None:
            namespace = ("plan-shard", self._cache_namespace,
                         self._options.optimize, self._options.cell_budget,
                         shard.cache_token())
        decomposition = decompose_cached(
            plan.pcset, region,
            strategy=plan.strategy,
            early_stop_depth=plan.early_stop_depth,
            cache=self._shared_cache,
            namespace=namespace,
            on_compute=self._record_decomposition)
        program = compile_plan(
            plan, decomposition,
            avg_tolerance=self._options.avg_tolerance,
            avg_max_iterations=self._options.avg_max_iterations,
            reuse=self._options.program_reuse)
        with self._counter_lock:
            self._programs_compiled += 1
        return program

    # ------------------------------------------------------------------ #
    # Closure handling
    # ------------------------------------------------------------------ #
    def _is_closed(self, region: Predicate | None) -> bool:
        if not self._options.check_closure:
            return True
        return self._pcset.is_closed(region)

    @staticmethod
    def _widen_for_open_world(result: ResultRange,
                              aggregate: AggregateFunction) -> ResultRange:
        """Without closure nothing constrains uncovered rows: bounds blow up."""
        lower: float | None
        upper: float | None
        if aggregate is AggregateFunction.COUNT:
            lower, upper = result.lower, _INF
        elif aggregate in (AggregateFunction.SUM, AggregateFunction.AVG):
            lower, upper = -_INF, _INF
        elif aggregate is AggregateFunction.MAX:
            lower, upper = result.lower, _INF
        else:
            lower, upper = -_INF, result.upper
        return ResultRange(lower, upper, result.aggregate, result.attribute,
                           closed=False, statistics=result.statistics)

    # ------------------------------------------------------------------ #
    # Decomposition
    # ------------------------------------------------------------------ #
    def decompose(self, region: Predicate | None = None) -> CellDecomposition:
        """The (cached) cell decomposition for ``region``.

        Public so callers can reuse or pre-warm decompositions — the batch
        executor warms each distinct region once before fanning queries out
        over its thread pool.  Runs through the plan pipeline, so the cells
        are those of the *optimized* constraint set.
        """
        plan = self.plan(BoundQuery(AggregateFunction.COUNT, None, region))
        return self._decompose_plan(plan)

    def _record_decomposition(self, decomposition: CellDecomposition) -> None:
        # Distinct regions can decompose concurrently under a shared cache
        # (the batch executor warms them in parallel), so the read-modify-
        # write on the counters needs a lock to stay exact.
        with self._counter_lock:
            self._decompositions_computed += 1
            self._decomposition_solver_calls += decomposition.statistics.solver_calls

    def _decompose_plan(self, plan: BoundPlan) -> CellDecomposition:
        region = plan.query.region
        if self._shared_cache is not None:
            namespace = None
            if self._cache_namespace is not None:
                # The caller's namespace covers the original constraint set
                # and enumeration knobs; the pipeline toggles complete it
                # because they decide what actually gets decomposed.  The
                # optimized set itself is a deterministic function of
                # (namespace, region), which the cache key already carries.
                namespace = ("plan", self._cache_namespace,
                             self._options.optimize, self._options.cell_budget)
            return decompose_cached(
                plan.pcset, region,
                strategy=plan.strategy,
                early_stop_depth=plan.early_stop_depth,
                cache=self._shared_cache,
                namespace=namespace,
                on_compute=self._record_decomposition)
        # Programs for the same region but different attributes can compile
        # concurrently (the batch executor's warm phase), so the private
        # dict needs per-region locking to keep one decomposition per
        # region and exact counters.
        with self._program_lock:
            decomposition = self._decomposition_cache.get(region)
            if decomposition is not None:
                return decomposition
            region_lock = self._decomposition_locks.setdefault(
                region, threading.Lock())
        with region_lock:
            with self._program_lock:
                decomposition = self._decomposition_cache.get(region)
            if decomposition is None:
                decomposition = decompose_cached(
                    plan.pcset, region,
                    strategy=plan.strategy,
                    early_stop_depth=plan.early_stop_depth,
                    on_compute=self._record_decomposition)
                with self._program_lock:
                    self._decomposition_cache[region] = decomposition
                    self._decomposition_locks.pop(region, None)
            return decomposition
