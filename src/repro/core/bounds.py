"""Result ranges for aggregates over the missing partition (paper §4).

Given a predicate-constraint set and a query, :class:`PCBoundSolver` computes
the *result range* — the tightest ``[lower, upper]`` interval containing the
aggregate's value over every relation instance that satisfies the
constraints.

Since the plan-pipeline refactor the solver is a thin facade over
:mod:`repro.plan`: every query is lowered to a logical
:class:`~repro.plan.BoundPlan`, optimized (region pruning, duplicate
merging, budget-driven strategy selection), compiled into a
:class:`~repro.plan.BoundProgram` — decomposition, cell profiles, slack
layout and MILP skeleton materialized once — and executed by patching
parameters into that program.  Programs are cached per (region, attribute),
privately or in a shared LRU supplied by the service layer, so repeated
queries (and every probe of AVG's binary search) skip model construction
entirely.

One deviation from the paper's informal description is documented here
because it matters for soundness: when a query predicate is pushed down and
some predicate-constraint forces rows to exist (``kl > 0``), those rows may
legitimately live *outside* the query region.  We therefore add a
zero-objective slack allocation per such constraint instead of forcing the
mandatory rows into query-relevant cells, which keeps both bound directions
sound (the feasible region is a superset of the true one).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, replace

from ..exceptions import QueryDeadlineError, SolverError
from ..faults import Deadline, current_deadline, deadline_scope
from ..obs.metrics import get_registry
from ..obs.trace import get_tracer
from ..plan.ir import BoundPlan, BoundQuery, build_plan
from ..plan.passes import (ObservedCellStatistics, ShardLoadMemo,
                           default_passes, optimize_plan)
from ..plan.program import BoundProgram, compile_plan
from ..plan.sharding import default_shard_strategy
from ..relational.aggregates import AggregateFunction
from ..solvers.milp import MILPBackend
from .cells import (
    CellDecomposition,
    DecompositionStrategy,
    decompose_cached,
)
from .pcset import PredicateConstraintSet
from .predicates import Predicate
from .ranges import ResultRange

__all__ = ["ResultRange", "PCBoundSolver", "BoundOptions", "BoundExplanation",
           "CellAllocation"]

_INF = float("inf")


@dataclass
class BoundOptions:
    """Tuning knobs for :class:`PCBoundSolver`.

    The first block configures decomposition and solving; the second block
    configures the plan pipeline itself:

    ``cell_budget``
        Worst-case cell count above which the strategy-selection pass trades
        exactness for an early-stopped (still sound, possibly looser)
        enumeration.  ``None`` (default) always enumerates exactly.
    ``optimize``
        Run the bound-preserving optimizer passes (region pruning, duplicate
        merging, strategy selection).  Disabling executes the raw plan.
    ``program_reuse``
        Patch parameters into compiled program skeletons (default).  When
        disabled, every solve rebuilds the MILP from scratch — the
        pre-pipeline behaviour, kept as an equivalence/benchmark baseline.

    The third block configures parallel fan-out and verification
    (see :mod:`repro.parallel`):

    ``solve_workers``
        When > 1, queries are sharded onto a worker pool of this width
        through the plan pipeline's sharding pass: multi-component
        constraint sets split into per-component programs (ranges merged
        exactly), and one-component sets split by query region (cell
        enumeration fanned out, then merged into the serial-identical
        program).  ``None`` (and ``1``) keep the serial single-program path.
    ``shard_strategy``
        Which sharding strategy the pass prefers: ``"auto"`` (component
        splitting when the overlap graph shards, region splitting for
        expensive one-component plans), ``"component"``, or ``"region"``.
        Defaults to the ``REPRO_SHARD_STRATEGY`` environment toggle (the
        region-preferred CI leg) falling back to ``"auto"``.
    ``parallel_mode``
        Pool flavour for the fan-out: ``"thread"`` (default, safe for every
        backend), ``"process"`` (real CPU scale-out; requires the backend's
        ``process_safe`` capability flag), or ``"auto"``.
    ``verify_backend``
        When set, every bound is additionally solved on this second registry
        backend and the two ranges are intersected; disjoint ranges raise
        :class:`~repro.exceptions.DisjointRangeError` (the cross-backend
        alarm).  Must name a backend different from ``milp_backend`` to be
        a meaningful oracle, though equal names are tolerated.
    ``solve_batch_size``
        Fixed batch size for the batched multi-solve kernel and the pool's
        batched task kinds (``--solve-batch-size`` on the CLI).  ``None``
        (default) sizes batches adaptively from pool depth and the
        observed-density feed; the ``REPRO_SOLVE_BATCH_SIZE`` environment
        override wins over this field so one variable steers parent and
        worker processes alike.  Like ``parallel_mode``, this knob is
        excluded from option fingerprints: batched solves are bit-identical
        to per-cell solves, so it can never change a range.

    The fourth block configures fault tolerance (see :mod:`repro.faults`):

    ``deadline_seconds``
        Wall-clock budget per :meth:`PCBoundSolver.bound` call
        (``--deadline`` on the CLI).  On expiry the fan-out stops
        dispatching, abandons in-flight work, and raises
        :class:`~repro.exceptions.QueryDeadlineError` carrying partial
        progress.  Under the service the scope opens at admission, so time
        spent queued *shrinks* the execution budget.  Excluded from option
        fingerprints like ``parallel_mode``: it changes failure behaviour,
        never a returned range.
    ``degrade``
        ``"worst-case"`` opts the component-sharded aggregates into
        graceful degradation: a shard whose solve dies repeatedly or runs
        past the deadline contributes its solver-free worst-case range
        (:meth:`~repro.plan.program.BoundProgram.worst_case_range`) instead
        of failing the query.  The merged range is still sound — a superset
        of the exact range — and the result's statistics are stamped with
        ``degraded_shards``.  *Included* in option fingerprints: it can
        change returned ranges.
    """

    strategy: DecompositionStrategy = DecompositionStrategy.DFS_REWRITE
    milp_backend: str = MILPBackend.SCIPY
    early_stop_depth: int | None = None
    check_closure: bool = True
    avg_tolerance: float = 1e-6
    avg_max_iterations: int = 64
    cell_budget: int | None = None
    optimize: bool = True
    program_reuse: bool = True
    solve_workers: int | None = None
    parallel_mode: str = "thread"
    verify_backend: str | None = None
    shard_strategy: str = field(default_factory=default_shard_strategy)
    solve_batch_size: int | None = None
    deadline_seconds: float | None = None
    degrade: str | None = None


@dataclass(frozen=True)
class CellAllocation:
    """One cell's share of the worst-case allocation behind a bound."""

    covering_constraints: tuple[str, ...]
    rows_allocated: float
    per_row_value: float

    @property
    def contribution(self) -> float:
        return self.rows_allocated * self.per_row_value


@dataclass(frozen=True)
class BoundExplanation:
    """Why a bound takes the value it does (the optimal MILP allocation).

    ``allocations`` lists every cell that received rows in the worst-case
    instance together with its per-row value; ``saturated_constraints`` names
    the predicate-constraints whose frequency upper bound is fully used —
    tightening any of those is what would tighten the bound.
    """

    aggregate: AggregateFunction
    attribute: str | None
    bound: float
    allocations: tuple[CellAllocation, ...]
    saturated_constraints: tuple[str, ...]

    def summary(self) -> str:
        lines = [f"{self.aggregate.value} upper bound = {self.bound}"]
        for allocation in self.allocations:
            lines.append(
                f"  {allocation.rows_allocated:.0f} rows x {allocation.per_row_value} "
                f"in cell covered by {', '.join(allocation.covering_constraints)}")
        if self.saturated_constraints:
            lines.append("  saturated frequency constraints: "
                         + ", ".join(self.saturated_constraints))
        return "\n".join(lines)


class PCBoundSolver:
    """Computes result ranges for one predicate-constraint set.

    Parameters
    ----------
    pcset, options:
        The constraint set and tuning knobs.
    decomposition_cache:
        Optional shared cache (any object with ``get_or_compute(key,
        factory)``, e.g. :class:`repro.service.LRUCache`).  When given,
        decompositions are stored there under a content-derived namespace so
        equal constraint sets share work across solvers and threads; when
        omitted, the solver keeps a private per-instance dict (single-
        threaded use).
    cache_namespace:
        Overrides the namespace used inside a shared cache.  Defaults to a
        structural key derived from the constraint set's content and the
        decomposition knobs, which is always sound; the service layer passes
        its fingerprint-based namespace instead.
    program_cache:
        Optional shared cache for compiled :class:`BoundProgram` objects
        (same protocol as ``decomposition_cache``).  When omitted, programs
        are cached in a private per-instance dict.
    worker_pool:
        Optional long-lived :class:`~repro.parallel.pool.WorkerPool` the
        sharded fan-out borrows instead of spinning a per-call executor
        (the service layer passes its own pool).  When omitted and
        ``options.solve_workers > 1``, a process-global shared pool is
        borrowed.
    cell_statistics:
        Optional :class:`~repro.plan.passes.ObservedCellStatistics` feed
        the strategy-selection pass consults for adaptive cell budgeting;
        the solver records every fresh decomposition into it.  Defaults to
        a private per-solver feed; the service shares one across sessions.
    shard_loads:
        Optional :class:`~repro.plan.passes.ShardLoadMemo` feeding observed
        per-shard cell loads back into region cut placement across
        requests; every pooled region decomposition records its measured
        slice loads into it.  Defaults to a private per-solver memo; the
        service shares one across sessions (like ``cell_statistics``).
    """

    def __init__(self, pcset: PredicateConstraintSet,
                 options: BoundOptions | None = None,
                 decomposition_cache=None,
                 cache_namespace: object = None,
                 program_cache=None,
                 worker_pool=None,
                 cell_statistics: ObservedCellStatistics | None = None,
                 shard_loads: ShardLoadMemo | None = None):
        self._pcset = pcset
        self._options = options or BoundOptions()
        self._shared_cache = decomposition_cache
        self._cache_namespace = cache_namespace
        self._program_cache = program_cache
        self._worker_pool = worker_pool
        self._cell_statistics = cell_statistics or ObservedCellStatistics()
        self._shard_loads = shard_loads or ShardLoadMemo()
        self._decomposition_cache: dict[object, CellDecomposition] = {}
        self._decomposition_locks: dict[object, threading.Lock] = {}
        self._resolved_depths: dict[tuple, int | None] = {}
        self._local_programs: dict[object, BoundProgram] = {}
        self._local_program_locks: dict[object, threading.Lock] = {}
        self._sharded_plans: dict[tuple, object] = {}
        self._decompositions_computed = 0
        self._decomposition_solver_calls = 0
        self._programs_compiled = 0
        self._counter_lock = threading.Lock()
        self._program_lock = threading.Lock()
        self._verify_solver: PCBoundSolver | None = None

    # ------------------------------------------------------------------ #
    # Pickling (process-pool fan-out)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Locks are dropped and rebuilt; shared caches do not cross processes.

        A worker process receives the solver with its *private* program and
        decomposition caches intact (warm compiled skeletons travel), but
        with any shared LRU caches replaced by ``None`` — a cache shared by
        reference cannot span processes, and silently pickling a snapshot
        would masquerade as shared state.  The worker falls back to private
        caching, which is correct, merely less deduplicated.
        """
        state = dict(self.__dict__)
        state["_shared_cache"] = None
        state["_program_cache"] = None
        state["_worker_pool"] = None
        state["_cell_statistics"] = None
        state["_shard_loads"] = None
        state["_decomposition_locks"] = {}
        state["_local_program_locks"] = {}
        del state["_counter_lock"]
        del state["_program_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._counter_lock = threading.Lock()
        self._program_lock = threading.Lock()
        self._cell_statistics = ObservedCellStatistics()
        self._shard_loads = ShardLoadMemo()

    @property
    def pcset(self) -> PredicateConstraintSet:
        return self._pcset

    @property
    def options(self) -> BoundOptions:
        return self._options

    @property
    def worker_pool(self):
        """The injected worker pool, if any (None means borrow the shared one)."""
        return self._worker_pool

    @property
    def cell_statistics(self) -> ObservedCellStatistics | None:
        """The adaptive cell-count feed strategy selection consults."""
        return self._cell_statistics

    @property
    def shard_loads(self) -> ShardLoadMemo:
        """The per-shard observed-load feed region cut placement consults."""
        return self._shard_loads

    def attach_program_cache(self, cache) -> None:
        """Swap in a program cache (the worker-pool warm-cache handshake).

        Pool workers receive solvers whose shared caches were dropped at the
        pickle boundary; attaching the worker's own cache here is what lets
        programs the parent pre-shipped (under :meth:`program_key` /
        :meth:`shard_program_key` keys) satisfy this solver's lookups.
        """
        self._program_cache = cache

    def program_key(self, region: Predicate | None = None,
                    attribute: str | None = None) -> tuple:
        """The content-derived cache key for the (region, attribute) program.

        Stable across processes (fingerprint namespace + execution knobs),
        which is what lets the worker pool address warm worker-side caches
        with the parent's keys.
        """
        return self._program_key(region, attribute)

    def resolved_early_stop_depth(self, region: Predicate | None = None,
                                  attribute: str | None = None) -> int | None:
        """The pair's pinned early-stop depth (resolving it on first ask).

        The worker pool ships this alongside each query so worker-side
        solvers can :meth:`pin_early_stop_depth` to the parent's decision —
        without it, a worker whose density feed diverged from the parent's
        would resolve adaptive pairs differently and compute mismatched
        program keys.
        """
        return self._resolved_early_stop_depth(region, attribute)

    def pin_early_stop_depth(self, region: Predicate | None,
                             attribute: str | None,
                             depth: int | None) -> None:
        """Adopt a parent solver's resolved adaptive depth for one pair.

        The worker-side half of the handshake described in
        :meth:`resolved_early_stop_depth`.  First pin wins (matching the
        parent-side memo semantics); a no-op outside adaptive budgeting,
        where the depth is already determined by the options.
        """
        options = self._options
        if (not options.optimize or options.cell_budget is None
                or options.early_stop_depth is not None):
            return
        with self._program_lock:
            self._resolved_depths.setdefault((region, attribute), depth)

    def shard_program_key(self, shard, region: Predicate | None,
                          attribute: str | None) -> tuple:
        """The cache key for one shard's program (program key + shard token)."""
        return self._program_key(region, attribute) + shard.cache_token()

    def has_cached_program(self, region: Predicate | None = None,
                           attribute: str | None = None,
                           shard=None) -> bool:
        """Whether the pair's (or one shard's) compiled program is warm.

        Admission pricing consults this to discount queries that will only
        patch parameters into an existing skeleton — passing ``shard``
        checks the shard-token-extended key that component-sharded
        execution actually populates, instead of the unsharded pair key it
        never compiles.  The lookup peeks: it must not perturb cache
        statistics or LRU recency, and it never compiles anything.
        """
        if self._program_cache is not None:
            key = self._program_key(region, attribute)
            if shard is not None:
                key = key + shard.cache_token()
            peek = getattr(self._program_cache, "peek",
                           self._program_cache.get)
            return peek(key) is not None
        private_key = ((region, attribute) if shard is None
                       else (region, attribute, shard.cache_token()))
        with self._program_lock:
            return private_key in self._local_programs

    @property
    def decompositions_computed(self) -> int:
        """How many decompositions this solver actually ran (cache misses).

        Includes the verification solver's work when cross-backend
        verification is active — the observable stays "what did answering
        through this facade cost", whichever internal solver paid it.
        """
        return self._decompositions_computed + (
            0 if self._verify_solver is None
            else self._verify_solver.decompositions_computed)

    @property
    def decomposition_solver_calls(self) -> int:
        """Cumulative satisfiability-solver calls across fresh decompositions.

        Cache hits (shared or private) leave this counter untouched — it is
        the observable the service's acceptance tests pin down: answering a
        repeated query must not move it.
        """
        return self._decomposition_solver_calls + (
            0 if self._verify_solver is None
            else self._verify_solver.decomposition_solver_calls)

    @property
    def programs_compiled(self) -> int:
        """How many bound programs this solver compiled (program-cache misses)."""
        return self._programs_compiled + (
            0 if self._verify_solver is None
            else self._verify_solver.programs_compiled)

    # ------------------------------------------------------------------ #
    # Public bound API
    # ------------------------------------------------------------------ #
    def bound(self, aggregate: AggregateFunction, attribute: str | None = None,
              region: Predicate | None = None,
              known_sum: float = 0.0, known_count: float = 0.0) -> ResultRange:
        """The result range of ``aggregate(attribute)`` over the missing rows.

        ``known_sum`` / ``known_count`` describe the observed partition and
        are only used by AVG (whose bound depends jointly on both).

        Execution routes through up to three paths, all governed by the
        options: the serial compiled program (default), the sharded fan-out
        (``solve_workers > 1`` and the plan splits into independent
        components), and — orthogonally — cross-backend verification
        (``verify_backend``), which intersects the range with a second
        backend's and alarms on disagreement.
        """
        if aggregate.needs_attribute and attribute is None:
            raise SolverError(f"{aggregate.value} bounds require an attribute")
        tracer = get_tracer()
        try:
            with self._deadline_scope(), tracer.span("bound"):
                tracer.annotate(aggregate=aggregate.value)
                closed = self._is_closed(region)
                result = self._bound_missing(aggregate, attribute, region,
                                             known_sum, known_count)
                if self._options.verify_backend is not None:
                    with tracer.span("bound.verify"):
                        result = self._cross_check(result, aggregate,
                                                   attribute, region,
                                                   known_sum, known_count)
                if not closed:
                    result = self._widen_for_open_world(result, aggregate)
                return result
        except QueryDeadlineError:
            get_registry().counter("queries.deadline_exceeded").inc()
            raise

    def _deadline_scope(self):
        """The deadline scope one bound call runs under.

        Creates a fresh :class:`~repro.faults.Deadline` from
        ``options.deadline_seconds`` only when no ambient deadline is
        already installed — the service opens its scope at admission time,
        and restarting the clock here would hand a queued query its full
        budget back.
        """
        seconds = self._options.deadline_seconds
        if seconds is None or current_deadline() is not None:
            return deadline_scope(None)
        return deadline_scope(Deadline(seconds))

    def _bound_missing(self, aggregate: AggregateFunction,
                       attribute: str | None, region: Predicate | None,
                       known_sum: float, known_count: float) -> ResultRange:
        """The closed-world missing-partition range, serial or sharded."""
        tracer = get_tracer()
        workers = self._options.solve_workers
        if workers is not None and workers > 1:
            from ..parallel.pool import in_pool_thread, in_worker
            from ..plan.sharding import SHARDABLE_AGGREGATES

            # Inside a pool worker — process or thread — the fan-out IS the
            # pool; sharding again would run every per-shard solve inline
            # (or spawn pools from workers), multiplying cost for zero
            # concurrency, so pooled analyzers degrade to the serial path.
            if not in_worker() and not in_pool_thread():
                with tracer.span("shard.plan"):
                    sharded = self.sharded_plan(region, attribute,
                                                max_shards=workers)
                    tracer.annotate(strategy=sharded.strategy,
                                    shards=len(sharded))
                if sharded.is_sharded and sharded.strategy == "component":
                    if aggregate in SHARDABLE_AGGREGATES:
                        with tracer.span("solve.sharded"):
                            tracer.annotate(shards=len(sharded))
                            return self._bound_sharded(sharded, aggregate,
                                                       attribute, region,
                                                       workers)
                    if aggregate is AggregateFunction.AVG:
                        with tracer.span("solve.avg_sharded"):
                            tracer.annotate(shards=len(sharded))
                            return self._bound_avg_sharded(
                                sharded, attribute, region, known_sum,
                                known_count, workers)
                # Region-sharded plans deliberately fall through: the serial
                # program path below compiles against the pool-merged
                # decomposition (see _decompose_plan), so every aggregate —
                # AVG included — executes on the serial-identical program
                # while the enumeration work fanned out.
        program = self.program(region, attribute)
        with tracer.span("solve.serial"):
            from ..solvers.batching import batching_enabled

            if batching_enabled():
                # The batched kernel path — one skeleton lookup, grouped
                # (variant, sense) solves.  Bit-identical to program.bound.
                return program.bound_batch(
                    [(aggregate, known_sum, known_count)])[0]
            return program.bound(aggregate, known_sum=known_sum,
                                 known_count=known_count)

    def borrow_pool(self, workers: int):
        """The worker pool the fan-out runs on: the injected (service-owned)
        pool when one was supplied, else a process-global shared pool —
        either way long-lived, so repeated sharded solves never pay pool
        start-up or re-ship warm programs.

        The ``process_safe`` capability gate applies to injected pools too:
        a service-owned process pool cannot run a backend whose state cannot
        cross the process boundary, so such solvers borrow a shared thread
        pool instead (the same fallback :class:`~repro.parallel.pool.
        WorkerPool` applies when it knows the backend at construction).
        """
        from ..parallel.pool import shared_pool
        from ..solvers.registry import backend_capabilities

        backend = self._options.milp_backend
        pool = self._worker_pool
        if pool is not None:
            if (pool.mode != "process"
                    or backend_capabilities(backend).process_safe):
                return pool
            return shared_pool(mode="thread", max_workers=workers)
        return shared_pool(mode=self._options.parallel_mode,
                           max_workers=workers, backend=backend)

    def _keyed_shard_programs(self, sharded, region: Predicate | None,
                              attribute: str | None) -> list[tuple]:
        """(pool key, compiled program) per shard, parent-cache warm."""
        return [(self.shard_program_key(shard, region, attribute),
                 self.shard_program(shard, region, attribute))
                for shard in sharded]

    def _bound_sharded(self, sharded, aggregate: AggregateFunction,
                       attribute: str | None, region: Predicate | None,
                       workers: int) -> ResultRange:
        """Fan the per-shard programs out over the pool and merge the ranges.

        With ``degrade="worst-case"`` the fan-out is failure-tolerant: each
        shard that times out, dies repeatedly, or errors substitutes its
        solver-free worst-case range — sound, just looser — and the merged
        statistics are stamped with the degraded shard positions.
        """
        from ..plan.sharding import (
            merge_shard_ranges,
            merge_shard_statistics,
        )

        degrade = self._options.degrade
        if degrade is not None and degrade != "worst-case":
            raise SolverError(
                f"unknown degrade policy {degrade!r}; expected 'worst-case'")
        keyed = self._keyed_shard_programs(sharded, region, attribute)
        pool = self.borrow_pool(workers)
        degraded: list[int] = []
        if degrade == "worst-case":
            collected, failures = pool.solve_programs_resilient(keyed,
                                                                aggregate)
            endpoints = []
            for position, (_key, program) in enumerate(keyed):
                triple = collected.get(position)
                if triple is None:
                    fallback = program.worst_case_range(aggregate)
                    triple = (fallback.lower, fallback.upper, fallback.closed)
                    degraded.append(position)
                endpoints.append(triple)
            if degraded:
                tracer = get_tracer()
                tracer.annotate(degraded_shards=tuple(degraded))
                get_registry().counter("queries.degraded").inc()
        else:
            endpoints = pool.solve_programs(keyed, aggregate)
        ranges = [ResultRange(lower, upper, aggregate, attribute, closed=closed)
                  for lower, upper, closed in endpoints]
        # Statistics come from the parent's shard programs, not the worker
        # results: workers return bare endpoints, and the parent compiled
        # (or cache-loaded) every shard program anyway.
        statistics = merge_shard_statistics(
            program.decomposition.statistics for _, program in keyed)
        statistics.degraded_shards = tuple(degraded)
        return merge_shard_ranges(aggregate, ranges, attribute,
                                  statistics=statistics)

    def _bound_avg_sharded(self, sharded, attribute: str | None,
                           region: Predicate | None, known_sum: float,
                           known_count: float, workers: int) -> ResultRange:
        """AVG across shards: the pooled cross-shard binary search.

        Mirrors :meth:`BoundProgram._bound_avg` over the union of the shard
        programs' active cells (the shard cells partition the full
        program's cells, so the edge cases and the search interval are
        identical), then runs the probe loop through the pool — one
        reduction of per-shard ``value − target`` optima per iteration
        (:func:`repro.parallel.pool.sharded_avg_range`).
        """
        import math as _math

        from ..parallel.pool import sharded_avg_range
        from ..plan.sharding import merge_shard_statistics

        aggregate = AggregateFunction.AVG
        keyed = self._keyed_shard_programs(sharded, region, attribute)
        statistics = merge_shard_statistics(
            program.decomposition.statistics for _, program in keyed)

        def result(lower, upper):
            return ResultRange(lower, upper, aggregate, attribute,
                               statistics=statistics)

        active = [profile for _, program in keyed
                  for profile in program.active_profiles]
        if not active:
            if known_count > 0:
                average = known_sum / known_count
                return result(average, average)
            return result(None, None)
        uppers = [profile.value_upper for profile in active]
        lowers = [profile.value_lower for profile in active]
        if any(_math.isinf(value) for value in uppers + lowers):
            return result(-_INF, _INF)
        mandatory = any(program.pcset.has_mandatory_rows()
                        for _, program in keyed)
        if not mandatory and known_count == 0:
            return result(min(lowers), max(uppers))
        known = [known_sum / known_count] if known_count else []
        high_start = max(uppers + known)
        low_start = min(lowers + known)
        lower, upper = sharded_avg_range(
            self.borrow_pool(workers), keyed, known_sum, known_count,
            low_start, high_start,
            tolerance=self._options.avg_tolerance,
            max_iterations=self._options.avg_max_iterations)
        return result(lower, upper)

    def _cross_check(self, result: ResultRange, aggregate: AggregateFunction,
                     attribute: str | None, region: Predicate | None,
                     known_sum: float, known_count: float) -> ResultRange:
        """Solve on the verify backend and intersect (alarm on disjoint)."""
        from ..parallel.verify import cross_check_ranges

        verifier = self._verification_solver()
        secondary = verifier._bound_missing(aggregate, attribute, region,
                                            known_sum, known_count)
        label = f"{aggregate.value}({attribute or '*'})"
        return cross_check_ranges(result, secondary,
                                  self._options.milp_backend,
                                  self._options.verify_backend or "",
                                  context=label)

    def _verification_solver(self) -> "PCBoundSolver":
        """A sibling solver pinned to the verify backend, sharing the caches.

        The decomposition namespace excludes the MILP backend, so the
        verifier reuses every cached decomposition; its programs key under
        their own backend name and never collide with the primary's.
        Verification runs serially — fan-out on the oracle path would only
        obscure which backend produced a bad range.
        """
        with self._program_lock:
            if self._verify_solver is None:
                options = replace(self._options,
                                  milp_backend=self._options.verify_backend,
                                  verify_backend=None,
                                  solve_workers=None)
                self._verify_solver = PCBoundSolver(
                    self._pcset, options,
                    decomposition_cache=self._shared_cache,
                    cache_namespace=self._cache_namespace,
                    program_cache=self._program_cache,
                    cell_statistics=self._cell_statistics)
            return self._verify_solver

    def explain(self, aggregate: AggregateFunction, attribute: str | None = None,
                region: Predicate | None = None) -> BoundExplanation:
        """Explain the *upper* bound of a COUNT or SUM query.

        Returns the optimal worst-case allocation (how many rows are placed
        in which cell, at what per-row value) and the predicate-constraints
        whose frequency capacity that allocation exhausts.  Only COUNT and
        SUM are supported — their bounds come directly from one MILP solve.
        Constraint names refer to the optimized plan, so merged duplicates
        appear under their combined ``a&b`` name.
        """
        if aggregate not in (AggregateFunction.COUNT, AggregateFunction.SUM):
            raise SolverError("explain() supports COUNT and SUM bounds only")
        if aggregate is AggregateFunction.SUM and attribute is None:
            raise SolverError("SUM explanations require an attribute")
        program = self.program(region, attribute)
        profiles = program.profiles
        if not profiles:
            return BoundExplanation(aggregate, attribute, 0.0, (), ())
        coefficients = {
            profile.index: (1.0 if aggregate is AggregateFunction.COUNT
                            else profile.value_upper)
            for profile in profiles
        }
        solution = program.solve_for_explanation(coefficients).raise_for_status()
        assert solution.objective is not None

        pcset = program.pcset
        allocations = []
        allocated_per_constraint = {index: 0.0 for index in range(len(pcset))}
        for profile in profiles:
            rows = solution.values.get(f"x{profile.index}", 0.0)
            if rows <= 0:
                continue
            names = tuple(pcset[i].name for i in sorted(profile.covering))
            allocations.append(CellAllocation(names, rows,
                                              coefficients[profile.index]))
            for constraint_index in profile.covering:
                allocated_per_constraint[constraint_index] += rows
        saturated = tuple(
            pcset[index].name
            for index, allocated in allocated_per_constraint.items()
            if allocated >= pcset[index].max_rows() - 1e-9
            and pcset[index].max_rows() > 0)
        return BoundExplanation(aggregate, attribute, solution.objective,
                                tuple(allocations), saturated)

    # ------------------------------------------------------------------ #
    # The pipeline: plan -> optimize -> compile
    # ------------------------------------------------------------------ #
    def plan(self, query) -> BoundPlan:
        """The (optimized) logical plan for anything query-shaped.

        Introspection entry point: ``solver.plan(query).describe()`` shows
        which constraints survive pruning/merging and which enumeration
        strategy the compiled program will use.
        """
        tracer = get_tracer()
        with tracer.span("plan"):
            plan = build_plan(query, self._pcset, self._options)
            if self._options.optimize:
                with tracer.span("plan.optimize"):
                    plan = optimize_plan(plan,
                                         default_passes(self._cell_statistics))
                    plan = self._pin_adaptive_depth(plan)
            tracer.annotate(constraints=len(plan.pcset))
        return plan

    def _pin_adaptive_depth(self, plan: BoundPlan) -> BoundPlan:
        """First resolution wins: pin a pair's adaptive early-stop depth.

        Under adaptive budgeting the strategy-selection decision depends on
        the observed-density feed, which keeps learning; without pinning,
        the same (region, attribute) pair could compile to different depths
        over time, making cache keys unstable and parent/worker keys
        diverge.  The first resolved depth for a pair is memoized (plain
        data — it travels in the pickle to pool workers) and every later
        plan for that pair is amended to match.
        """
        options = self._options
        if options.cell_budget is None or options.early_stop_depth is not None:
            return plan
        key = (plan.query.region, plan.query.attribute)
        with self._program_lock:
            pinned = self._resolved_depths.setdefault(key,
                                                      plan.early_stop_depth)
        if pinned == plan.early_stop_depth:
            return plan
        return plan.amended(early_stop_depth=pinned).annotated(
            f"strategy-selection: depth pinned to this pair's first "
            f"resolution ({pinned}) for cache-key stability")

    def program(self, region: Predicate | None = None,
                attribute: str | None = None) -> BoundProgram:
        """The compiled program for a (region, attribute) pair, cached.

        One program answers every aggregate over the pair, so the cache key
        ignores the aggregate.  With a shared program cache the per-key
        locking inside ``get_or_compute`` dedupes concurrent compilations;
        the private fallback mirrors that per-key scheme, so distinct pairs
        compile in parallel (the batch executor's warm phase relies on it)
        while same-key racers share one compile.
        """
        return self._cached_program(
            (region, attribute),
            lambda: self._program_key(region, attribute),
            lambda: self._compile(region, attribute))

    def sharded_plan(self, region: Predicate | None = None,
                     attribute: str | None = None,
                     max_shards: int | None = None):
        """The :class:`~repro.plan.ShardedBoundPlan` for a (region,
        attribute) pair: the optimized plan run through the sharding pass
        (:func:`~repro.plan.sharding.select_sharding`), capped at
        ``max_shards`` (defaulting to ``options.solve_workers``).  The
        strategy preference comes from ``options.shard_strategy``; a plan no
        strategy can split comes back with one shard (``is_sharded`` False).

        Sharded plans are memoized per (region, attribute, max_shards):
        building one runs the optimizer plus a quadratic predicate-overlap
        scan, which a warm repeated query must not pay again — and under
        ``auto`` the region-splitting decision consults the mutable
        observed-density feed, so memoization also pins the first decision
        (the same stability argument as the adaptive early-stop memo).
        Plans and the shard layouts they induce are immutable, so the
        cached object is safe to share across threads.

        The memo is *version-aware* against the shard-load feedback memo
        (:class:`~repro.plan.passes.ShardLoadMemo`): each cached entry
        remembers the memo version it was cut under, and a later request
        after new load observations re-runs cut placement so the critical
        shard shrinks on the next query.  Re-cutting moves shard
        boundaries, never merged decomposition content, so the pinned
        ``auto`` decision and bit-identical results both survive.
        """
        from ..plan.sharding import select_sharding

        if max_shards is None:
            max_shards = self._options.solve_workers
        key = (region, attribute, max_shards)
        version = self._shard_loads.version
        with self._program_lock:
            cached = self._sharded_plans.get(key)
        if cached is not None and cached[0] == version:
            return cached[1]
        aggregate = (AggregateFunction.COUNT if attribute is None
                     else AggregateFunction.SUM)
        plan = self.plan(BoundQuery(aggregate, attribute, region))
        sharded = select_sharding(plan, max_shards=max_shards,
                                  cell_statistics=self._cell_statistics,
                                  shard_loads=self._shard_loads)
        with self._program_lock:
            self._sharded_plans[key] = (version, sharded)
        return sharded

    def shard_program(self, shard, region: Predicate | None,
                      attribute: str | None) -> BoundProgram:
        """The compiled program for one plan shard, cached like any program.

        Shard programs live in the same (shared or private) cache as their
        unsharded siblings: the key is the ordinary (namespace, region,
        attribute) program key extended with the shard's
        :meth:`~repro.parallel.PlanShard.cache_token`, so repeated sharded
        queries patch parameters into warm per-shard skeletons exactly like
        the serial path does.
        """
        token = shard.cache_token()
        return self._cached_program(
            (region, attribute, token),
            lambda: self._program_key(region, attribute) + token,
            lambda: self._compile_shard(shard, region))

    def _cached_program(self, private_key, shared_key_factory,
                        factory) -> BoundProgram:
        """Per-key deduplicated program caching (shared LRU or private dict)."""
        if self._program_cache is not None:
            return self._program_cache.get_or_compute(
                shared_key_factory(), factory)
        key = private_key
        with self._program_lock:
            program = self._local_programs.get(key)
            if program is not None:
                return program
            key_lock = self._local_program_locks.setdefault(key, threading.Lock())
        with key_lock:
            with self._program_lock:
                program = self._local_programs.get(key)
            if program is None:
                program = factory()
                with self._program_lock:
                    self._local_programs[key] = program
                    self._local_program_locks.pop(key, None)
            return program

    def _program_key(self, region: Predicate | None,
                     attribute: str | None) -> tuple:
        """The shared-cache key for one compiled program.

        The decomposition namespace covers the constraint set's content and
        the enumeration knobs; the remaining execution knobs (backend, AVG
        search parameters, pipeline toggles) are appended explicitly because
        they change the compiled artifact without changing decompositions.
        Under adaptive budgeting the *resolved* early-stop depth joins the
        key, so a cached program can never alias a differently-budgeted
        compile of the same pair (see :meth:`_resolved_early_stop_depth`).
        """
        options = self._options
        return ("program", self._namespace(), options.milp_backend,
                options.avg_tolerance, options.avg_max_iterations,
                options.optimize, options.cell_budget, options.program_reuse,
                self._resolved_early_stop_depth(region, attribute),
                region, attribute)

    def _resolved_early_stop_depth(self, region: Predicate | None,
                                   attribute: str | None) -> int | None:
        """The early-stop depth the compiled program will actually use.

        Deterministic straight from the options in every configuration
        except adaptive budgeting (a cell budget with no explicit depth),
        where strategy selection consults the mutable observed-density
        feed.  There the decision is resolved by running the optimizer
        **once per (region, attribute) and memoized**, which buys three
        properties at once: cache keys are stable for the solver's lifetime
        (a cached artifact always means exactly one (plan, depth) pair),
        warm key lookups stay tuple-cheap instead of re-running the
        optimizer per call, and — because the memo is plain data that
        *travels in the pickle* — a pool worker computes the same keys as
        the parent for every pair the parent resolved, so pre-shipped warm
        programs are actually found.  Adaptivity still applies to pairs
        first seen after the feed has samples (and to later solvers sharing
        a service feed); already-resolved pairs keep their decision, which
        is sound either way (early stopping only loosens).
        """
        options = self._options
        if (not options.optimize or options.cell_budget is None
                or options.early_stop_depth is not None):
            return options.early_stop_depth
        with self._program_lock:
            if (region, attribute) in self._resolved_depths:
                return self._resolved_depths[(region, attribute)]
        aggregate = (AggregateFunction.COUNT if attribute is None
                     else AggregateFunction.SUM)
        # plan() pins the pair's depth into the memo as a side effect.
        return self.plan(BoundQuery(aggregate, attribute, region)).early_stop_depth

    def _namespace(self) -> object:
        if self._cache_namespace is not None:
            return self._cache_namespace
        from .cells import _structural_namespace

        return _structural_namespace(self._pcset, self._options.strategy,
                                     self._options.early_stop_depth)

    def _compile(self, region: Predicate | None,
                 attribute: str | None) -> BoundProgram:
        # A representative aggregate: the optimizer passes never read it, so
        # the compiled program serves every aggregate over the pair.
        aggregate = (AggregateFunction.COUNT if attribute is None
                     else AggregateFunction.SUM)
        tracer = get_tracer()
        with tracer.span("compile"):
            plan = self.plan(BoundQuery(aggregate, attribute, region))
            decomposition = self._decompose_plan(plan)
            program = compile_plan(
                plan, decomposition,
                avg_tolerance=self._options.avg_tolerance,
                avg_max_iterations=self._options.avg_max_iterations,
                reuse=self._options.program_reuse)
            tracer.annotate(cells=len(decomposition.cells))
        with self._counter_lock:
            self._programs_compiled += 1
        return program

    def _compile_shard(self, shard, region: Predicate | None) -> BoundProgram:
        """Compile one shard's sub-plan into its own program.

        The shard's constraint subset decomposes independently (its cells
        are exactly the full decomposition's cells covered by this shard's
        constraints); under a shared cache the entry is namespaced by the
        shard token so it can never masquerade as the full decomposition of
        the same region.
        """
        plan = shard.plan
        namespace = None
        if self._shared_cache is not None and self._cache_namespace is not None:
            namespace = ("plan-shard", self._cache_namespace,
                         self._options.optimize, self._options.cell_budget,
                         plan.early_stop_depth, shard.cache_token())
        tracer = get_tracer()
        with tracer.span("compile.shard"):
            decomposition = decompose_cached(
                plan.pcset, region,
                strategy=plan.strategy,
                early_stop_depth=plan.early_stop_depth,
                cache=self._shared_cache,
                namespace=namespace,
                on_compute=self._record_decomposition)
            program = compile_plan(
                plan, decomposition,
                avg_tolerance=self._options.avg_tolerance,
                avg_max_iterations=self._options.avg_max_iterations,
                reuse=self._options.program_reuse)
            tracer.annotate(cells=len(decomposition.cells))
        with self._counter_lock:
            self._programs_compiled += 1
        return program

    # ------------------------------------------------------------------ #
    # Closure handling
    # ------------------------------------------------------------------ #
    def _is_closed(self, region: Predicate | None) -> bool:
        if not self._options.check_closure:
            return True
        return self._pcset.is_closed(region)

    @staticmethod
    def _widen_for_open_world(result: ResultRange,
                              aggregate: AggregateFunction) -> ResultRange:
        """Without closure nothing constrains uncovered rows: bounds blow up."""
        lower: float | None
        upper: float | None
        if aggregate is AggregateFunction.COUNT:
            lower, upper = result.lower, _INF
        elif aggregate in (AggregateFunction.SUM, AggregateFunction.AVG):
            lower, upper = -_INF, _INF
        elif aggregate is AggregateFunction.MAX:
            lower, upper = result.lower, _INF
        else:
            lower, upper = -_INF, result.upper
        return ResultRange(lower, upper, result.aggregate, result.attribute,
                           closed=False, statistics=result.statistics)

    # ------------------------------------------------------------------ #
    # Decomposition
    # ------------------------------------------------------------------ #
    def decompose(self, region: Predicate | None = None) -> CellDecomposition:
        """The (cached) cell decomposition for ``region``.

        Public so callers can reuse or pre-warm decompositions — the batch
        executor warms each distinct region once before fanning queries out
        over its thread pool.  Runs through the plan pipeline, so the cells
        are those of the *optimized* constraint set.
        """
        plan = self.plan(BoundQuery(AggregateFunction.COUNT, None, region))
        return self._decompose_plan(plan)

    def _record_decomposition(self, decomposition: CellDecomposition) -> None:
        # Distinct regions can decompose concurrently under a shared cache
        # (the batch executor warms them in parallel), so the read-modify-
        # write on the counters needs a lock to stay exact.
        with self._counter_lock:
            self._decompositions_computed += 1
            self._decomposition_solver_calls += decomposition.statistics.solver_calls
        if self._cell_statistics is not None:
            self._cell_statistics.observe(decomposition.statistics)

    def _region_decomposition_factory(self, plan: BoundPlan):
        """A pool-fanned way to compute ``plan``'s decomposition, or None.

        Returns a zero-argument callable only when the sharding pass chose
        region splitting for this pair (one-component overlap graph, a
        usable partition attribute, fan-out requested and not already
        running inside a pool worker).  The callable produces a
        decomposition *identical* to the inline enumeration — the cell-union
        equality argued in :mod:`repro.plan.sharding` — so it slots into
        :func:`decompose_cached` as a ``compute_override`` without touching
        keys, namespaces or the accounting callback.
        """
        workers = self._options.solve_workers
        if workers is None or workers <= 1:
            return None
        from ..parallel.pool import in_pool_thread, in_worker

        if in_worker() or in_pool_thread():
            return None
        sharded = self.sharded_plan(plan.query.region, plan.query.attribute,
                                    max_shards=workers)
        if sharded.strategy != "region" or not sharded.is_sharded:
            return None
        return lambda: self._pooled_region_decomposition(plan, sharded,
                                                         workers)

    def _pooled_region_decomposition(self, plan: BoundPlan, sharded,
                                     workers: int) -> CellDecomposition:
        """Fan the region shards' enumerations out and union their cells.

        Each task carries its shard's full constraint set and sub-region
        (self-contained, so any worker can run it); routing keys reuse the
        shard program keys, so repeated sharded queries keep their affinity
        workers.  The shard plans inherit the parent's strategy and resolved
        early-stop depth, which is what makes the merged cell set equal the
        serial enumeration under every knob combination.

        **Slice-level reuse.**  Before dispatching, each shard consults the
        shared decomposition cache under its *slice key* (see
        :func:`repro.plan.sharding.slice_cache_keys`): a shard's
        decomposition is exactly the decomposition of its sub-region, so
        slices are keyed like ordinary (namespace, region) entries and a
        query whose region overlaps a previous one recomputes only the
        uncovered slices — the cached ones rejoin via the same
        :func:`merge_shard_decompositions` union, which keeps the merged
        artifact bit-identical to a cold serial enumeration.  Fresh slice
        decompositions are written back so future overlapping regions (and,
        with a persistent tier attached, future processes) reuse them.

        Batch size for the pool's batched shipping comes from the
        observed-density feed: dense constraint sets (heavy per-shard
        enumeration) keep batches small so one task cannot become the
        critical-path straggler, sparse ones batch aggressively.
        """
        from ..obs.metrics import get_registry
        from ..plan.passes import estimated_cell_count
        from ..plan.sharding import merge_shard_decompositions, slice_cache_keys
        from ..solvers.batching import adaptive_batch_size

        region = plan.query.region
        attribute = plan.query.attribute
        shards = list(sharded)
        slice_keys = None
        decompositions: list = [None] * len(shards)
        pending = list(enumerate(shards))
        if self._shared_cache is not None:
            slice_keys = slice_cache_keys(sharded, self._plan_namespace(plan))
            pending = []
            for index, shard in enumerate(shards):
                cached = self._shared_cache.get(slice_keys[index])
                if cached is not None:
                    decompositions[index] = cached
                else:
                    pending.append((index, shard))
            slice_hits = len(shards) - len(pending)
            registry = get_registry()
            if slice_hits:
                registry.counter("cache.slice_hits").inc(slice_hits)
            if pending:
                registry.counter("cache.slice_recomputed").inc(len(pending))
            get_tracer().annotate(slice_hits=slice_hits,
                                  slice_recomputed=len(pending))
        if pending:
            keyed = [(self.shard_program_key(shard, region, attribute),
                      shard.plan.pcset, shard.plan.query.region,
                      shard.plan.strategy, shard.plan.early_stop_depth)
                     for _index, shard in pending]
            pool = self.borrow_pool(workers)
            estimate, _source = estimated_cell_count(plan, self._cell_statistics)
            batch_size = adaptive_batch_size(
                len(keyed), pool.max_workers, estimated_cells=estimate,
                configured=self._options.solve_batch_size)
            fresh = pool.decompose_shards(keyed, batch_size=batch_size)
            for (index, _shard), decomposition in zip(pending, fresh):
                decompositions[index] = decomposition
                if slice_keys is not None:
                    self._shared_cache.put(slice_keys[index], decomposition)
        # Close the feedback loop: record each shard's observed cell load
        # under the *partition* attribute the cuts were placed on (not the
        # aggregate attribute) so the next sharded_plan() for this pair
        # re-cuts with real loads instead of midpoint counts.  Cached slices
        # report their (identical) cell counts too — reuse must not starve
        # the load feed.
        loads = [(shard.bounds, len(decomposition.cells))
                 for shard, decomposition in zip(shards, decompositions)
                 if shard.bounds is not None]
        if loads:
            self._shard_loads.observe(
                region, sharded.shards[0].partition_attribute, loads)
        return merge_shard_decompositions(plan, decompositions)

    def _decompose_plan(self, plan: BoundPlan) -> CellDecomposition:
        tracer = get_tracer()
        with tracer.span("decompose"):
            decomposition = self._decompose_plan_inner(plan)
            tracer.annotate(cells=len(decomposition.cells))
        return decomposition

    def _plan_namespace(self, plan: BoundPlan) -> object:
        """The decomposition-cache namespace for ``plan``'s entries.

        The caller's namespace covers the original constraint set and
        enumeration knobs; the pipeline toggles complete it because they
        decide what actually gets decomposed.  The plan's resolved
        early-stop depth joins explicitly: under adaptive budgeting it
        depends on the observed-density feed, not just on
        (namespace, region), and two plans that enumerate to different
        depths must never share cells.  Whole-region entries and per-slice
        entries share this namespace — a region shard's decomposition *is*
        the decomposition of its sub-region (shard plans inherit the
        parent's constraint set, strategy and depth), so the two entry
        populations may soundly serve each other.
        """
        if self._cache_namespace is not None:
            return ("plan", self._cache_namespace,
                    self._options.optimize, self._options.cell_budget,
                    plan.early_stop_depth)
        from .cells import _structural_namespace

        return _structural_namespace(plan.pcset, plan.strategy,
                                     plan.early_stop_depth)

    def _decompose_plan_inner(self, plan: BoundPlan) -> CellDecomposition:
        region = plan.query.region
        compute_override = self._region_decomposition_factory(plan)
        if self._shared_cache is not None:
            namespace = self._plan_namespace(plan)
            return decompose_cached(
                plan.pcset, region,
                strategy=plan.strategy,
                early_stop_depth=plan.early_stop_depth,
                cache=self._shared_cache,
                namespace=namespace,
                on_compute=self._record_decomposition,
                compute_override=compute_override)
        # Programs for the same region but different attributes can compile
        # concurrently (the batch executor's warm phase), so the private
        # dict needs per-region locking to keep one decomposition per
        # region and exact counters.
        with self._program_lock:
            decomposition = self._decomposition_cache.get(region)
            if decomposition is not None:
                return decomposition
            region_lock = self._decomposition_locks.setdefault(
                region, threading.Lock())
        with region_lock:
            with self._program_lock:
                decomposition = self._decomposition_cache.get(region)
            if decomposition is None:
                decomposition = decompose_cached(
                    plan.pcset, region,
                    strategy=plan.strategy,
                    early_stop_depth=plan.early_stop_depth,
                    on_compute=self._record_decomposition,
                    compute_override=compute_override)
                with self._program_lock:
                    self._decomposition_cache[region] = decomposition
                    self._decomposition_locks.pop(region, None)
            return decomposition
