"""Predicate-constraints: value constraints, frequency constraints and the
three-tuple that combines them with a predicate (paper §3.1).

A :class:`PredicateConstraint` states that, over the unknown partition of a
relation, *every row satisfying the predicate has attribute values inside
the value constraint, and the number of such rows lies inside the frequency
constraint*.  The satisfaction relation ``R |= pi`` of Definition 3.1 is
implemented by :meth:`PredicateConstraint.is_satisfied_by`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..exceptions import ConstraintError
from ..relational.relation import Relation
from .predicates import Predicate

__all__ = ["ValueConstraint", "FrequencyConstraint", "PredicateConstraint",
           "ConstraintViolation"]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class ValueConstraint:
    """Per-attribute value ranges for rows matching a predicate.

    ``nu = {(l1, h1), ..., (lp, hp)}`` in the paper's notation.  Attributes
    not mentioned are unconstrained (their range is the full real line).
    """

    def __init__(self, bounds: Mapping[str, tuple[float, float]] | None = None):
        self._bounds: dict[str, tuple[float, float]] = {}
        for attribute, (low, high) in (bounds or {}).items():
            if low > high:
                raise ConstraintError(
                    f"value constraint on {attribute!r} has low {low} > high {high}"
                )
            self._bounds[attribute] = (float(low), float(high))

    @classmethod
    def unconstrained(cls) -> "ValueConstraint":
        return cls()

    @property
    def bounds(self) -> dict[str, tuple[float, float]]:
        return dict(self._bounds)

    def attributes(self) -> set[str]:
        return set(self._bounds)

    def constrains(self, attribute: str) -> bool:
        return attribute in self._bounds

    def lower(self, attribute: str) -> float:
        """The lower value bound for ``attribute`` (-inf when unconstrained)."""
        return self._bounds.get(attribute, (_NEG_INF, _POS_INF))[0]

    def upper(self, attribute: str) -> float:
        """The upper value bound for ``attribute`` (+inf when unconstrained)."""
        return self._bounds.get(attribute, (_NEG_INF, _POS_INF))[1]

    def interval(self, attribute: str) -> tuple[float, float]:
        return self._bounds.get(attribute, (_NEG_INF, _POS_INF))

    def satisfied_by_row(self, row: Mapping[str, object]) -> bool:
        """Whether a concrete row respects every declared range."""
        for attribute, (low, high) in self._bounds.items():
            if attribute not in row:
                return False
            value = row[attribute]
            if not isinstance(value, (int, float)):
                return False
            if not low <= float(value) <= high:
                return False
        return True

    def intersect(self, other: "ValueConstraint") -> "ValueConstraint":
        """The most restrictive combination of two value constraints.

        Used during cell decomposition: a cell covered by several
        predicate-constraints inherits the tightest range on every attribute.
        The result may be empty on some attribute; we keep the raw
        ``(low, high)`` pair and let the caller decide (an empty value range
        forces the cell's allocation to zero).
        """
        merged: dict[str, tuple[float, float]] = dict(self._bounds)
        for attribute, (low, high) in other._bounds.items():
            if attribute in merged:
                current_low, current_high = merged[attribute]
                merged[attribute] = (max(current_low, low), min(current_high, high))
            else:
                merged[attribute] = (low, high)
        constraint = ValueConstraint()
        constraint._bounds = merged
        return constraint

    def is_empty_on(self, attribute: str) -> bool:
        low, high = self.interval(attribute)
        return low > high

    def widened(self, delta: Mapping[str, float]) -> "ValueConstraint":
        """Return a copy with each attribute's range widened by ``delta``.

        Used by the noise-injection workload (paper §6.3.2) and by users who
        want safety margins on hand-written constraints.
        """
        widened: dict[str, tuple[float, float]] = {}
        for attribute, (low, high) in self._bounds.items():
            amount = float(delta.get(attribute, 0.0))
            widened[attribute] = (low - amount, high + amount)
        return ValueConstraint(widened)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ValueConstraint):
            return NotImplemented
        return self._bounds == other._bounds

    def __hash__(self) -> int:
        return hash(frozenset(self._bounds.items()))

    def __repr__(self) -> str:
        if not self._bounds:
            return "ValueConstraint(unconstrained)"
        parts = ", ".join(
            f"{low} <= {attribute} <= {high}"
            for attribute, (low, high) in sorted(self._bounds.items())
        )
        return f"ValueConstraint({parts})"


@dataclass(frozen=True)
class FrequencyConstraint:
    """Bounds on how many unknown rows match the predicate.

    ``kappa = (kl, ku)`` in the paper: at least ``lower`` and at most
    ``upper`` matching rows.
    """

    lower: int = 0
    upper: int = 0

    def __post_init__(self) -> None:
        if self.lower < 0 or self.upper < 0:
            raise ConstraintError(
                f"frequency bounds must be non-negative, got ({self.lower}, {self.upper})"
            )
        if self.lower > self.upper:
            raise ConstraintError(
                f"frequency lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @classmethod
    def at_most(cls, upper: int) -> "FrequencyConstraint":
        return cls(0, upper)

    @classmethod
    def exactly(cls, count: int) -> "FrequencyConstraint":
        return cls(count, count)

    @classmethod
    def between(cls, lower: int, upper: int) -> "FrequencyConstraint":
        return cls(lower, upper)

    def contains(self, count: int) -> bool:
        return self.lower <= count <= self.upper

    def scaled(self, factor: float) -> "FrequencyConstraint":
        """A copy with both bounds scaled (floor/ceil to stay conservative)."""
        if factor < 0:
            raise ConstraintError("frequency scale factor must be non-negative")
        return FrequencyConstraint(int(math.floor(self.lower * factor)),
                                   int(math.ceil(self.upper * factor)))

    def __repr__(self) -> str:
        return f"({self.lower}, {self.upper})"


@dataclass(frozen=True)
class ConstraintViolation:
    """A single way in which observed rows violated a predicate-constraint."""

    constraint_name: str
    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.constraint_name}] {self.kind}: {self.detail}"


class PredicateConstraint:
    """The paper's three-tuple ``pi = (psi, nu, kappa)``.

    Parameters
    ----------
    predicate:
        Which unknown rows the constraint talks about.
    values:
        Attribute ranges those rows must respect.
    frequency:
        How many such rows may exist.
    name:
        Optional label used in reports and error messages.
    """

    def __init__(self, predicate: Predicate, values: ValueConstraint,
                 frequency: FrequencyConstraint, name: str | None = None):
        self.predicate = predicate
        self.values = values
        self.frequency = frequency
        self.name = name or "pc"

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, predicate: Predicate,
              value_bounds: Mapping[str, tuple[float, float]],
              max_rows: int, min_rows: int = 0,
              name: str | None = None) -> "PredicateConstraint":
        """Terse constructor used throughout the examples and tests."""
        return cls(predicate, ValueConstraint(value_bounds),
                   FrequencyConstraint(min_rows, max_rows), name=name)

    # ------------------------------------------------------------------ #
    # Satisfaction (Definition 3.1)
    # ------------------------------------------------------------------ #
    def is_satisfied_by(self, relation: Relation) -> bool:
        """``R |= pi``: check the definition directly against a relation."""
        return not self.violations(relation)

    def violations(self, relation: Relation) -> list[ConstraintViolation]:
        """All the ways ``relation`` violates this constraint (possibly empty).

        This is the "efficiently testable on historical data" property the
        paper emphasises: users can check whether their constraints held in
        the past before trusting them about the future.
        """
        found: list[ConstraintViolation] = []
        mask = self.predicate.to_expression().evaluate(relation)
        matching = relation.filter(mask)
        count = matching.num_rows
        if not self.frequency.contains(count):
            found.append(ConstraintViolation(
                self.name, "frequency",
                f"{count} matching rows, allowed {self.frequency!r}"))
        for attribute, (low, high) in self.values.bounds.items():
            if attribute not in relation.schema:
                found.append(ConstraintViolation(
                    self.name, "schema",
                    f"value-constrained attribute {attribute!r} missing from relation"))
                continue
            if matching.num_rows == 0:
                continue
            observed_low = matching.column_min(attribute)
            observed_high = matching.column_max(attribute)
            if observed_low < low or observed_high > high:
                found.append(ConstraintViolation(
                    self.name, "value",
                    f"{attribute!r} observed in [{observed_low}, {observed_high}], "
                    f"allowed [{low}, {high}]"))
        return found

    # ------------------------------------------------------------------ #
    # Accessors used by the bounding engine
    # ------------------------------------------------------------------ #
    def max_rows(self) -> int:
        return self.frequency.upper

    def min_rows(self) -> int:
        return self.frequency.lower

    def value_upper(self, attribute: str) -> float:
        """Upper value bound for ``attribute`` considering predicate equalities.

        If the predicate itself pins the attribute to a range (e.g. a
        histogram-style tautology ``a in [2, 4] => a in [2, 4]``), that range
        also bounds the attribute's value even when the value constraint does
        not mention it.
        """
        bound = self.values.upper(attribute)
        predicate_range = self.predicate.range_for(attribute)
        if predicate_range is not None:
            bound = min(bound, predicate_range.high)
        return bound

    def value_lower(self, attribute: str) -> float:
        """Lower value bound for ``attribute`` (see :meth:`value_upper`)."""
        bound = self.values.lower(attribute)
        predicate_range = self.predicate.range_for(attribute)
        if predicate_range is not None:
            bound = max(bound, predicate_range.low)
        return bound

    def rename(self, name: str) -> "PredicateConstraint":
        return PredicateConstraint(self.predicate, self.values, self.frequency, name)

    def __repr__(self) -> str:
        return (f"PredicateConstraint({self.name!r}: {self.predicate!r} => "
                f"{self.values!r}, {self.frequency!r})")
