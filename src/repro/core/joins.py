"""Bounds for aggregate queries over natural joins (paper §5).

Two bounding strategies are implemented:

* :func:`naive_join_bound` — treat the join as a Cartesian product of
  per-relation bounds (§5.1).  Always valid, often very loose, and the
  baseline our experiments compare against.
* :func:`fec_join_bound` — the paper's tighter bound built on Friedgut's
  Generalised Weighted Entropy inequality and a fractional edge cover of the
  join hypergraph (§5.2).  For a COUNT query this reduces to an AGM-style
  bound ``prod_i COUNT_i ** c_i``; for SUM(A) the relation carrying ``A`` is
  pinned with weight 1 and contributes its SUM bound instead of its COUNT
  bound.

Both strategies consume per-relation :class:`JoinRelationSpec` descriptions:
the relation's predicate-constraint set and the join attributes it spans.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..exceptions import JoinBoundError
from ..relational.aggregates import AggregateFunction
from ..solvers.fec import FractionalEdgeCover, JoinHypergraph, solve_fractional_edge_cover
from .bounds import BoundOptions, PCBoundSolver
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = ["JoinRelationSpec", "JoinBound", "naive_join_bound", "fec_join_bound",
           "JoinBoundAnalyzer"]

_INF = float("inf")


@dataclass
class JoinRelationSpec:
    """One relation participating in a natural-join query.

    Parameters
    ----------
    name:
        The relation's name (unique within the join).
    pcset:
        Predicate-constraints describing the relation's (missing) rows.
    join_attributes:
        The attributes this relation contributes to the join hypergraph.
        Attributes with equal names join naturally.
    region:
        Optional per-relation selection predicate pushed into the bound.
    """

    name: str
    pcset: PredicateConstraintSet
    join_attributes: tuple[str, ...]
    region: Predicate | None = None

    def __post_init__(self) -> None:
        if not self.join_attributes:
            raise JoinBoundError(
                f"relation {self.name!r} must declare at least one join attribute"
            )
        self.join_attributes = tuple(self.join_attributes)


@dataclass(frozen=True)
class JoinBound:
    """The result of bounding an aggregate over a join."""

    upper: float
    method: str
    per_relation_counts: dict[str, float] = field(default_factory=dict)
    per_relation_sums: dict[str, float] = field(default_factory=dict)
    edge_cover: FractionalEdgeCover | None = None

    def __str__(self) -> str:
        return f"JoinBound({self.method}: {self.upper})"


def _relation_count_upper(spec: JoinRelationSpec, options: BoundOptions) -> float:
    solver = PCBoundSolver(spec.pcset, options)
    bound = solver.bound(AggregateFunction.COUNT, None, spec.region)
    return bound.upper if bound.upper is not None else _INF


def _relation_sum_upper(spec: JoinRelationSpec, attribute: str,
                        options: BoundOptions) -> float:
    solver = PCBoundSolver(spec.pcset, options)
    bound = solver.bound(AggregateFunction.SUM, attribute, spec.region)
    return bound.upper if bound.upper is not None else _INF


def naive_join_bound(specs: Sequence[JoinRelationSpec],
                     aggregate: AggregateFunction = AggregateFunction.COUNT,
                     attribute: str | None = None,
                     attribute_relation: str | None = None,
                     options: BoundOptions | None = None) -> JoinBound:
    """Cartesian-product bound (paper §5.1).

    For COUNT the bound is the product of per-relation COUNT upper bounds;
    for SUM(A) it is SUM(A)'s bound on its home relation multiplied by the
    COUNT bounds of every other relation.
    """
    _validate_specs(specs)
    options = options or BoundOptions()
    counts = {spec.name: _relation_count_upper(spec, options) for spec in specs}
    sums: dict[str, float] = {}
    if aggregate is AggregateFunction.COUNT:
        upper = _product(counts.values())
    elif aggregate is AggregateFunction.SUM:
        home = _resolve_home_relation(specs, attribute, attribute_relation)
        sums[home.name] = _relation_sum_upper(home, attribute, options)
        upper = sums[home.name]
        for spec in specs:
            if spec.name != home.name:
                upper *= counts[spec.name]
    else:
        raise JoinBoundError(
            f"join bounds support COUNT and SUM, not {aggregate.value}"
        )
    return JoinBound(upper=upper, method="naive", per_relation_counts=counts,
                     per_relation_sums=sums)


def fec_join_bound(specs: Sequence[JoinRelationSpec],
                   aggregate: AggregateFunction = AggregateFunction.COUNT,
                   attribute: str | None = None,
                   attribute_relation: str | None = None,
                   options: BoundOptions | None = None) -> JoinBound:
    """Fractional-edge-cover / GWE bound (paper §5.2).

    The per-relation COUNT (and, for SUM, the home relation's SUM) upper
    bounds are first computed with the single-table machinery of §4; the LP
    then finds the fractional edge cover minimising the certified product
    bound.
    """
    _validate_specs(specs)
    options = options or BoundOptions()
    hypergraph = JoinHypergraph.from_mapping(
        {spec.name: spec.join_attributes for spec in specs})
    counts = {spec.name: _relation_count_upper(spec, options) for spec in specs}
    sums: dict[str, float] = {}

    pinned: str | None = None
    log_sizes: dict[str, float] = {}
    if aggregate is AggregateFunction.SUM:
        home = _resolve_home_relation(specs, attribute, attribute_relation)
        pinned = home.name
        sums[home.name] = _relation_sum_upper(home, attribute, options)
    elif aggregate is not AggregateFunction.COUNT:
        raise JoinBoundError(
            f"join bounds support COUNT and SUM, not {aggregate.value}"
        )

    for spec in specs:
        size = sums[spec.name] if spec.name == pinned else counts[spec.name]
        if size <= 0:
            # A relation bounded at zero rows (or zero sum) forces the whole
            # join (or the whole SUM) to zero.
            return JoinBound(upper=0.0, method="fractional-edge-cover",
                             per_relation_counts=counts, per_relation_sums=sums)
        if math.isinf(size):
            return JoinBound(upper=_INF, method="fractional-edge-cover",
                             per_relation_counts=counts, per_relation_sums=sums)
        log_sizes[spec.name] = math.log(size)

    cover = solve_fractional_edge_cover(hypergraph, log_sizes, pinned_relation=pinned)
    return JoinBound(upper=cover.bound, method="fractional-edge-cover",
                     per_relation_counts=counts, per_relation_sums=sums,
                     edge_cover=cover)


class JoinBoundAnalyzer:
    """Facade for bounding COUNT/SUM aggregates over a natural join."""

    def __init__(self, specs: Sequence[JoinRelationSpec],
                 options: BoundOptions | None = None):
        _validate_specs(specs)
        self._specs = list(specs)
        self._options = options or BoundOptions()

    @property
    def specs(self) -> tuple[JoinRelationSpec, ...]:
        return tuple(self._specs)

    def count_bound(self, method: str = "fec") -> JoinBound:
        """Upper bound on the join cardinality."""
        if method == "naive":
            return naive_join_bound(self._specs, AggregateFunction.COUNT,
                                    options=self._options)
        return fec_join_bound(self._specs, AggregateFunction.COUNT,
                              options=self._options)

    def sum_bound(self, attribute: str, relation: str | None = None,
                  method: str = "fec") -> JoinBound:
        """Upper bound on SUM(attribute) over the join result."""
        if method == "naive":
            return naive_join_bound(self._specs, AggregateFunction.SUM,
                                    attribute=attribute,
                                    attribute_relation=relation,
                                    options=self._options)
        return fec_join_bound(self._specs, AggregateFunction.SUM,
                              attribute=attribute, attribute_relation=relation,
                              options=self._options)

    def compare(self, aggregate: AggregateFunction = AggregateFunction.COUNT,
                attribute: str | None = None,
                relation: str | None = None) -> dict[str, JoinBound]:
        """Both bounds side by side (used by the Figure 12 experiments)."""
        if aggregate is AggregateFunction.COUNT:
            return {"naive": self.count_bound("naive"),
                    "fec": self.count_bound("fec")}
        if attribute is None:
            raise JoinBoundError("SUM comparison requires an attribute")
        return {"naive": self.sum_bound(attribute, relation, "naive"),
                "fec": self.sum_bound(attribute, relation, "fec")}


# ------------------------------------------------------------------ #
# Helpers
# ------------------------------------------------------------------ #
def _validate_specs(specs: Sequence[JoinRelationSpec]) -> None:
    if not specs:
        raise JoinBoundError("a join bound needs at least one relation")
    names = [spec.name for spec in specs]
    if len(names) != len(set(names)):
        raise JoinBoundError(f"duplicate relation names in join: {names}")


def _resolve_home_relation(specs: Sequence[JoinRelationSpec],
                           attribute: str | None,
                           attribute_relation: str | None) -> JoinRelationSpec:
    if attribute is None:
        raise JoinBoundError("SUM join bounds require the aggregated attribute")
    if attribute_relation is not None:
        for spec in specs:
            if spec.name == attribute_relation:
                return spec
        raise JoinBoundError(
            f"relation {attribute_relation!r} not found among join inputs")
    owners = [spec for spec in specs
              if attribute in spec.pcset.attributes()
              or attribute in spec.join_attributes]
    if len(owners) != 1:
        raise JoinBoundError(
            f"cannot infer which relation carries attribute {attribute!r}; "
            "pass attribute_relation explicitly"
        )
    return owners[0]


def _product(values) -> float:
    result = 1.0
    for value in values:
        if math.isinf(value):
            return _INF
        result *= value
    return result
