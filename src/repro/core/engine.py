"""The public facade of the predicate-constraint framework.

:class:`PCAnalyzer` answers contingency-analysis questions: *given what I
believe about the missing rows (a predicate-constraint set) and the data I
do have, what range of values could my aggregate query take?*

Queries are expressed as :class:`ContingencyQuery` — an aggregate, an
optional aggregated attribute, and an optional box-predicate region (the
query's WHERE clause).  The analyzer bounds the missing partition with
:class:`~repro.core.bounds.PCBoundSolver` and, when an observed relation is
supplied, combines that bound with the exact answer over the observed rows
(the paper's "partial ground truth" combination, §6.2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Mapping

from ..exceptions import QueryError
from ..obs.trace import get_tracer
from ..relational.aggregates import AggregateFunction
from ..relational.expressions import TrueExpression
from ..relational.query import AggregateQuery
from ..relational.relation import Relation
from .bounds import BoundOptions, PCBoundSolver, ResultRange
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = ["ContingencyQuery", "ContingencyReport", "PCAnalyzer"]

_INF = float("inf")


@dataclass(frozen=True)
class ContingencyQuery:
    """An aggregate query in the form the bounding engine understands.

    ``region`` is the WHERE clause restricted to the box-predicate language
    of §3.1 (conjunctions of ranges and equalities) — the same restriction
    the paper places on predicate-constraints themselves.
    """

    aggregate: AggregateFunction
    attribute: str | None = None
    region: Predicate | None = None

    def __post_init__(self) -> None:
        if self.aggregate.needs_attribute and self.attribute is None:
            raise QueryError(f"{self.aggregate.value} requires an attribute")
        if not self.aggregate.needs_attribute and self.attribute is not None:
            raise QueryError("COUNT(*) queries must not name an attribute")

    # Convenience constructors ------------------------------------------------
    @classmethod
    def count(cls, region: Predicate | None = None) -> "ContingencyQuery":
        return cls(AggregateFunction.COUNT, None, region)

    @classmethod
    def sum(cls, attribute: str, region: Predicate | None = None) -> "ContingencyQuery":
        return cls(AggregateFunction.SUM, attribute, region)

    @classmethod
    def avg(cls, attribute: str, region: Predicate | None = None) -> "ContingencyQuery":
        return cls(AggregateFunction.AVG, attribute, region)

    @classmethod
    def min(cls, attribute: str, region: Predicate | None = None) -> "ContingencyQuery":
        return cls(AggregateFunction.MIN, attribute, region)

    @classmethod
    def max(cls, attribute: str, region: Predicate | None = None) -> "ContingencyQuery":
        return cls(AggregateFunction.MAX, attribute, region)

    def to_aggregate_query(self) -> AggregateQuery:
        """The equivalent relational query (for exact evaluation on data)."""
        if self.region is not None:
            where = self.region.to_expression()
        else:
            where = TrueExpression()
        return AggregateQuery(self.aggregate, self.attribute, where)

    def ground_truth(self, relation: Relation) -> float | None:
        """The exact answer of this query over ``relation``."""
        return self.to_aggregate_query().scalar(relation)

    def describe(self) -> str:
        target = "*" if self.attribute is None else self.attribute
        text = f"{self.aggregate.value}({target})"
        if self.region is not None and not self.region.is_tautology():
            text += f" WHERE {self.region!r}"
        return text


@dataclass
class ContingencyReport:
    """The full output of a contingency analysis for one query."""

    query: ContingencyQuery
    result_range: ResultRange
    missing_range: ResultRange
    observed_value: float | None
    observed_rows: int
    elapsed_seconds: float
    #: The EXPLAIN ANALYZE span tree, attached only when the caller asked
    #: for one (``ContingencyService.analyze(..., profile=True)``) — plain
    #: analyzer calls leave it None so reports stay lean and picklable
    #: across the worker-pool boundary.
    profile: "object | None" = None

    @property
    def lower(self) -> float | None:
        return self.result_range.lower

    @property
    def upper(self) -> float | None:
        return self.result_range.upper

    @property
    def degraded_shards(self) -> tuple:
        """Shard positions answered from worst-case fallback ranges.

        Non-empty only under ``BoundOptions(degrade="worst-case")`` when a
        shard timed out or kept failing: its contribution is the
        precomputed worst-case range (a sound superset), and this tuple
        names exactly which shards were degraded.  Empty means every shard
        was solved exactly.
        """
        statistics = self.result_range.statistics
        if statistics is None:
            return ()
        return tuple(getattr(statistics, "degraded_shards", ()) or ())

    def summary(self) -> str:
        """A one-line human-readable summary."""
        text = (f"{self.query.describe()}: range [{self.lower}, {self.upper}] "
                f"(observed={self.observed_value}, "
                f"missing ∈ [{self.missing_range.lower}, {self.missing_range.upper}], "
                f"{self.elapsed_seconds * 1000:.1f} ms)")
        if self.degraded_shards:
            text += f" [degraded shards: {list(self.degraded_shards)}]"
        return text


class PCAnalyzer:
    """Bounds aggregate queries under predicate-constraints on missing rows.

    Parameters
    ----------
    pcset:
        Constraints describing the missing partition ``R?``.
    observed:
        The certain partition ``R*`` (optional).  When given, reported
        ranges cover the whole relation ``R* ∪ R?``; otherwise they cover
        only the missing partition.
    options:
        Solver tuning knobs (decomposition strategy, MILP backend, closure
        checking, AVG tolerance).
    decomposition_cache:
        Optional shared decomposition cache (see
        :class:`~repro.core.bounds.PCBoundSolver`).  The service layer passes
        one :class:`repro.service.LRUCache` to every analyzer it creates so
        repeated or region-sharing queries skip re-decomposition.
    cache_namespace:
        Overrides the namespace used inside the shared cache (defaults to a
        content fingerprint of the constraint set and options).
    program_cache:
        Optional shared cache of compiled bound programs (see
        :class:`~repro.plan.BoundProgram`); the service layer passes one so
        warm queries skip plan compilation as well as decomposition.
    worker_pool:
        Optional long-lived :class:`~repro.parallel.pool.WorkerPool` the
        solver's sharded fan-out borrows (the service passes its own).
    cell_statistics:
        Optional shared :class:`~repro.plan.passes.ObservedCellStatistics`
        feed for adaptive cell budgeting (the service shares one across
        sessions).
    shard_loads:
        Optional shared :class:`~repro.plan.passes.ShardLoadMemo` feeding
        observed per-shard cell loads back into region cut placement (the
        service shares one across sessions).
    """

    def __init__(self, pcset: PredicateConstraintSet,
                 observed: Relation | None = None,
                 options: BoundOptions | None = None,
                 decomposition_cache=None,
                 cache_namespace: object = None,
                 program_cache=None,
                 worker_pool=None,
                 cell_statistics=None,
                 shard_loads=None):
        self._pcset = pcset
        self._observed = observed
        self._options = options or BoundOptions()
        self._solver = PCBoundSolver(pcset, self._options,
                                     decomposition_cache=decomposition_cache,
                                     cache_namespace=cache_namespace,
                                     program_cache=program_cache,
                                     worker_pool=worker_pool,
                                     cell_statistics=cell_statistics,
                                     shard_loads=shard_loads)

    @property
    def pcset(self) -> PredicateConstraintSet:
        return self._pcset

    @property
    def observed(self) -> Relation | None:
        return self._observed

    @property
    def options(self) -> BoundOptions:
        return self._options

    @property
    def solver(self) -> PCBoundSolver:
        """The underlying bound solver (exposes decomposition counters)."""
        return self._solver

    def prepare(self, region: Predicate | None = None,
                attribute: str | None = None) -> None:
        """Warm the compiled program for a (region, attribute) pair.

        The batch executor calls this once per distinct pair so the
        expensive steps — cell enumeration, profile extraction, MILP
        skeleton compilation — happen exactly once even when dozens of
        queries share the pair.  Programs for the same region share one
        cached decomposition, so warming several attributes stays cheap.
        """
        self._solver.program(region, attribute)

    def plan_for(self, query: ContingencyQuery):
        """The optimized :class:`~repro.plan.BoundPlan` for ``query``.

        Introspection only — ``analyze`` compiles and executes the same
        plan.  ``plan_for(query).describe()`` is the query's EXPLAIN output.
        """
        return self._solver.plan(query)

    def sharded_plan_for(self, query: ContingencyQuery):
        """The :class:`~repro.plan.ShardedBoundPlan` the sharding pass would
        execute ``query`` through (introspection: strategy, shard layout).

        Like :meth:`plan_for` this never decomposes or solves — the service
        layer prices admission decisions from it, and the CLI renders it as
        the sharding half of the EXPLAIN output.
        """
        return self._solver.sharded_plan(query.region, query.attribute)

    # ------------------------------------------------------------------ #
    # Main API
    # ------------------------------------------------------------------ #
    def bound(self, query: ContingencyQuery) -> ResultRange:
        """The result range for ``query`` (observed ∪ missing)."""
        return self.analyze(query).result_range

    def bound_missing(self, query: ContingencyQuery) -> ResultRange:
        """The result range for ``query`` over the missing partition only."""
        return self._solver.bound(query.aggregate, query.attribute, query.region)

    def analyze(self, query: ContingencyQuery) -> ContingencyReport:
        """Bound the query and package the full report."""
        started = time.perf_counter()
        tracer = get_tracer()
        with tracer.span("analyze"):
            tracer.annotate(aggregate=query.aggregate.value)
            with tracer.span("observed"):
                observed_value, observed_rows, observed_sum = \
                    self._observed_summary(query)
            if query.aggregate is AggregateFunction.AVG:
                missing = self._solver.bound(query.aggregate, query.attribute,
                                             query.region,
                                             known_sum=observed_sum,
                                             known_count=float(observed_rows))
                combined = missing  # AVG combination inside the solver.
            else:
                missing = self._solver.bound(query.aggregate, query.attribute,
                                             query.region)
                combined = self._combine(query, missing, observed_value)
        elapsed = time.perf_counter() - started
        return ContingencyReport(query=query, result_range=combined,
                                 missing_range=missing,
                                 observed_value=observed_value,
                                 observed_rows=observed_rows,
                                 elapsed_seconds=elapsed)

    def bound_all(self, queries: list[ContingencyQuery]) -> list[ContingencyReport]:
        """Analyze a workload of queries."""
        return [self.analyze(query) for query in queries]

    def analyze_group_by(self, query: ContingencyQuery, group_attribute: str,
                         groups: list | None = None) -> dict[object, ContingencyReport]:
        """Per-group result ranges (the paper treats GROUP BY as a query union).

        Each group value becomes one query whose region conjoins
        ``group_attribute = value`` onto the base query's region.  Group
        values are taken from, in order of preference: the explicit
        ``groups`` argument, the attribute's categorical domain declared on
        the constraint set, or the distinct values observed in the certain
        partition.  Note that with only observed values the result cannot
        speak for groups that exist exclusively in the missing rows.
        """
        values = self._group_values(group_attribute, groups)
        reports: dict[object, ContingencyReport] = {}
        for value in values:
            if isinstance(value, str):
                group_predicate = Predicate.equals(group_attribute, value)
            else:
                group_predicate = Predicate.range(group_attribute, float(value),
                                                  float(value))
            region = (group_predicate if query.region is None
                      else query.region.conjoin(group_predicate))
            grouped_query = ContingencyQuery(query.aggregate, query.attribute, region)
            reports[value] = self.analyze(grouped_query)
        return reports

    def _group_values(self, group_attribute: str, groups: list | None) -> list:
        if groups is not None:
            return list(groups)
        domain = self._pcset.domains.get(group_attribute)
        if domain is not None and not domain.is_numeric:
            return sorted(domain.categories.values, key=repr)
        if self._observed is not None and group_attribute in self._observed.schema:
            return list(self._observed.distinct_values(group_attribute))
        raise QueryError(
            f"cannot enumerate groups for {group_attribute!r}: pass them explicitly, "
            "declare a categorical domain, or provide an observed relation")

    def validate_constraints(self, historical: Relation) -> list:
        """Check the constraint set against historical data (paper §1, point 1)."""
        return self._pcset.validate_against(historical)

    # ------------------------------------------------------------------ #
    # Observed-partition handling
    # ------------------------------------------------------------------ #
    def _observed_summary(self, query: ContingencyQuery
                          ) -> tuple[float | None, int, float]:
        """(observed aggregate, matching row count, matching sum)."""
        if self._observed is None:
            return None, 0, 0.0
        relational_query = query.to_aggregate_query()
        result = relational_query.execute(self._observed)
        matching = self._observed.filter(relational_query.where)
        observed_sum = 0.0
        if query.attribute is not None and matching.num_rows > 0:
            observed_sum = matching.column_sum(query.attribute)
        return result.value, matching.num_rows, observed_sum

    def _combine(self, query: ContingencyQuery, missing: ResultRange,
                 observed_value: float | None) -> ResultRange:
        """Combine the missing-partition range with the observed answer."""
        if self._observed is None:
            return missing
        aggregate = query.aggregate
        if aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM):
            offset = observed_value if observed_value is not None else 0.0
            return missing.shifted(offset)
        if aggregate is AggregateFunction.MAX:
            return self._combine_max(missing, observed_value)
        if aggregate is AggregateFunction.MIN:
            return self._combine_min(missing, observed_value)
        return missing

    @staticmethod
    def _combine_max(missing: ResultRange, observed: float | None) -> ResultRange:
        candidates_lower = [value for value in (observed, missing.lower)
                            if value is not None]
        lower = max(candidates_lower) if candidates_lower else None
        if missing.upper is None:
            upper = observed
        elif observed is None:
            upper = missing.upper
        else:
            upper = max(observed, missing.upper)
        return ResultRange(lower, upper, missing.aggregate, missing.attribute,
                           closed=missing.closed, statistics=missing.statistics)

    @staticmethod
    def _combine_min(missing: ResultRange, observed: float | None) -> ResultRange:
        candidates_upper = [value for value in (observed, missing.upper)
                            if value is not None]
        upper = min(candidates_upper) if candidates_upper else None
        if missing.lower is None:
            lower = observed
        elif observed is None:
            lower = missing.lower
        else:
            lower = min(observed, missing.lower)
        return ResultRange(lower, upper, missing.aggregate, missing.attribute,
                           closed=missing.closed, statistics=missing.statistics)
