"""Automatic predicate-constraint construction from data (paper §6.1.4).

The experiments use two PC-generation schemes that bracket what a careful /
careless analyst would write by hand:

* **Corr-PC** — equi-cardinality partitions of the attributes most correlated
  with the aggregate of interest, annotated with the exact value ranges and
  row counts observed in the summarised data.  This is "the reasonably best
  performance one could expect out of the PC framework".
* **Rand-PC** — randomly placed, overlapping boxes over the same attributes
  (plus a catch-all constraint so the set stays closed).  This is the
  worst case: valid but poorly targeted constraints.

Both schemes summarise a given relation (in the experiments: the missing
partition) into ``n`` constraints, so every baseline receives a comparable
amount of information.  The module also provides plain partition /
histogram-style builders and helpers to infer attribute domains.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..exceptions import DatasetError
from ..relational.relation import Relation
from ..relational.schema import ColumnType
from ..solvers.sat import AttributeDomain
from .constraints import FrequencyConstraint, PredicateConstraint, ValueConstraint
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = [
    "infer_domains",
    "select_correlated_attributes",
    "build_partition_pcs",
    "build_corr_pcs",
    "build_random_pcs",
    "build_random_overlapping_boxes",
    "build_overlapping_pcs",
    "build_histogram_pcs",
]

_INF = float("inf")


# --------------------------------------------------------------------- #
# Domains and attribute selection
# --------------------------------------------------------------------- #
def infer_domains(relation: Relation) -> dict[str, AttributeDomain]:
    """Attribute domains for the SAT solver, inferred from a relation's schema.

    Numeric attributes get the full real (or integer) line; categorical
    attributes get the finite set of values observed in the relation.
    """
    domains: dict[str, AttributeDomain] = {}
    for column in relation.schema:
        if column.ctype is ColumnType.STRING:
            domains[column.name] = AttributeDomain.categorical(
                relation.distinct_values(column.name).tolist())
        elif column.ctype is ColumnType.INT:
            domains[column.name] = AttributeDomain.numeric(integral=True)
        else:
            domains[column.name] = AttributeDomain.numeric()
    return domains


def select_correlated_attributes(relation: Relation, target: str, count: int = 2,
                                 candidates: Sequence[str] | None = None
                                 ) -> list[str]:
    """The ``count`` numeric attributes most correlated with ``target``.

    Correlation is absolute Pearson correlation on the given relation; ties
    are broken by schema order.  This is the attribute-selection step of the
    Corr-PC scheme.
    """
    relation.schema.require_numeric(target)
    names = candidates if candidates is not None else [
        name for name in relation.schema.numeric_names if name != target
    ]
    target_values = relation.column(target).astype(np.float64)
    scored: list[tuple[float, str]] = []
    for name in names:
        if name == target:
            continue
        values = relation.column(name).astype(np.float64)
        correlation = _safe_correlation(values, target_values)
        scored.append((abs(correlation), name))
    scored.sort(key=lambda item: (-item[0], names.index(item[1])))
    return [name for _, name in scored[:count]]


def _safe_correlation(x: np.ndarray, y: np.ndarray) -> float:
    if x.size < 2 or np.allclose(x, x[0]) or np.allclose(y, y[0]):
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


# --------------------------------------------------------------------- #
# Partition-based constraints (Corr-PC and friends)
# --------------------------------------------------------------------- #
def build_partition_pcs(relation: Relation, attributes: Sequence[str],
                        num_constraints: int,
                        value_attributes: Sequence[str] | None = None,
                        exact_counts: bool = False,
                        unbounded_edges: bool = True,
                        name_prefix: str = "part") -> PredicateConstraintSet:
    """Equi-cardinality grid partition of ``attributes`` into ~``num_constraints`` PCs.

    Each non-empty grid bucket becomes one predicate-constraint whose value
    constraint records the observed min/max of every value attribute and
    whose frequency constraint records the observed row count.

    Parameters
    ----------
    exact_counts:
        When True the frequency constraint is ``(count, count)``; otherwise
        ``(0, count)`` (the paper's common setting where bounds from below
        are trivial).
    unbounded_edges:
        When True the outermost buckets extend to infinity so the set is
        closed over the whole numeric domain, not just the observed range.
    """
    if num_constraints <= 0:
        raise DatasetError("num_constraints must be positive")
    if not attributes:
        raise DatasetError("partitioning requires at least one attribute")
    if relation.num_rows == 0:
        raise DatasetError("cannot build partition constraints from an empty relation")
    for attribute in attributes:
        relation.schema.require_numeric(attribute)
    value_names = list(value_attributes) if value_attributes is not None else [
        name for name in relation.schema.numeric_names
    ]

    edges = _allocate_partition_edges(relation, attributes, num_constraints)

    pcset = PredicateConstraintSet(domains=infer_domains(relation))
    buckets = _assign_buckets(relation, attributes, edges)
    for bucket_key, indices in sorted(buckets.items()):
        subset = relation.take(indices)
        predicate = _bucket_predicate(attributes, edges, bucket_key, unbounded_edges)
        bounds = {
            name: (subset.column_min(name), subset.column_max(name))
            for name in value_names
        }
        count = subset.num_rows
        frequency = (FrequencyConstraint.exactly(count) if exact_counts
                     else FrequencyConstraint.at_most(count))
        label = f"{name_prefix}_" + "_".join(str(part) for part in bucket_key)
        pcset.add(PredicateConstraint(predicate, ValueConstraint(bounds),
                                      frequency, name=label))
    pcset.mark_disjoint(True)
    if unbounded_edges:
        pcset.mark_closed(True)
    return pcset


def build_corr_pcs(relation: Relation, target: str, num_constraints: int,
                   num_attributes: int = 2,
                   candidates: Sequence[str] | None = None,
                   exact_counts: bool = False) -> PredicateConstraintSet:
    """The Corr-PC scheme: partition the attributes most correlated with ``target``."""
    attributes = select_correlated_attributes(relation, target, num_attributes,
                                              candidates)
    if not attributes:
        attributes = [target]
    return build_partition_pcs(relation, attributes, num_constraints,
                               value_attributes=[target],
                               exact_counts=exact_counts, name_prefix="corr")


def build_histogram_pcs(relation: Relation, attribute: str,
                        num_buckets: int) -> PredicateConstraintSet:
    """Equi-width 1-D histogram over ``attribute`` expressed as disjoint PCs.

    The paper observes that histograms are the dense, 1-D, non-overlapping
    special case of predicate-constraints; this builder makes that precise.
    """
    relation.schema.require_numeric(attribute)
    if num_buckets <= 0:
        raise DatasetError("num_buckets must be positive")
    if relation.num_rows == 0:
        raise DatasetError("cannot build a histogram over an empty relation")
    values = relation.column(attribute).astype(np.float64)
    low, high = float(values.min()), float(values.max())
    if low == high:
        high = low + 1.0
    edges = np.linspace(low, high, num_buckets + 1)
    pcset = PredicateConstraintSet(domains=infer_domains(relation))
    for index in range(num_buckets):
        bucket_low = -_INF if index == 0 else float(edges[index])
        bucket_high = _INF if index == num_buckets - 1 else float(edges[index + 1])
        if index == num_buckets - 1:
            mask = values >= edges[index]
        else:
            mask = (values >= edges[index]) & (values < edges[index + 1])
        count = int(mask.sum())
        value_low = float(values[mask].min()) if count else float(edges[index])
        value_high = float(values[mask].max()) if count else float(edges[index + 1])
        if index < num_buckets - 1:
            bucket_high = math.nextafter(float(edges[index + 1]), -_INF)
        predicate = Predicate.range(attribute, bucket_low, bucket_high)
        pcset.add(PredicateConstraint(
            predicate,
            ValueConstraint({attribute: (value_low, value_high)}),
            FrequencyConstraint.at_most(count),
            name=f"hist_{index}"))
    pcset.mark_disjoint(True)
    pcset.mark_closed(True)
    return pcset


# --------------------------------------------------------------------- #
# Random and overlapping constraints (Rand-PC, Overlapping-PC)
# --------------------------------------------------------------------- #
def build_random_pcs(relation: Relation, attributes: Sequence[str],
                     num_constraints: int,
                     value_attributes: Sequence[str] | None = None,
                     rng: np.random.Generator | None = None) -> PredicateConstraintSet:
    """The Rand-PC scheme: a partition with randomly placed bucket edges.

    Unlike Corr-PC the bucket boundaries ignore the data distribution and
    the correlation structure, so individual constraints mix sparse and
    dense regions and carry much looser value ranges — the paper's "worst
    performance one could expect" scheme.  Constraints are still *valid*
    (they are annotated with the true statistics of the rows they cover) and
    the partition covers the whole domain, so the set stays closed.
    """
    if num_constraints <= 0:
        raise DatasetError("num_constraints must be positive")
    if relation.num_rows == 0:
        raise DatasetError("cannot build random constraints from an empty relation")
    generator = rng if rng is not None else np.random.default_rng()
    for attribute in attributes:
        relation.schema.require_numeric(attribute)
    value_names = list(value_attributes) if value_attributes is not None else [
        name for name in relation.schema.numeric_names
    ]

    bins_per_attribute = max(1, int(round(num_constraints ** (1.0 / len(attributes)))))
    edges: dict[str, np.ndarray] = {}
    for attribute in attributes:
        low, high = relation.column_range(attribute)
        if high == low:
            high = low + 1.0
        interior = np.sort(generator.uniform(low, high, size=bins_per_attribute - 1))
        edges[attribute] = np.concatenate([[low], interior, [high]])

    pcset = PredicateConstraintSet(domains=infer_domains(relation))
    buckets = _assign_buckets(relation, attributes, edges)
    for bucket_key, indices in sorted(buckets.items()):
        subset = relation.take(indices)
        predicate = _bucket_predicate(attributes, edges, bucket_key,
                                      unbounded_edges=True)
        pcset.add(_summarising_constraint(subset, relation, predicate, value_names,
                                          name="rand_" + "_".join(map(str, bucket_key))))
    pcset.mark_disjoint(True)
    pcset.mark_closed(True)
    return pcset


def build_random_overlapping_boxes(relation: Relation, attributes: Sequence[str],
                                   num_constraints: int,
                                   value_attributes: Sequence[str] | None = None,
                                   rng: np.random.Generator | None = None,
                                   include_catch_all: bool = True
                                   ) -> PredicateConstraintSet:
    """Heavily-overlapping random boxes (the paper's Figure 7 stress workload).

    Each random box is annotated with the true value ranges and row counts
    of the rows it covers, so the constraints are valid — just heavily
    overlapping, which is exactly what stresses cell decomposition.  A
    catch-all constraint keeps the set closed.
    """
    if num_constraints <= 0:
        raise DatasetError("num_constraints must be positive")
    if relation.num_rows == 0:
        raise DatasetError("cannot build random constraints from an empty relation")
    generator = rng if rng is not None else np.random.default_rng()
    for attribute in attributes:
        relation.schema.require_numeric(attribute)
    value_names = list(value_attributes) if value_attributes is not None else [
        name for name in relation.schema.numeric_names
    ]
    pcset = PredicateConstraintSet(domains=infer_domains(relation))
    ranges = {attribute: relation.column_range(attribute) for attribute in attributes}

    box_budget = num_constraints - 1 if include_catch_all else num_constraints
    for index in range(max(box_budget, 0)):
        predicate = Predicate.true()
        for attribute in attributes:
            low, high = ranges[attribute]
            if high == low:
                high = low + 1.0
            span = high - low
            width = span * float(generator.uniform(0.1, 0.6))
            start = low + float(generator.uniform(0.0, max(span - width, 1e-12)))
            predicate = predicate.with_range(attribute, start, start + width)
        subset = relation.filter(predicate.to_expression())
        pcset.add(_summarising_constraint(subset, relation, predicate, value_names,
                                          name=f"box_{index}"))
    if include_catch_all:
        pcset.add(_summarising_constraint(relation, relation, Predicate.true(),
                                          value_names, name="box_catch_all"))
        pcset.mark_closed(True)
    return pcset


def build_overlapping_pcs(relation: Relation, attributes: Sequence[str],
                          num_constraints: int, overlap_fraction: float = 0.5,
                          value_attributes: Sequence[str] | None = None,
                          exact_counts: bool = False) -> PredicateConstraintSet:
    """Equi-cardinality partitions stretched so neighbouring PCs overlap.

    Used by the robustness experiment (paper §6.3.2): overlapping constraints
    let the framework reject some amount of mis-specification because the
    most restrictive overlapping constraint wins.
    """
    if not 0.0 <= overlap_fraction <= 1.0:
        raise DatasetError("overlap_fraction must lie in [0, 1]")
    base = build_partition_pcs(relation, attributes, num_constraints,
                               value_attributes=value_attributes,
                               exact_counts=exact_counts,
                               unbounded_edges=True, name_prefix="overlap")
    if overlap_fraction == 0.0:
        return base
    stretched = PredicateConstraintSet(domains=base.domains)
    for constraint in base:
        predicate = Predicate.true()
        for attribute, attribute_range in constraint.predicate.ranges.items():
            low, high = attribute_range.low, attribute_range.high
            if math.isfinite(low) and math.isfinite(high):
                stretch = (high - low) * overlap_fraction / 2.0
                low, high = low - stretch, high + stretch
            predicate = predicate.with_range(attribute, low, high)
        for attribute, membership in constraint.predicate.memberships.items():
            predicate = predicate.with_membership(attribute, membership.values)
        # Re-summarise against the relation so the stretched constraint is
        # still valid (it now covers more rows).
        subset = relation.filter(predicate.to_expression())
        value_names = list(constraint.values.bounds)
        stretched.add(_summarising_constraint(subset, relation, predicate,
                                              value_names, name=constraint.name,
                                              exact_counts=exact_counts))
    return stretched


# --------------------------------------------------------------------- #
# Internal helpers
# --------------------------------------------------------------------- #
def _allocate_partition_edges(relation: Relation, attributes: Sequence[str],
                              num_constraints: int) -> dict[str, np.ndarray]:
    """Pick per-attribute bucket edges whose grid has ~``num_constraints`` cells.

    Quantile edges collapse on skewed or low-cardinality attributes (most of
    the mass sits on a handful of values), which would silently shrink the
    grid far below the requested budget.  When that happens the remaining
    budget is re-invested into the attributes that can still be split.
    """
    bins_request = {
        attribute: max(1, int(round(num_constraints ** (1.0 / len(attributes)))))
        for attribute in attributes
    }
    values = {attribute: relation.column(attribute).astype(np.float64)
              for attribute in attributes}
    distinct_counts = {attribute: np.unique(values[attribute]).size
                       for attribute in attributes}

    edges: dict[str, np.ndarray] = {}
    for _ in range(6):
        edges = {attribute: _quantile_edges(values[attribute], bins_request[attribute])
                 for attribute in attributes}
        effective = {attribute: len(edges[attribute]) - 1 for attribute in attributes}
        grid_size = 1
        for attribute in attributes:
            grid_size *= max(effective[attribute], 1)
        if grid_size >= num_constraints:
            break
        expandable = [attribute for attribute in attributes
                      if effective[attribute] < distinct_counts[attribute]
                      and bins_request[attribute] < distinct_counts[attribute]]
        if not expandable:
            break
        for attribute in expandable:
            bins_request[attribute] = min(bins_request[attribute] * 2,
                                          distinct_counts[attribute])
    return edges


def _quantile_edges(values: np.ndarray, bins: int) -> np.ndarray:
    """Equi-cardinality bucket edges (including both extremes).

    Low-cardinality (e.g. integer identifier) attributes get one bucket per
    distinct value instead of quantile buckets: quantiles of such attributes
    collapse onto duplicated edges, which would merge unrelated identifiers
    into one very loose constraint.
    """
    distinct = np.unique(values)
    if distinct.size <= bins:
        if distinct.size == 1:
            return np.array([float(distinct[0]), float(distinct[0]) + 1.0])
        midpoints = (distinct[:-1] + distinct[1:]) / 2.0
        return np.concatenate([[float(distinct[0])], midpoints,
                               [float(distinct[-1])]])
    quantiles = np.linspace(0.0, 1.0, bins + 1)
    edges = np.quantile(values, quantiles)
    # Collapsing duplicated edges keeps buckets well-defined on skewed data.
    edges = np.unique(edges)
    if edges.size < 2:
        edges = np.array([values.min(), values.max() + 1.0])
    return edges


def _assign_buckets(relation: Relation, attributes: Sequence[str],
                    edges: dict[str, np.ndarray]) -> dict[tuple[int, ...], list[int]]:
    buckets: dict[tuple[int, ...], list[int]] = {}
    digitised: list[np.ndarray] = []
    for attribute in attributes:
        values = relation.column(attribute).astype(np.float64)
        attribute_edges = edges[attribute]
        positions = np.digitize(values, attribute_edges[1:-1], right=False)
        digitised.append(positions)
    for row_index in range(relation.num_rows):
        key = tuple(int(column[row_index]) for column in digitised)
        buckets.setdefault(key, []).append(row_index)
    return buckets


def _bucket_predicate(attributes: Sequence[str], edges: dict[str, np.ndarray],
                      bucket_key: tuple[int, ...], unbounded_edges: bool) -> Predicate:
    predicate = Predicate.true()
    for attribute, position in zip(attributes, bucket_key):
        attribute_edges = edges[attribute]
        last_bucket = len(attribute_edges) - 2
        low = float(attribute_edges[position])
        high = float(attribute_edges[position + 1])
        if position < last_bucket:
            # Buckets are half-open [low, high) so neighbours stay disjoint;
            # closed-interval predicates encode that with the previous float.
            high = math.nextafter(high, -_INF)
        if unbounded_edges and position == 0:
            low = -_INF
        if unbounded_edges and position == last_bucket:
            high = _INF
        predicate = predicate.with_range(attribute, low, high)
    return predicate


def _summarising_constraint(subset: Relation, full: Relation, predicate: Predicate,
                            value_names: Iterable[str], name: str,
                            exact_counts: bool = False) -> PredicateConstraint:
    """A constraint annotated with the true statistics of the covered rows."""
    bounds: dict[str, tuple[float, float]] = {}
    for attribute in value_names:
        if subset.num_rows > 0:
            bounds[attribute] = (subset.column_min(attribute),
                                 subset.column_max(attribute))
        else:
            bounds[attribute] = (0.0, 0.0)
    count = subset.num_rows
    frequency = (FrequencyConstraint.exactly(count) if exact_counts
                 else FrequencyConstraint.at_most(count))
    return PredicateConstraint(predicate, ValueConstraint(bounds), frequency,
                               name=name)
