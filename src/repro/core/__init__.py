"""The predicate-constraint framework (the paper's primary contribution).

This subpackage contains the predicate language, the predicate-constraint /
predicate-constraint-set abstractions, cell decomposition with the paper's
optimisations, the MILP bounding engine for the five supported aggregates,
the two join-bound strategies, and the automatic constraint builders used by
the experiments.
"""

from .bounds import (
    BoundExplanation,
    BoundOptions,
    CellAllocation,
    PCBoundSolver,
    ResultRange,
)
from .builders import (
    build_corr_pcs,
    build_histogram_pcs,
    build_overlapping_pcs,
    build_partition_pcs,
    build_random_overlapping_boxes,
    build_random_pcs,
    infer_domains,
    select_correlated_attributes,
)
from .cells import (
    Cell,
    CellDecomposer,
    CellDecomposition,
    DecompositionStatistics,
    DecompositionStrategy,
    decompose_cached,
)
from .constraints import (
    ConstraintViolation,
    FrequencyConstraint,
    PredicateConstraint,
    ValueConstraint,
)
from .engine import ContingencyQuery, ContingencyReport, PCAnalyzer
from .io import (
    load_pcset,
    parse_constraint,
    parse_constraints,
    pcset_from_dict,
    pcset_to_dict,
    save_pcset,
)
from .joins import (
    JoinBound,
    JoinBoundAnalyzer,
    JoinRelationSpec,
    fec_join_bound,
    naive_join_bound,
)
from .pcset import PredicateConstraintSet
from .predicates import AttributeMembership, AttributeRange, Predicate

__all__ = [
    "BoundExplanation",
    "BoundOptions",
    "CellAllocation",
    "PCBoundSolver",
    "ResultRange",
    "build_corr_pcs",
    "build_histogram_pcs",
    "build_overlapping_pcs",
    "build_partition_pcs",
    "build_random_overlapping_boxes",
    "build_random_pcs",
    "infer_domains",
    "select_correlated_attributes",
    "Cell",
    "CellDecomposer",
    "CellDecomposition",
    "DecompositionStatistics",
    "DecompositionStrategy",
    "decompose_cached",
    "ConstraintViolation",
    "FrequencyConstraint",
    "PredicateConstraint",
    "ValueConstraint",
    "ContingencyQuery",
    "ContingencyReport",
    "PCAnalyzer",
    "load_pcset",
    "parse_constraint",
    "parse_constraints",
    "pcset_from_dict",
    "pcset_to_dict",
    "save_pcset",
    "JoinBound",
    "JoinBoundAnalyzer",
    "JoinRelationSpec",
    "fec_join_bound",
    "naive_join_bound",
    "PredicateConstraintSet",
    "AttributeMembership",
    "AttributeRange",
    "Predicate",
]
