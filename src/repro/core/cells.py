"""Cell decomposition of overlapping predicate-constraints (paper §4.1).

A *cell* is a maximal region of the attribute domain covered by exactly one
subset of the predicate-constraints' predicates::

    cell(P) = AND_{i in P} psi_i  AND  AND_{j not in P} NOT psi_j

For ``n`` predicate-constraints there are up to ``2^n`` cells, most of which
are unsatisfiable in practice.  This module enumerates the satisfiable cells
with the paper's four optimisations:

1. **Predicate pushdown** — the query's own predicate is conjoined into every
   cell, so cells that cannot contain query-relevant rows are pruned.
2. **DFS pruning** — cells are enumerated by a depth-first search over
   prefixes; an unsatisfiable prefix prunes its whole subtree.
3. **Expression rewriting** — if a prefix ``X`` is satisfiable and ``X ∧ ψ``
   is not, then ``X ∧ ¬ψ`` is satisfiable without another solver call.
4. **Approximate early stopping** — below a configurable depth, prefixes are
   assumed satisfiable; this can only add cells (loosening but never
   invalidating the bound).

The decomposition reports statistics (cells evaluated, solver calls,
rewrites) that back the paper's Figure 7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..exceptions import ConstraintError
from ..solvers.sat import Box, BoxSolver
from .pcset import PredicateConstraintSet
from .predicates import Predicate

__all__ = ["Cell", "DecompositionStrategy", "DecompositionStatistics",
           "CellDecomposition", "CellDecomposer", "decompose_cached",
           "decomposition_cache_key", "estimate_cell_count",
           "worst_case_cell_count"]

_CELL_ESTIMATE_CAP = 1 << 62


def worst_case_cell_count(num_constraints: int) -> int:
    """Worst-case covered cells for ``num_constraints`` overlapping
    predicates: ``2^n - 1``, capped so very large sets never overflow into
    bignum territory.  The single source of truth for this formula — the
    strategy-selection pass and its observed-density feed both scale it.
    """
    if num_constraints <= 0:
        return 0
    if num_constraints >= 62:
        return _CELL_ESTIMATE_CAP
    return (1 << num_constraints) - 1


def estimate_cell_count(pcset: PredicateConstraintSet) -> int:
    """Worst-case number of satisfiable cells for ``pcset``.

    Pairwise-disjoint predicates decompose into exactly one cell each; in
    general up to ``2^n - 1`` covered cells exist (see
    :func:`worst_case_cell_count`).
    """
    count = len(pcset)
    if count == 0:
        return 0
    if pcset.is_pairwise_disjoint():
        return count
    return worst_case_cell_count(count)


@dataclass(frozen=True)
class Cell:
    """One satisfiable cell: the indices of the predicate-constraints covering it."""

    covering: frozenset[int]

    def __post_init__(self) -> None:
        if not self.covering:
            raise ConstraintError("a cell must be covered by at least one constraint")

    @property
    def size(self) -> int:
        return len(self.covering)

    def is_covered_by(self, index: int) -> bool:
        return index in self.covering

    def __repr__(self) -> str:
        return f"Cell({sorted(self.covering)})"


class DecompositionStrategy(enum.Enum):
    """How the satisfiable cells are enumerated."""

    NAIVE = "naive"
    DFS = "dfs"
    DFS_REWRITE = "dfs-rewrite"

    @classmethod
    def parse(cls, text: str) -> "DecompositionStrategy":
        for member in cls:
            if member.value == text or member.name.lower() == text.lower():
                return member
        raise ConstraintError(
            f"unknown decomposition strategy {text!r}; expected one of "
            f"{[member.value for member in cls]}"
        )


@dataclass
class DecompositionStatistics:
    """Counters behind the paper's Figure 7."""

    num_constraints: int = 0
    cells_evaluated: int = 0
    solver_calls: int = 0
    rewrites_saved: int = 0
    subtrees_pruned: int = 0
    satisfiable_cells: int = 0
    assumed_satisfiable: int = 0
    #: Shard positions whose exact solve was replaced by the precomputed
    #: worst-case range under ``degrade="worst-case"`` (empty outside
    #: degraded executions) — the result-side stamp that a range is sound
    #: but looser than the exact answer.
    degraded_shards: tuple = ()

    def as_dict(self) -> dict[str, int]:
        result = {
            "num_constraints": self.num_constraints,
            "cells_evaluated": self.cells_evaluated,
            "solver_calls": self.solver_calls,
            "rewrites_saved": self.rewrites_saved,
            "subtrees_pruned": self.subtrees_pruned,
            "satisfiable_cells": self.satisfiable_cells,
            "assumed_satisfiable": self.assumed_satisfiable,
        }
        if self.degraded_shards:
            result["degraded_shards"] = list(self.degraded_shards)
        return result


@dataclass
class CellDecomposition:
    """The result of decomposing a predicate-constraint set."""

    cells: list[Cell]
    statistics: DecompositionStatistics
    query_region: Predicate | None = None

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    def cells_covered_by(self, index: int) -> list[int]:
        """Positions (into ``cells``) of the cells covered by constraint ``index``."""
        return [position for position, cell in enumerate(self.cells)
                if cell.is_covered_by(index)]


class CellDecomposer:
    """Enumerates the satisfiable cells of a predicate-constraint set.

    Parameters
    ----------
    pcset:
        The predicate-constraint set to decompose.
    strategy:
        Which enumeration strategy to use (see :class:`DecompositionStrategy`).
    early_stop_depth:
        If set, prefixes longer than this depth are assumed satisfiable
        without a solver call (Optimisation 4).  ``None`` disables the
        approximation.
    """

    def __init__(self, pcset: PredicateConstraintSet,
                 strategy: DecompositionStrategy = DecompositionStrategy.DFS_REWRITE,
                 early_stop_depth: int | None = None):
        self._pcset = pcset
        self._strategy = strategy
        self._early_stop_depth = early_stop_depth
        self._solver: BoxSolver = pcset.solver()
        self._boxes: list[Box] = [pc.predicate.to_box() for pc in pcset]

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def decompose(self, query_region: Predicate | None = None) -> CellDecomposition:
        """Enumerate satisfiable cells, optionally pushing down a query region."""
        statistics = DecompositionStatistics(num_constraints=len(self._pcset))
        query_box = query_region.to_box() if query_region is not None else None
        if len(self._pcset) == 0:
            return CellDecomposition([], statistics, query_region)
        if self._pcset.is_pairwise_disjoint():
            cells = self._decompose_disjoint(query_box, statistics)
        elif self._strategy is DecompositionStrategy.NAIVE:
            cells = self._decompose_naive(query_box, statistics)
        else:
            use_rewrite = self._strategy is DecompositionStrategy.DFS_REWRITE
            cells = self._decompose_dfs(query_box, statistics, use_rewrite)
        statistics.satisfiable_cells = len(cells)
        # The tally lives at the enumeration site — not at the cache/merge
        # layers above — so serial, thread-pooled and process-pooled
        # enumerations all charge their satisfiability-solver calls to
        # whichever span actually ran them, exactly once.
        from ..obs.trace import get_tracer

        get_tracer().add("solver_calls", statistics.solver_calls)
        return CellDecomposition(cells, statistics, query_region)

    # ------------------------------------------------------------------ #
    # Disjoint fast path (paper §4.2, "Faster Algorithm in Special Cases")
    # ------------------------------------------------------------------ #
    def _decompose_disjoint(self, query_box: Box | None,
                            statistics: DecompositionStatistics) -> list[Cell]:
        cells: list[Cell] = []
        for index, box in enumerate(self._boxes):
            statistics.cells_evaluated += 1
            positives = [box] if query_box is None else [box, query_box]
            statistics.solver_calls += 1
            if self._solver.is_satisfiable(positives, []):
                cells.append(Cell(frozenset({index})))
        return cells

    # ------------------------------------------------------------------ #
    # Naive enumeration: one full satisfiability check per subset
    # ------------------------------------------------------------------ #
    def _decompose_naive(self, query_box: Box | None,
                         statistics: DecompositionStatistics) -> list[Cell]:
        count = len(self._boxes)
        cells: list[Cell] = []
        for bitmask in range(1, 1 << count):
            covering = frozenset(
                index for index in range(count) if bitmask & (1 << index)
            )
            statistics.cells_evaluated += 1
            statistics.solver_calls += 1
            if self._check(covering, query_box):
                cells.append(Cell(covering))
        # The all-negated cell is also "evaluated" by the naive scheme even
        # though it can never contribute to a bound (no covering constraint).
        statistics.cells_evaluated += 1
        statistics.solver_calls += 1
        self._check(frozenset(), query_box)
        return cells

    # ------------------------------------------------------------------ #
    # DFS enumeration with optional rewriting and early stopping
    # ------------------------------------------------------------------ #
    def _decompose_dfs(self, query_box: Box | None,
                       statistics: DecompositionStatistics,
                       use_rewrite: bool) -> list[Cell]:
        count = len(self._boxes)
        cells: list[Cell] = []

        def recurse(depth: int, included: tuple[int, ...],
                    excluded: tuple[int, ...]) -> None:
            if depth == count:
                if included:
                    cells.append(Cell(frozenset(included)))
                return

            early_stop = (self._early_stop_depth is not None
                          and depth >= self._early_stop_depth)

            # Branch 1: include psi_depth.
            with_included = included + (depth,)
            if early_stop:
                statistics.assumed_satisfiable += 1
                include_satisfiable = True
            else:
                statistics.cells_evaluated += 1
                statistics.solver_calls += 1
                include_satisfiable = self._check_partial(
                    with_included, excluded, query_box)
            if include_satisfiable:
                recurse(depth + 1, with_included, excluded)
            else:
                statistics.subtrees_pruned += 1

            # Branch 2: exclude psi_depth (i.e. conjoin its negation).
            with_excluded = excluded + (depth,)
            if early_stop:
                statistics.assumed_satisfiable += 1
                exclude_satisfiable = True
            elif use_rewrite and not include_satisfiable:
                # Rewriting heuristic: the parent prefix was satisfiable
                # (otherwise we would not be here) and adding psi made it
                # unsatisfiable, hence adding NOT psi keeps it satisfiable.
                statistics.rewrites_saved += 1
                exclude_satisfiable = True
            else:
                statistics.cells_evaluated += 1
                statistics.solver_calls += 1
                exclude_satisfiable = self._check_partial(
                    included, with_excluded, query_box)
            if exclude_satisfiable:
                recurse(depth + 1, included, with_excluded)
            else:
                statistics.subtrees_pruned += 1

        recurse(0, (), ())
        return cells

    # ------------------------------------------------------------------ #
    # Satisfiability helpers
    # ------------------------------------------------------------------ #
    def _check(self, covering: frozenset[int], query_box: Box | None) -> bool:
        included = tuple(sorted(covering))
        excluded = tuple(index for index in range(len(self._boxes))
                         if index not in covering)
        return self._check_partial(included, excluded, query_box)

    def _check_partial(self, included: Sequence[int], excluded: Sequence[int],
                       query_box: Box | None) -> bool:
        positives = [self._boxes[index] for index in included]
        if query_box is not None:
            positives.append(query_box)
        negatives = [self._boxes[index] for index in excluded]
        return self._solver.is_satisfiable(positives, negatives)


# --------------------------------------------------------------------- #
# Reusable decompositions
# --------------------------------------------------------------------- #
def decomposition_cache_key(namespace: object,
                            query_region: Predicate | None) -> tuple:
    """The cache key under which one decomposition is stored.

    ``namespace`` identifies the constraint set *and* the decomposition
    strategy (the service layer derives it from content fingerprints so
    equal constraint sets share entries across analyzers); the query region
    completes the key because predicate pushdown makes the cell list
    region-specific.  :class:`~repro.core.predicates.Predicate` hashes by
    content, so syntactically equal regions collide as intended.

    Region *slices* share this key space: the region-sharded fan-out stores
    each shard's decomposition under ``(namespace, sub_region)`` (see
    :func:`repro.plan.sharding.slice_cache_keys`), because a shard's
    decomposition is definitionally the decomposition of its sub-region.
    Whole-region entries and slice entries may therefore serve each other —
    an overlapping query recomputes only uncovered slices, and a query
    whose region happens to equal a previous slice reuses it outright.
    """
    return ("decomposition", namespace, query_region)


def _structural_namespace(pcset: PredicateConstraintSet,
                          strategy: DecompositionStrategy,
                          early_stop_depth: int | None) -> tuple:
    """A content-derived namespace for callers that did not supply one.

    Built purely from hashable-by-content pieces (predicates, value and
    frequency constraints, domains, strategy knobs), so two equal constraint
    sets share cache entries while *any* difference — including the
    decomposition strategy — keys separately.  Keying by object identity
    instead would be unsound: a shared cache would hand one set's cells to
    another.
    """
    constraints = tuple((pc.predicate, pc.values, pc.frequency)
                        for pc in pcset)
    domains = frozenset(pcset.domains.items())
    return (constraints, domains, strategy, early_stop_depth)


def decompose_cached(
    pcset: PredicateConstraintSet,
    query_region: Predicate | None = None,
    *,
    strategy: DecompositionStrategy = DecompositionStrategy.DFS_REWRITE,
    early_stop_depth: int | None = None,
    cache=None,
    namespace: object = None,
    on_compute: Callable[[CellDecomposition], None] | None = None,
    compute_override: Callable[[], CellDecomposition] | None = None,
) -> CellDecomposition:
    """Decompose ``pcset``, reusing a previously computed decomposition.

    This is the single entry point through which the bounding engine and the
    service layer obtain decompositions: callers that pass a ``cache`` (any
    object with ``get_or_compute(key, factory)``, e.g.
    :class:`repro.service.LRUCache`) skip the exponential cell enumeration
    whenever an equal (namespace, region) pair was decomposed before —
    across queries, analyzers and threads.  ``on_compute`` fires only for
    fresh decompositions, which is how callers keep exact solver-call
    accounting even when most traffic is cache hits.

    ``compute_override`` swaps in an alternative way of *producing* the same
    decomposition on a cache miss — the region-sharded fan-out passes one
    that unions pool-computed sub-region cells — while caching, keying and
    ``on_compute`` accounting stay exactly as for an inline enumeration.
    The override must return a decomposition equal to what the inline path
    would compute (the region splitter's cell-union equality is argued in
    :mod:`repro.plan.sharding`); anything else would poison shared caches.

    ``namespace`` defaults to a structural key derived from the constraint
    set's content and the strategy knobs, so omitting it is always sound;
    pass one explicitly (e.g. a service-layer fingerprint) only to make the
    key cheaper or stable across processes.
    """

    def compute() -> CellDecomposition:
        if compute_override is not None:
            decomposition = compute_override()
        else:
            decomposer = CellDecomposer(pcset, strategy, early_stop_depth)
            decomposition = decomposer.decompose(query_region)
        if on_compute is not None:
            on_compute(decomposition)
        return decomposition

    if cache is None:
        return compute()
    if namespace is None:
        namespace = _structural_namespace(pcset, strategy, early_stop_depth)
    return cache.get_or_compute(decomposition_cache_key(namespace, query_region),
                                compute)
