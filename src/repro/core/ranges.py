"""Result ranges: the deterministic ``[lower, upper]`` intervals the paper
returns for aggregates over the missing partition.

This module is deliberately free of solver machinery so every layer — the
bound solver, the plan compiler, the service, the experiment reporters — can
share one interval vocabulary.  :class:`ResultRange` carries the interval
itself plus the metadata reports need (aggregate, attribute, closure flag,
decomposition statistics), and offers the small amount of interval algebra
the rest of the codebase would otherwise re-derive ad hoc: containment,
width, midpoint, intersection, translation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..exceptions import DisjointRangeError
from ..relational.aggregates import AggregateFunction

__all__ = ["ResultRange"]

_INF = float("inf")


@dataclass(frozen=True)
class ResultRange:
    """A deterministic result range ``[lower, upper]`` for an aggregate.

    ``None`` endpoints mean the value is undefined rather than unbounded:
    e.g. the MAX over a partition that may contain no rows has no guaranteed
    lower endpoint.  Unbounded endpoints are ``float('inf')`` /
    ``float('-inf')``.
    """

    lower: float | None
    upper: float | None
    aggregate: AggregateFunction | None = None
    attribute: str | None = None
    closed: bool = True
    statistics: object | None = None

    def contains(self, value: float | None) -> bool:
        """Whether ``value`` falls inside the range (used to score failures)."""
        if value is None:
            return True
        if self.lower is not None and value < self.lower - 1e-9:
            return False
        if self.upper is not None and value > self.upper + 1e-9:
            return False
        return True

    @property
    def width(self) -> float:
        """Upper minus lower (``inf`` when either side is unbounded/undefined)."""
        if self.lower is None or self.upper is None:
            return _INF
        return self.upper - self.lower

    @property
    def midpoint(self) -> float | None:
        """The interval centre, or ``None`` when the range is not bounded."""
        if not self.is_bounded:
            return None
        assert self.lower is not None and self.upper is not None
        return (self.lower + self.upper) / 2.0

    @property
    def is_bounded(self) -> bool:
        return (self.lower is not None and self.upper is not None
                and math.isfinite(self.lower) and math.isfinite(self.upper))

    def as_interval(self) -> tuple[float, float]:
        """The range as plain ``(lower, upper)`` floats, ``None`` -> infinite.

        Adapter used where ranges meet interval-estimate interfaces (the
        experiment harness): an undefined endpoint is as uninformative as an
        unbounded one, so both map to the corresponding infinity.
        """
        lower = -_INF if self.lower is None else self.lower
        upper = _INF if self.upper is None else self.upper
        return lower, upper

    def intersect(self, other: "ResultRange") -> "ResultRange":
        """The tightest range consistent with both ``self`` and ``other``.

        Sound whenever both inputs are sound for the same query — this is
        the combinator behind cross-backend cross-checks, where independent
        solvers each produce a valid range and their intersection is a
        tighter valid range.  ``None`` endpoints act as unbounded.

        Raises
        ------
        DisjointRangeError
            If the ranges are disjoint: two sound ranges for the same query
            can never be, so a crossed pair signals a solver defect.
        """
        lowers = [value for value in (self.lower, other.lower) if value is not None]
        uppers = [value for value in (self.upper, other.upper) if value is not None]
        lower = max(lowers) if lowers else None
        upper = min(uppers) if uppers else None
        if lower is not None and upper is not None and lower > upper + 1e-9:
            raise DisjointRangeError(
                f"cannot intersect disjoint result ranges [{self.lower}, "
                f"{self.upper}] and [{other.lower}, {other.upper}]",
                first=self, second=other)
        return ResultRange(
            lower=lower,
            upper=upper,
            aggregate=self.aggregate or other.aggregate,
            attribute=self.attribute or other.attribute,
            closed=self.closed and other.closed,
            statistics=self.statistics or other.statistics,
        )

    def over_estimation_rate(self, truth: float) -> float:
        """The paper's tightness metric: ``upper / truth`` (∞ if unbounded)."""
        if self.upper is None or not math.isfinite(self.upper):
            return _INF
        if truth == 0:
            return _INF if self.upper > 0 else 1.0
        return self.upper / truth

    def shifted(self, offset: float) -> "ResultRange":
        """Translate both endpoints by ``offset`` (used to add observed data)."""
        return ResultRange(
            lower=None if self.lower is None else self.lower + offset,
            upper=None if self.upper is None else self.upper + offset,
            aggregate=self.aggregate,
            attribute=self.attribute,
            closed=self.closed,
            statistics=self.statistics,
        )

    def __str__(self) -> str:
        label = self.aggregate.value if self.aggregate else "range"
        return f"{label}[{self.lower}, {self.upper}]"
