"""Predicate-constraint sets (paper §3.2).

A :class:`PredicateConstraintSet` collects the user's constraints about the
missing partition of a relation together with the attribute domains needed
to reason about them (categorical attributes need a finite domain so that
negated equality predicates stay decidable).

The class offers:

* satisfaction testing of the whole set against observed data
  (:meth:`validate_against`),
* the closure check of Definition 3.2 (:meth:`is_closed`,
  :meth:`closure_counterexample`),
* convenience constructors and simple algebraic helpers used by the
  builders and the noise-injection workloads.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import ClosureError, ConstraintError
from ..relational.relation import Relation
from ..solvers.sat import AttributeDomain, BoxSolver
from .constraints import ConstraintViolation, PredicateConstraint
from .predicates import Predicate

__all__ = ["PredicateConstraintSet"]


class PredicateConstraintSet:
    """An ordered collection of predicate-constraints plus attribute domains.

    Parameters
    ----------
    constraints:
        The predicate-constraints, in user order (order is preserved; it
        determines cell numbering but never affects bound values).
    domains:
        Optional mapping from attribute name to
        :class:`~repro.solvers.sat.AttributeDomain`.  Needed for closure
        checks and for negating categorical predicates during cell
        decomposition.  Numeric attributes may be omitted (they default to
        the full real line).
    """

    def __init__(self, constraints: Iterable[PredicateConstraint] = (),
                 domains: Mapping[str, AttributeDomain] | None = None):
        self._constraints: list[PredicateConstraint] = []
        self._domains: dict[str, AttributeDomain] = dict(domains or {})
        self._disjoint_hint: bool | None = None
        self._closed_hint: bool | None = None
        for constraint in constraints:
            self.add(constraint)

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def add(self, constraint: PredicateConstraint) -> None:
        """Append a predicate-constraint (renaming duplicates for clarity)."""
        if not isinstance(constraint, PredicateConstraint):
            raise ConstraintError(
                f"expected a PredicateConstraint, got {type(constraint).__name__}"
            )
        existing_names = {pc.name for pc in self._constraints}
        if constraint.name in existing_names:
            constraint = constraint.rename(
                f"{constraint.name}_{len(self._constraints)}")
        self._constraints.append(constraint)
        self._disjoint_hint = None
        self._closed_hint = None

    def extend(self, constraints: Iterable[PredicateConstraint]) -> None:
        for constraint in constraints:
            self.add(constraint)

    def __iter__(self) -> Iterator[PredicateConstraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __getitem__(self, index: int) -> PredicateConstraint:
        return self._constraints[index]

    @property
    def constraints(self) -> tuple[PredicateConstraint, ...]:
        return tuple(self._constraints)

    @property
    def domains(self) -> dict[str, AttributeDomain]:
        return dict(self._domains)

    def set_domain(self, attribute: str, domain: AttributeDomain) -> None:
        """Declare (or replace) the global domain of an attribute."""
        self._domains[attribute] = domain

    def attributes(self) -> set[str]:
        """All attributes referenced by any predicate or value constraint."""
        referenced: set[str] = set()
        for constraint in self._constraints:
            referenced |= constraint.predicate.attributes()
            referenced |= constraint.values.attributes()
        return referenced

    def predicates(self) -> list[Predicate]:
        return [constraint.predicate for constraint in self._constraints]

    def solver(self) -> BoxSolver:
        """A box SAT solver configured with this set's attribute domains."""
        return BoxSolver(self._domains)

    # ------------------------------------------------------------------ #
    # Structure helpers
    # ------------------------------------------------------------------ #
    def mark_disjoint(self, disjoint: bool = True) -> None:
        """Declare (from construction knowledge) that the predicates are disjoint.

        Builders that produce partitions call this so that large partitioned
        sets skip the quadratic pairwise-overlap scan.  Adding further
        constraints clears the hint.
        """
        self._disjoint_hint = disjoint

    def is_pairwise_disjoint(self) -> bool:
        """Whether no two predicates overlap (the fast partitioned case, §4.2)."""
        if self._disjoint_hint is not None:
            return self._disjoint_hint
        predicates = self.predicates()
        for i, first in enumerate(predicates):
            for second in predicates[i + 1:]:
                if first.overlaps(second):
                    self._disjoint_hint = False
                    return False
        self._disjoint_hint = True
        return True

    def total_max_rows(self) -> int:
        """Sum of the per-constraint maximum frequencies (a crude cardinality cap)."""
        return sum(constraint.max_rows() for constraint in self._constraints)

    def total_min_rows(self) -> int:
        """Sum of the per-constraint minimum frequencies."""
        return sum(constraint.min_rows() for constraint in self._constraints)

    def has_mandatory_rows(self) -> bool:
        """True when some constraint forces rows to exist (``kl > 0``)."""
        return any(constraint.min_rows() > 0 for constraint in self._constraints)

    # ------------------------------------------------------------------ #
    # Satisfaction and closure
    # ------------------------------------------------------------------ #
    def validate_against(self, relation: Relation) -> list[ConstraintViolation]:
        """Check every constraint against observed data; return all violations."""
        violations: list[ConstraintViolation] = []
        for constraint in self._constraints:
            violations.extend(constraint.violations(relation))
        return violations

    def is_satisfied_by(self, relation: Relation) -> bool:
        """``R |= S``: the relation satisfies every constraint in the set."""
        return not self.validate_against(relation)

    def mark_closed(self, closed: bool = True) -> None:
        """Declare (from construction knowledge) closure over the full domain.

        Builders whose constraints cover the whole attribute domain call
        this so that large constraint sets skip the (potentially expensive)
        closure search.  Adding further constraints clears the hint.
        """
        self._closed_hint = closed

    def is_closed(self, region: Predicate | None = None) -> bool:
        """Closure check (Definition 3.2), restricted to ``region`` if given.

        The set is closed over a region when every possible row in the
        region satisfies at least one predicate — equivalently, when
        ``region ∧ ¬ψ1 ∧ ... ∧ ¬ψn`` is unsatisfiable.
        """
        if self._closed_hint:
            # Closure over the full domain implies closure over any region.
            return True
        return self.closure_counterexample(region) is None

    def closure_counterexample(self, region: Predicate | None = None
                               ) -> dict[str, object] | None:
        """A row in the region covered by no predicate, or ``None`` if closed."""
        solver = self.solver()
        positives = [] if region is None else [region.to_box()]
        negatives = [predicate.to_box() for predicate in self.predicates()]
        return solver.find_witness(positives, negatives)

    def require_closed(self, region: Predicate | None = None) -> None:
        """Raise :class:`ClosureError` when the set is not closed over the region."""
        witness = self.closure_counterexample(region)
        if witness is not None:
            raise ClosureError(
                "predicate-constraint set is not closed: the row "
                f"{witness!r} is covered by no predicate, so no finite bound exists"
            )

    # ------------------------------------------------------------------ #
    # Transformation helpers
    # ------------------------------------------------------------------ #
    def restricted_to(self, region: Predicate) -> "PredicateConstraintSet":
        """The subset of constraints whose predicates overlap ``region``.

        Used by the engine's predicate-pushdown optimisation: constraints
        entirely outside the query region cannot affect the objective, so
        they only need to be retained when they force rows to exist.
        """
        kept = [constraint for constraint in self._constraints
                if constraint.predicate.overlaps(region)
                or constraint.min_rows() > 0]
        return PredicateConstraintSet(kept, self._domains)

    def map_constraints(self, transform) -> "PredicateConstraintSet":
        """A new set with ``transform`` applied to every constraint."""
        return PredicateConstraintSet(
            [transform(constraint) for constraint in self._constraints],
            self._domains,
        )

    def __repr__(self) -> str:
        return (f"PredicateConstraintSet(n={len(self._constraints)}, "
                f"attributes={sorted(self.attributes())})")
