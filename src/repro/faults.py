"""Deterministic fault injection and query deadlines.

Fault tolerance code is the least exercised code in any service: worker
crashes, delayed replies and poison payloads are rare in production and
nearly impossible to reproduce on demand.  This module makes every failure
mode the pool handles *scriptable*, so the chaos tests (and CI) drive the
exact same recovery paths a production incident would.

A fault plan is a semicolon-separated list of clauses::

    REPRO_FAULTS="kill:worker=1,task=7;delay:shard=2,ms=500;drop_reply:nth=3"

Each clause is ``action:key=value,...`` where *action* is one of

``kill``
    The worker process exits hard (``os._exit``) before running the task —
    the crash-recovery path: respawn, re-dispatch, retry budget.
``delay``
    The worker sleeps ``ms`` milliseconds before running the task — the
    straggler path: deadlines, degradation, work stealing.
``drop_reply``
    The worker runs the task but never sends the reply — the lost-message
    path: the coordinator sees a silent worker, not a dead one.
``fail``
    The worker raises an injected :class:`~repro.exceptions.SolverError`
    instead of running the task — the application-error path.

and the keys select *which* dispatch the fault fires on:

``worker=N``   only tasks dispatched to worker index ``N``
``kind=NAME``  only tasks of that kind (``solve``, ``decompose_batch``, ...)
``task=N``     only the ``N``-th dispatch overall (1-based, deterministic
               because dispatch order is deterministic)
``shard=N``    only tasks whose payload position (shard index) is ``N``
``nth=N``      the ``N``-th dispatch matching the other keys
``ms=N``       (``delay`` only) sleep duration in milliseconds
``count=N``    fire up to ``N`` times (default 1)
``message=S``  (``fail`` only) text carried by the injected error

Matching happens on the *coordinator* side at dispatch time — the
coordinator knows the worker index, task kind, shard position and the
global dispatch ordinal, and rounds serialise under the pool's round lock,
so a plan fires on exactly the same dispatch every run.  The matched
directive ships to the worker inside the task payload's control slot; the
worker only ever executes what the coordinator already decided.

The module also owns the ambient **query deadline**: a
:class:`Deadline` installed with :func:`deadline_scope` is visible to every
layer underneath (admission wait loops, pool rounds) via
:func:`current_deadline`, without threading a parameter through each
signature.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from .exceptions import ReproError, SolverError

__all__ = [
    "FAULTS_ENV",
    "FaultDirective",
    "FaultPlan",
    "parse_faults",
    "resolve_faults",
    "faults_enabled",
    "apply_worker_fault",
    "Deadline",
    "deadline_scope",
    "current_deadline",
]

#: Environment variable holding the fault plan.  Mirrors ``REPRO_STEAL``:
#: the environment wins over any configured value, so CI legs and ad-hoc
#: shells can inject faults without touching code.
FAULTS_ENV = "REPRO_FAULTS"

_ACTIONS = ("kill", "delay", "drop_reply", "fail")

_INT_KEYS = ("worker", "task", "shard", "nth", "count")


@dataclass
class FaultDirective:
    """One parsed clause of a fault plan, with its firing state.

    ``_seen`` counts dispatches that matched the selector keys (for
    ``nth``); ``_fired`` counts times the fault actually fired (for
    ``count``).  Both reset with :meth:`FaultPlan.reset`.
    """

    action: str
    worker: int | None = None
    kind: str | None = None
    task: int | None = None
    shard: int | None = None
    nth: int | None = None
    ms: float = 0.0
    count: int = 1
    message: str = "injected fault"
    _seen: int = 0
    _fired: int = 0

    def matches(self, worker: int, kind: str, position: int,
                dispatch: int) -> bool:
        if self._fired >= self.count:
            return False
        if self.worker is not None and worker != self.worker:
            return False
        if self.kind is not None and kind != self.kind:
            return False
        if self.task is not None and dispatch != self.task:
            return False
        if self.shard is not None and position != self.shard:
            return False
        self._seen += 1
        if self.nth is not None and self._seen != self.nth:
            return False
        self._fired += 1
        return True

    def wire(self) -> tuple:
        """The picklable directive shipped in the task payload."""
        if self.action == "delay":
            return ("delay", self.ms)
        if self.action == "fail":
            return ("fail", self.message)
        return (self.action,)


class FaultPlan:
    """A parsed fault plan: an ordered list of directives plus firing state.

    Thread-safe; at most one directive fires per dispatch (first match in
    clause order wins, like firewall rules).
    """

    def __init__(self, directives: list[FaultDirective], spec: str = ""):
        self._directives = list(directives)
        self._spec = spec
        self._lock = threading.Lock()
        self._dispatches = 0

    def __bool__(self) -> bool:
        return bool(self._directives)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self._spec!r})"

    @property
    def spec(self) -> str:
        return self._spec

    def on_dispatch(self, worker: int, kind: str, position: int) -> tuple | None:
        """Consult the plan for one dispatch; returns a wire directive or
        ``None``.  Increments the global dispatch ordinal either way."""
        with self._lock:
            self._dispatches += 1
            for directive in self._directives:
                if directive.matches(worker, kind, position, self._dispatches):
                    return directive.wire()
        return None

    def fired(self) -> int:
        """Total times any directive has fired since the last reset."""
        with self._lock:
            return sum(d._fired for d in self._directives)

    def reset(self) -> None:
        """Re-arm every directive and restart the dispatch ordinal."""
        with self._lock:
            self._dispatches = 0
            for directive in self._directives:
                directive._seen = 0
                directive._fired = 0


def parse_faults(spec: str) -> FaultPlan:
    """Parse a fault-plan string into a :class:`FaultPlan`.

    Raises :class:`~repro.exceptions.ReproError` on unknown actions or
    malformed keys — a typo in a chaos-test plan must fail loudly, not
    silently inject nothing.
    """
    directives: list[FaultDirective] = []
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        action, _, rest = clause.partition(":")
        action = action.strip()
        if action not in _ACTIONS:
            raise ReproError(
                f"unknown fault action {action!r} in {clause!r} "
                f"(expected one of {', '.join(_ACTIONS)})")
        directive = FaultDirective(action=action)
        for pair in rest.split(","):
            pair = pair.strip()
            if not pair:
                continue
            key, sep, value = pair.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ReproError(
                    f"malformed fault selector {pair!r} in {clause!r} "
                    f"(expected key=value)")
            if key in _INT_KEYS:
                try:
                    setattr(directive, key, int(value))
                except ValueError:
                    raise ReproError(
                        f"fault selector {key!r} needs an integer, "
                        f"got {value!r}") from None
            elif key == "ms":
                try:
                    directive.ms = float(value)
                except ValueError:
                    raise ReproError(
                        f"fault selector 'ms' needs a number, "
                        f"got {value!r}") from None
            elif key == "kind":
                directive.kind = value
            elif key == "message":
                directive.message = value
            else:
                raise ReproError(
                    f"unknown fault selector {key!r} in {clause!r}")
        if directive.count < 1:
            raise ReproError("fault selector 'count' must be >= 1")
        directives.append(directive)
    return FaultPlan(directives, spec=spec)


def faults_enabled() -> bool:
    """Whether the environment carries a non-empty fault plan."""
    raw = os.environ.get(FAULTS_ENV)
    return raw is not None and raw.strip() != ""


def resolve_faults(configured: FaultPlan | str | None = None) -> FaultPlan | None:
    """The effective fault plan: the environment wins over ``configured``.

    Mirrors :func:`repro.parallel.stealing.resolve_stealing` — an explicit
    ``REPRO_FAULTS`` beats whatever the caller wired up, so chaos CI legs
    apply to unmodified code.  Returns ``None`` when no faults are active
    (the common case: zero overhead on the dispatch path).
    """
    raw = os.environ.get(FAULTS_ENV)
    if raw is not None and raw.strip() != "":
        return parse_faults(raw)
    if configured is None:
        return None
    if isinstance(configured, str):
        return parse_faults(configured)
    return configured


def apply_worker_fault(directive: tuple | None) -> bool:
    """Execute a wire directive inside a worker, before running the task.

    Returns ``True`` when the reply for this task must be *dropped*
    (computed but never sent); the caller skips the send.  ``kill`` never
    returns; ``fail`` raises; ``delay`` sleeps and returns normally.
    """
    if not directive:
        return False
    action = directive[0]
    if action == "kill":
        # Hard exit: no atexit handlers, no flushing — indistinguishable
        # from the kernel OOM-killing the worker, which is the point.
        os._exit(1)
    if action == "delay":
        time.sleep(float(directive[1]) / 1000.0)
        return False
    if action == "fail":
        raise SolverError(f"injected failure: {directive[1]}")
    if action == "drop_reply":
        return True
    return False


# --------------------------------------------------------------------- #
# Query deadlines
# --------------------------------------------------------------------- #
class Deadline:
    """A wall-clock budget anchored at construction time.

    Monotonic-clock based, so NTP steps cannot fire (or un-fire) it.
    """

    __slots__ = ("seconds", "_expires_at", "_started_at")

    def __init__(self, seconds: float):
        if seconds <= 0:
            raise ReproError(f"deadline must be positive, got {seconds!r}")
        self.seconds = float(seconds)
        self._started_at = time.monotonic()
        self._expires_at = self._started_at + self.seconds

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self._expires_at - time.monotonic()

    def elapsed(self) -> float:
        return time.monotonic() - self._started_at

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Deadline({self.seconds:.3f}s, "
                f"remaining={self.remaining():.3f}s)")


_AMBIENT = threading.local()


def current_deadline() -> Deadline | None:
    """The innermost deadline installed on this thread, if any."""
    stack = getattr(_AMBIENT, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` as the ambient deadline for the dynamic extent.

    ``None`` is accepted and is a no-op, so call sites need no branching:
    ``with deadline_scope(make_deadline(options)): ...``.  Scopes nest;
    the innermost wins (a sub-operation may run under a tighter budget).
    """
    if deadline is None:
        yield None
        return
    stack = getattr(_AMBIENT, "stack", None)
    if stack is None:
        stack = _AMBIENT.stack = []
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()
