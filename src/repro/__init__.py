"""repro — Predicate-Constraint contingency analysis for missing data.

A from-scratch reproduction of *"Fast and Reliable Missing Data Contingency
Analysis with Predicate-Constraints"* (Liang, Shang, Elmore, Krishnan,
Franklin; SIGMOD 2020).

The public API re-exported here covers the typical workflow:

>>> from repro import (Predicate, PredicateConstraint, PredicateConstraintSet,
...                    ValueConstraint, FrequencyConstraint,
...                    PCAnalyzer, ContingencyQuery)
>>> chicago = PredicateConstraint(
...     Predicate.equals("branch", "Chicago"),
...     ValueConstraint({"price": (0.0, 149.99)}),
...     FrequencyConstraint.at_most(5),
...     name="chicago-sales")

Sub-packages
------------
``repro.core``
    The predicate-constraint framework itself (paper §3–§5).
``repro.relational``
    The in-memory relational substrate (ground truth evaluation, joins).
``repro.plan``
    The bound-plan pipeline (plan → optimize → compile → solve): the
    logical :class:`BoundPlan` IR, bound-preserving optimizer passes, and
    compiled :class:`BoundProgram` artifacts the service layer caches.
``repro.solvers``
    Satisfiability, LP/MILP, fractional-edge-cover substrates, and the
    MILP backend registry.
``repro.parallel``
    Parallel solve fan-out: plan sharding along independent constraint
    components (:class:`ShardedBoundPlan`), the thread/process
    :class:`SolveExecutor`, and cross-backend range verification.
``repro.service``
    The long-lived service layer: named/versioned constraint sessions,
    fingerprint-keyed decomposition and report caches, and concurrent batch
    execution (:class:`ContingencyService`).
``repro.baselines``
    The statistical estimators the paper compares against (§6.1).
``repro.datasets`` / ``repro.workloads`` / ``repro.experiments``
    Synthetic re-creations of the evaluation datasets, query/missing-data
    workload generators, and one module per paper table/figure.
"""

from .core import (
    BoundOptions,
    ContingencyQuery,
    ContingencyReport,
    FrequencyConstraint,
    JoinBound,
    JoinBoundAnalyzer,
    JoinRelationSpec,
    PCAnalyzer,
    PCBoundSolver,
    Predicate,
    PredicateConstraint,
    PredicateConstraintSet,
    ResultRange,
    ValueConstraint,
    build_corr_pcs,
    build_histogram_pcs,
    build_partition_pcs,
    build_random_pcs,
)
from .plan import (
    BoundPlan,
    BoundProgram,
    BoundQuery,
    build_plan,
    compile_plan,
    optimize_plan,
)
from .parallel import (
    PlanShard,
    ShardedBoundPlan,
    SolveExecutor,
    merge_shard_ranges,
    shard_plan,
)
from .relational import (
    AggregateFunction,
    AggregateQuery,
    ColumnType,
    Relation,
    Schema,
)
from .service import (
    BatchExecutor,
    BatchResult,
    CacheStatistics,
    ContingencyService,
    LRUCache,
    RegisteredSession,
    ServiceStatistics,
    SessionRegistry,
)

__version__ = "1.1.0"

__all__ = [
    "BoundOptions",
    "ContingencyQuery",
    "ContingencyReport",
    "FrequencyConstraint",
    "JoinBound",
    "JoinBoundAnalyzer",
    "JoinRelationSpec",
    "PCAnalyzer",
    "PCBoundSolver",
    "Predicate",
    "PredicateConstraint",
    "PredicateConstraintSet",
    "ResultRange",
    "ValueConstraint",
    "build_corr_pcs",
    "build_histogram_pcs",
    "build_partition_pcs",
    "build_random_pcs",
    "BoundPlan",
    "BoundProgram",
    "BoundQuery",
    "build_plan",
    "compile_plan",
    "optimize_plan",
    "PlanShard",
    "ShardedBoundPlan",
    "SolveExecutor",
    "merge_shard_ranges",
    "shard_plan",
    "AggregateFunction",
    "AggregateQuery",
    "ColumnType",
    "Relation",
    "Schema",
    "BatchExecutor",
    "BatchResult",
    "CacheStatistics",
    "ContingencyService",
    "LRUCache",
    "RegisteredSession",
    "ServiceStatistics",
    "SessionRegistry",
    "__version__",
]
