"""Synthetic re-creation of the Airbnb NYC 2019 listings dataset.

The real dataset has ~50k listings with location (latitude/longitude),
neighbourhood group, room type, price, reviews, and availability columns.
The paper's experiments predicate on latitude/longitude and aggregate the
(heavily skewed) ``price`` attribute.  The generator reproduces:

* spatial clustering of listings into borough-like clusters,
* a heavy-tailed price distribution whose median differs per cluster
  (Manhattan ≫ Bronx), giving the location↔price correlation,
* nuisance attributes (reviews, minimum nights, availability).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..relational.relation import Relation
from ..relational.schema import ColumnType, Schema
from .synthetic import lognormal_prices, make_rng

__all__ = ["AIRBNB_SCHEMA", "generate_airbnb"]

AIRBNB_SCHEMA = Schema.from_pairs([
    ("latitude", ColumnType.FLOAT),
    ("longitude", ColumnType.FLOAT),
    ("price", ColumnType.FLOAT),
    ("minimum_nights", ColumnType.INT),
    ("number_of_reviews", ColumnType.INT),
    ("availability_365", ColumnType.INT),
    ("neighbourhood_group", ColumnType.STRING),
    ("room_type", ColumnType.STRING),
])

# (name, centre latitude, centre longitude, spread, median price, share)
_BOROUGHS = [
    ("Manhattan", 40.78, -73.97, 0.035, 180.0, 0.40),
    ("Brooklyn", 40.65, -73.95, 0.045, 110.0, 0.35),
    ("Queens", 40.73, -73.80, 0.050, 90.0, 0.15),
    ("Bronx", 40.85, -73.87, 0.040, 75.0, 0.06),
    ("Staten Island", 40.58, -74.13, 0.040, 70.0, 0.04),
]

_ROOM_TYPES = ["Entire home/apt", "Private room", "Shared room"]
_ROOM_MULTIPLIERS = {"Entire home/apt": 1.4, "Private room": 0.75, "Shared room": 0.45}


def generate_airbnb(num_rows: int = 20_000, seed: int | None = 11) -> Relation:
    """Generate a synthetic Airbnb-NYC-like listings relation."""
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    rng = make_rng(seed)

    shares = np.array([borough[5] for borough in _BOROUGHS])
    shares = shares / shares.sum()
    cluster = rng.choice(len(_BOROUGHS), size=num_rows, p=shares)

    latitude = np.empty(num_rows)
    longitude = np.empty(num_rows)
    price = np.empty(num_rows)
    group = np.empty(num_rows, dtype=object)
    room_type = rng.choice(_ROOM_TYPES, size=num_rows, p=[0.52, 0.45, 0.03])

    for index, (name, lat, lon, spread, median, _share) in enumerate(_BOROUGHS):
        mask = cluster == index
        count = int(mask.sum())
        if count == 0:
            continue
        latitude[mask] = rng.normal(lat, spread, size=count)
        longitude[mask] = rng.normal(lon, spread, size=count)
        price[mask] = lognormal_prices(rng, count, median=median, sigma=0.65,
                                       cap=10_000.0)
        group[mask] = name

    multipliers = np.array([_ROOM_MULTIPLIERS[r] for r in room_type])
    price = np.round(np.maximum(price * multipliers, 10.0), 2)

    minimum_nights = np.minimum(rng.geometric(0.35, size=num_rows), 60)
    number_of_reviews = rng.negative_binomial(1, 0.04, size=num_rows)
    availability = rng.integers(0, 366, size=num_rows)

    return Relation(AIRBNB_SCHEMA, {
        "latitude": np.round(latitude, 5),
        "longitude": np.round(longitude, 5),
        "price": price,
        "minimum_nights": minimum_nights,
        "number_of_reviews": number_of_reviews,
        "availability_365": availability,
        "neighbourhood_group": group,
        "room_type": room_type,
    }, name="airbnb_nyc")
