"""Synthetic re-creations of the paper's evaluation datasets.

The real Intel Wireless, Airbnb NYC and Border Crossing files are not
available offline; these generators reproduce their schemas, correlation
structure and skew at configurable scale (see DESIGN.md §1.2 for the
substitution rationale).
"""

from .airbnb import AIRBNB_SCHEMA, generate_airbnb
from .border_crossing import BORDER_SCHEMA, generate_border_crossing
from .graphs import (
    count_triangles,
    generate_chain_relations,
    generate_edge_table,
    triangle_relations,
)
from .intel_wireless import INTEL_SCHEMA, generate_intel_wireless
from .synthetic import DatasetSpec, lognormal_prices, make_rng, zipf_weights

__all__ = [
    "AIRBNB_SCHEMA",
    "generate_airbnb",
    "BORDER_SCHEMA",
    "generate_border_crossing",
    "count_triangles",
    "generate_chain_relations",
    "generate_edge_table",
    "triangle_relations",
    "INTEL_SCHEMA",
    "generate_intel_wireless",
    "DatasetSpec",
    "lognormal_prices",
    "make_rng",
    "zipf_weights",
]
