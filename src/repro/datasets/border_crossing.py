"""Synthetic re-creation of the BTS Border Crossing dataset.

The real dataset summarises inbound crossings at U.S.–Canada and U.S.–Mexico
ports: ~300k rows of (port, state, date, measure, value).  The paper
predicates on ``port`` and ``date`` and aggregates the very skewed ``value``
column (a handful of large ports dominate).  The generator reproduces:

* Zipf-skewed port popularity (a few ports account for most traffic),
* per-measure scale differences (personal vehicles ≫ trains),
* mild seasonality over the date axis.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..relational.relation import Relation
from ..relational.schema import ColumnType, Schema
from .synthetic import make_rng, zipf_weights

__all__ = ["BORDER_SCHEMA", "generate_border_crossing"]

BORDER_SCHEMA = Schema.from_pairs([
    ("port_code", ColumnType.INT),
    ("date", ColumnType.FLOAT),      # months since the start of the series
    ("value", ColumnType.FLOAT),     # number of crossings
    ("measure", ColumnType.STRING),
    ("border", ColumnType.STRING),
])

_MEASURES = [
    ("Personal Vehicles", 20_000.0),
    ("Personal Vehicle Passengers", 35_000.0),
    ("Pedestrians", 8_000.0),
    ("Trucks", 4_000.0),
    ("Buses", 300.0),
    ("Trains", 40.0),
]


def generate_border_crossing(num_rows: int = 40_000, num_ports: int = 120,
                             num_months: int = 240,
                             seed: int | None = 13) -> Relation:
    """Generate a synthetic Border-Crossing-like relation."""
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    if num_ports <= 0:
        raise DatasetError("num_ports must be positive")
    rng = make_rng(seed)

    port_popularity = zipf_weights(num_ports, exponent=1.2)
    port_code = rng.choice(num_ports, size=num_rows, p=port_popularity)
    date = rng.uniform(0.0, float(num_months), size=num_rows)
    measure_index = rng.integers(0, len(_MEASURES), size=num_rows)
    measure = np.array([_MEASURES[i][0] for i in measure_index], dtype=object)
    measure_scale = np.array([_MEASURES[i][1] for i in measure_index])

    # Port size follows the same Zipf weights; value combines port size,
    # measure scale, seasonality, and noise — yielding the long right tail
    # the paper calls out.
    port_scale = port_popularity[port_code] * num_ports
    seasonality = 1.0 + 0.3 * np.sin(date / 12.0 * 2.0 * np.pi)
    noise = rng.lognormal(mean=0.0, sigma=0.5, size=num_rows)
    value = np.round(measure_scale * port_scale * seasonality * noise, 0)

    border = np.where(port_code % 3 == 0, "US-Mexico Border", "US-Canada Border")

    return Relation(BORDER_SCHEMA, {
        "port_code": port_code,
        "date": np.round(date, 2),
        "value": value,
        "measure": measure,
        "border": border.astype(object),
    }, name="border_crossing")
