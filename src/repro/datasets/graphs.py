"""Random edge tables and chain-join relations (paper §6.6.3).

The join experiments use randomly populated edge tables:

* **Triangle counting** — the query ``|R(a,b) S(b,c) T(c,a)|`` where all
  three relations are the same random directed edge table.
* **Acyclic chain joins** — ``R1(x1,x2) ⋈ R2(x2,x3) ⋈ ... ⋈ R5(x5,x6)`` with
  ``K`` rows per relation.

The generators return :class:`~repro.relational.relation.Relation` objects so
the exact join sizes can be computed with the relational substrate on small
instances, and plain statistics (cardinalities, max degrees) for the bound
comparisons at larger sizes.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..relational.relation import Relation
from ..relational.schema import ColumnType, Schema
from .synthetic import make_rng

__all__ = [
    "generate_edge_table",
    "triangle_relations",
    "generate_chain_relations",
    "count_triangles",
]


def generate_edge_table(num_edges: int, num_vertices: int | None = None,
                        seed: int | None = 17, name: str = "edges") -> Relation:
    """A random directed edge table ``edges(src, dst)`` without self-loops."""
    if num_edges <= 0:
        raise DatasetError("num_edges must be positive")
    rng = make_rng(seed)
    vertices = num_vertices if num_vertices is not None else max(
        2, int(round(num_edges ** 0.75)))
    if vertices < 2:
        raise DatasetError("num_vertices must be at least 2")
    src = rng.integers(0, vertices, size=num_edges)
    dst = rng.integers(0, vertices, size=num_edges)
    loops = src == dst
    dst[loops] = (dst[loops] + 1) % vertices
    schema = Schema.from_pairs([("src", ColumnType.INT), ("dst", ColumnType.INT)])
    return Relation(schema, {"src": src, "dst": dst}, name=name)


def triangle_relations(edges: Relation) -> tuple[Relation, Relation, Relation]:
    """The three renamed copies ``R(a,b)``, ``S(b,c)``, ``T(c,a)`` of an edge table."""
    src = edges.column("src")
    dst = edges.column("dst")

    def make(name: str, first: str, second: str) -> Relation:
        schema = Schema.from_pairs([(first, ColumnType.INT), (second, ColumnType.INT)])
        return Relation(schema, {first: src, second: dst}, name=name)

    return make("R", "a", "b"), make("S", "b", "c"), make("T", "c", "a")


def count_triangles(edges: Relation) -> int:
    """The exact value of ``|R(a,b) S(b,c) T(c,a)|`` for the edge table.

    Counts ordered directed triangles (the raw natural-join cardinality the
    paper's query computes), including those formed by parallel duplicate
    edges.
    """
    from ..relational.joins import natural_join_many

    relation_r, relation_s, relation_t = triangle_relations(edges)
    return natural_join_many([relation_r, relation_s, relation_t]).num_rows


def generate_chain_relations(rows_per_relation: int, num_relations: int = 5,
                             domain_size: int | None = None,
                             seed: int | None = 19) -> list[Relation]:
    """Relations ``R1(x1,x2), ..., Rk(xk, xk+1)`` with random integer keys."""
    if rows_per_relation <= 0:
        raise DatasetError("rows_per_relation must be positive")
    if num_relations <= 0:
        raise DatasetError("num_relations must be positive")
    rng = make_rng(seed)
    domain = domain_size if domain_size is not None else max(
        2, int(round(rows_per_relation ** 0.8)))
    relations: list[Relation] = []
    for index in range(num_relations):
        left = f"x{index + 1}"
        right = f"x{index + 2}"
        schema = Schema.from_pairs([(left, ColumnType.INT), (right, ColumnType.INT)])
        columns = {
            left: rng.integers(0, domain, size=rows_per_relation),
            right: rng.integers(0, domain, size=rows_per_relation),
        }
        relations.append(Relation(schema, columns, name=f"R{index + 1}"))
    return relations
