"""Shared helpers for the synthetic dataset generators.

The paper evaluates on four real datasets (Intel Wireless, Airbnb NYC,
Border Crossing, and randomly generated join tables).  The raw files are not
available offline, so each generator in this subpackage re-creates the
statistical features the experiments depend on — schema, attribute
correlations, and value skew — at a configurable scale.  DESIGN.md records
the substitution rationale per dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import DatasetError

__all__ = ["DatasetSpec", "make_rng", "lognormal_prices", "zipf_weights"]


@dataclass(frozen=True)
class DatasetSpec:
    """Bookkeeping attached to every generated dataset."""

    name: str
    num_rows: int
    seed: int
    description: str = ""


def make_rng(seed: int | None) -> np.random.Generator:
    """A numpy Generator from an optional seed (None = non-deterministic)."""
    return np.random.default_rng(seed)


def lognormal_prices(rng: np.random.Generator, count: int, median: float,
                     sigma: float, cap: float | None = None) -> np.ndarray:
    """Heavy-tailed positive values shaped like listing prices."""
    if count < 0:
        raise DatasetError("count must be non-negative")
    values = rng.lognormal(mean=np.log(max(median, 1e-9)), sigma=sigma, size=count)
    if cap is not None:
        values = np.minimum(values, cap)
    return np.round(values, 2)


def zipf_weights(count: int, exponent: float = 1.1) -> np.ndarray:
    """Normalised Zipf-like popularity weights for ``count`` categories."""
    if count <= 0:
        raise DatasetError("count must be positive")
    ranks = np.arange(1, count + 1, dtype=np.float64)
    weights = 1.0 / np.power(ranks, exponent)
    return weights / weights.sum()
