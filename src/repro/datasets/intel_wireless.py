"""Synthetic re-creation of the Intel Berkeley Research Lab sensor dataset.

The real dataset [Bodik et al. 2004] holds ~3M readings from 54 sensors with
columns (date, time, epoch, moteid, temperature, humidity, light, voltage).
The paper aggregates the ``light`` attribute and partitions on ``device id``
and ``time``.  The generator below reproduces the features the experiments
rely on:

* ``light`` is strongly correlated with time-of-day (diurnal cycle) and with
  the device (some sensors sit near windows and see much higher peaks),
* the light distribution is right-skewed with occasional large spikes,
* ``temperature`` / ``humidity`` / ``voltage`` are mildly correlated
  nuisance attributes.

Row counts default to a laptop-friendly size; the schema and correlation
structure, not the raw volume, is what the experiments exercise.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import DatasetError
from ..relational.relation import Relation
from ..relational.schema import ColumnType, Schema
from .synthetic import make_rng

__all__ = ["INTEL_SCHEMA", "generate_intel_wireless"]

INTEL_SCHEMA = Schema.from_pairs([
    ("device_id", ColumnType.INT),
    ("time", ColumnType.FLOAT),          # hours since the start of the trace
    ("light", ColumnType.FLOAT),         # lux
    ("temperature", ColumnType.FLOAT),   # Celsius
    ("humidity", ColumnType.FLOAT),      # percent
    ("voltage", ColumnType.FLOAT),       # volts
])


def generate_intel_wireless(num_rows: int = 30_000, num_devices: int = 54,
                            duration_hours: float = 720.0,
                            seed: int | None = 7) -> Relation:
    """Generate a synthetic Intel-Wireless-like sensor relation.

    Parameters
    ----------
    num_rows:
        Number of readings to generate.
    num_devices:
        Number of sensors (the real deployment had 54).
    duration_hours:
        Length of the trace; readings are spread uniformly over it.
    seed:
        RNG seed for reproducibility.
    """
    if num_rows <= 0:
        raise DatasetError("num_rows must be positive")
    if num_devices <= 0:
        raise DatasetError("num_devices must be positive")
    rng = make_rng(seed)

    device_id = rng.integers(0, num_devices, size=num_rows)
    time = rng.uniform(0.0, duration_hours, size=num_rows)
    hour_of_day = np.mod(time, 24.0)

    # Diurnal light cycle peaking mid-day, scaled per device: devices near
    # windows (high multiplier) see far larger peaks — this is the
    # correlation the Corr-PC scheme exploits.
    device_brightness = rng.uniform(0.2, 3.0, size=num_devices)
    daylight = np.clip(np.sin((hour_of_day - 6.0) / 12.0 * np.pi), 0.0, None)
    base_light = 500.0 * daylight * device_brightness[device_id]
    ambient = rng.exponential(scale=30.0, size=num_rows)
    spikes = (rng.random(num_rows) < 0.01) * rng.uniform(500.0, 1500.0, size=num_rows)
    light = np.round(base_light + ambient + spikes, 2)

    temperature = np.round(
        18.0 + 6.0 * daylight + rng.normal(0.0, 1.0, size=num_rows), 2)
    humidity = np.round(
        45.0 - 10.0 * daylight + rng.normal(0.0, 3.0, size=num_rows), 2)
    voltage = np.round(2.6 + rng.normal(0.0, 0.05, size=num_rows), 3)

    return Relation(INTEL_SCHEMA, {
        "device_id": device_id,
        "time": np.round(time, 3),
        "light": light,
        "temperature": temperature,
        "humidity": humidity,
        "voltage": voltage,
    }, name="intel_wireless")
