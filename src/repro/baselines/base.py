"""Common interface for the statistical baselines of paper §6.1.

Every baseline summarises the *missing* rows into a bounded amount of state
(comparable to the ``n`` predicate-constraints the PC framework receives) and
then produces an interval estimate for aggregate queries over those missing
rows.  The experiments score each estimator on two metrics:

* **failure rate** — how often the true value falls outside the interval;
* **over-estimation rate** — how loose the interval's upper endpoint is.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

from ..core.engine import ContingencyQuery
from ..relational.relation import Relation

__all__ = ["IntervalEstimate", "MissingDataEstimator"]


@dataclass(frozen=True)
class IntervalEstimate:
    """An interval estimate (possibly probabilistic) for a query result."""

    lower: float
    upper: float
    point: float | None = None
    method: str = ""

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            # Normalise rather than raise: some estimators produce degenerate
            # intervals on tiny samples and we still want to score them.
            object.__setattr__(self, "lower", min(self.lower, self.upper))
            object.__setattr__(self, "upper", max(self.lower, self.upper))

    def contains(self, value: float | None) -> bool:
        if value is None:
            return True
        return self.lower - 1e-9 <= value <= self.upper + 1e-9

    @property
    def width(self) -> float:
        return self.upper - self.lower

    def over_estimation_rate(self, truth: float) -> float:
        """``upper / truth`` — the paper's tightness metric."""
        if truth == 0:
            return math.inf if self.upper > 0 else 1.0
        if math.isinf(self.upper):
            return math.inf
        return self.upper / truth

    def shifted(self, offset: float) -> "IntervalEstimate":
        return IntervalEstimate(self.lower + offset, self.upper + offset,
                                None if self.point is None else self.point + offset,
                                self.method)


class MissingDataEstimator(abc.ABC):
    """Base class: summarise missing rows, then answer interval queries."""

    #: Human-readable identifier used by the experiment reports.
    name: str = "estimator"

    def __init__(self) -> None:
        self._fitted = False

    @abc.abstractmethod
    def fit(self, missing: Relation) -> "MissingDataEstimator":
        """Summarise the missing partition.  Returns ``self`` for chaining."""

    @abc.abstractmethod
    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        """Interval estimate of ``query`` over the (unseen) missing partition."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def _require_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(
                f"{type(self).__name__}.estimate() called before fit()"
            )

    def estimate_many(self, queries: list[ContingencyQuery]) -> list[IntervalEstimate]:
        return [self.estimate(query) for query in queries]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
