"""Simple extrapolation baseline (paper §2.1 and Figure 1).

The naive approach: scale the aggregate computed on the data you *do* have
by the fraction of data that is missing.  It returns a single number with no
uncertainty estimate — the paper's motivating example of why that is risky
when the missing rows are correlated with the aggregate.
"""

from __future__ import annotations

from ..core.engine import ContingencyQuery
from ..exceptions import WorkloadError
from ..relational.aggregates import AggregateFunction
from ..relational.relation import Relation
from .base import IntervalEstimate, MissingDataEstimator

__all__ = ["SimpleExtrapolationEstimator", "extrapolate"]


def extrapolate(observed_value: float, observed_rows: int, missing_rows: int,
                aggregate: AggregateFunction) -> float:
    """Scale an observed aggregate up to account for ``missing_rows``.

    COUNT and SUM scale linearly with the number of rows; AVG/MIN/MAX are
    assumed unchanged (the "missing data looks like present data"
    assumption).
    """
    if observed_rows < 0 or missing_rows < 0:
        raise WorkloadError("row counts must be non-negative")
    if aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM):
        if observed_rows == 0:
            return 0.0
        scale = (observed_rows + missing_rows) / observed_rows
        return observed_value * scale
    return observed_value


class SimpleExtrapolationEstimator(MissingDataEstimator):
    """Extrapolates the *missing partition's* contribution from observed data.

    Unlike the other baselines this estimator is fitted on the **observed**
    partition plus the known number of missing rows, because extrapolation
    by definition never looks at missing content.  The interval collapses to
    a single point (no uncertainty is reported) — exactly the failure mode
    Figure 1 illustrates.
    """

    name = "Extrapolation"

    def __init__(self, observed: Relation, missing_rows: int):
        super().__init__()
        if missing_rows < 0:
            raise WorkloadError("missing_rows must be non-negative")
        self._observed = observed
        self._missing_rows = missing_rows

    def fit(self, missing: Relation) -> "SimpleExtrapolationEstimator":
        # The missing relation is deliberately ignored (only its size could
        # be known in practice); ``fit`` exists to honour the interface.
        self._missing_rows = missing.num_rows
        self._fitted = True
        return self

    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        self._require_fitted()
        observed_query = query.to_aggregate_query()
        result = observed_query.execute(self._observed)
        observed_value = result.value if result.value is not None else 0.0
        observed_rows = result.matching_rows
        if self._observed.num_rows == 0:
            missing_in_region = self._missing_rows
        else:
            # Assume the query region covers the same share of the missing
            # rows as it does of the observed rows.
            share = observed_rows / self._observed.num_rows
            missing_in_region = self._missing_rows * share
        if query.aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM):
            if observed_rows == 0:
                point = 0.0
            else:
                point = observed_value * (missing_in_region / observed_rows)
        else:
            point = observed_value
        return IntervalEstimate(point, point, point, self.name)

    def relative_error(self, query: ContingencyQuery, missing: Relation) -> float:
        """|estimate - truth| / |truth| over the missing partition (Figure 1)."""
        truth = query.ground_truth(missing)
        truth_value = 0.0 if truth is None else float(truth)
        estimate = self.estimate(query).point or 0.0
        if truth_value == 0.0:
            return abs(estimate - truth_value)
        return abs(estimate - truth_value) / abs(truth_value)
