"""Elastic-sensitivity join bounds (Johnson, Near, Song; VLDB 2018).

The paper's Figure 12 compares its fractional-edge-cover join bound against
*elastic sensitivity*, a technique from the differential-privacy literature
that bounds how much a counting query over joins can change when one row
changes.  Used as a bound on the query result itself it degenerates towards
the Cartesian-product bound, which is exactly the behaviour Figure 12 shows.

We implement the counting-query elastic sensitivity recurrence for the two
query shapes the paper evaluates:

* self-join triangle counting over an edge table, and
* acyclic chain joins ``R1(x1,x2) ⋈ R2(x2,x3) ⋈ ... ⋈ Rk(xk,xk+1)``.

For a join of ``k`` relations the sensitivity of adding one row to relation
``i`` is the product of the *maximum join-key frequencies* of the other
relations; the query-result bound multiplies the most sensitive relation's
cardinality bound into that product.  When nothing is known about the
missing content, the max frequency of a relation is only bounded by its
cardinality — the Cartesian-product behaviour the paper highlights.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..exceptions import JoinBoundError
from ..relational.relation import Relation

__all__ = ["ElasticSensitivityBound", "elastic_sensitivity_join_bound",
           "triangle_count_elastic_bound", "chain_join_elastic_bound",
           "max_key_frequency"]


@dataclass(frozen=True)
class ElasticSensitivityBound:
    """An elastic-sensitivity-derived bound on a counting query."""

    bound: float
    sensitivity: float
    max_frequencies: dict[str, float]

    def __str__(self) -> str:
        return f"ElasticSensitivityBound({self.bound})"


def max_key_frequency(relation: Relation, attribute: str) -> float:
    """The maximum multiplicity of any single value of ``attribute``."""
    if relation.num_rows == 0:
        return 0.0
    values = relation.column(attribute)
    _, counts = np.unique(values, return_counts=True)
    return float(counts.max())


def elastic_sensitivity_join_bound(
    cardinalities: Mapping[str, float],
    max_frequencies: Mapping[str, float] | None = None,
) -> ElasticSensitivityBound:
    """Generic bound for a counting query over a k-way join.

    Parameters
    ----------
    cardinalities:
        Upper bound on each relation's row count.
    max_frequencies:
        Upper bound on each relation's maximum join-key frequency.  When a
        relation is missing from the mapping (the content is unknown) its
        max frequency defaults to its cardinality — the worst case.
    """
    if not cardinalities:
        raise JoinBoundError("elastic sensitivity needs at least one relation")
    frequencies = {
        name: float((max_frequencies or {}).get(name, cardinality))
        for name, cardinality in cardinalities.items()
    }
    # Sensitivity of inserting one row into relation i: the new row can join
    # with at most mf_j rows of every other relation j.
    sensitivities = {}
    for name in cardinalities:
        product = 1.0
        for other, frequency in frequencies.items():
            if other != name:
                product *= max(frequency, 1.0)
        sensitivities[name] = product
    # Bound the result by releasing the rows of the most favourable relation
    # one by one: |q| <= |R_i| * sensitivity_i, minimised over i.
    bound = math.inf
    for name, cardinality in cardinalities.items():
        bound = min(bound, float(cardinality) * sensitivities[name])
    worst_sensitivity = max(sensitivities.values())
    return ElasticSensitivityBound(bound=bound, sensitivity=worst_sensitivity,
                                   max_frequencies=frequencies)


def triangle_count_elastic_bound(edge_count: float,
                                 max_out_degree: float | None = None,
                                 max_in_degree: float | None = None
                                 ) -> ElasticSensitivityBound:
    """Elastic-sensitivity bound for the triangle query ``R(a,b) S(b,c) T(c,a)``.

    The three relations are copies of the same edge table of ``edge_count``
    rows.  When the degrees are unknown they default to the edge count.
    """
    out_degree = float(max_out_degree if max_out_degree is not None else edge_count)
    in_degree = float(max_in_degree if max_in_degree is not None else edge_count)
    # A new edge (a, b) can close at most out_degree * in_degree triangles in
    # the worst case; the whole count is bounded by edge_count copies of it.
    sensitivity = max(out_degree * in_degree, 1.0)
    bound = float(edge_count) * sensitivity
    return ElasticSensitivityBound(bound=bound, sensitivity=sensitivity,
                                   max_frequencies={"out": out_degree,
                                                    "in": in_degree})


def chain_join_elastic_bound(cardinalities: Sequence[float],
                             max_frequencies: Sequence[float] | None = None
                             ) -> ElasticSensitivityBound:
    """Elastic-sensitivity bound for ``R1(x1,x2) ⋈ ... ⋈ Rk(xk, xk+1)``.

    Without frequency knowledge every intermediate join multiplies by the
    neighbouring relation's cardinality, so the bound tracks the Cartesian
    product — several orders of magnitude looser than the edge-cover bound
    (paper Figure 12, bottom).
    """
    if not cardinalities:
        raise JoinBoundError("chain join needs at least one relation")
    names = [f"R{i + 1}" for i in range(len(cardinalities))]
    frequency_map = None
    if max_frequencies is not None:
        if len(max_frequencies) != len(cardinalities):
            raise JoinBoundError(
                "max_frequencies must have one entry per relation")
        frequency_map = dict(zip(names, (float(f) for f in max_frequencies)))
    return elastic_sensitivity_join_bound(dict(zip(names, map(float, cardinalities))),
                                          frequency_map)
