"""Generative-model baseline (paper §6.1.2): a Gaussian Mixture Model.

The paper fits a GMM to the missing rows and answers a query by generating
synthetic missing data from the model, evaluating the query on it, and
repeating the process to obtain a range of likely values.  scikit-learn is
not available offline, so this module implements a diagonal-covariance GMM
trained with expectation-maximisation directly on numpy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.engine import ContingencyQuery
from ..exceptions import WorkloadError
from ..relational.aggregates import AggregateFunction, compute_aggregate
from ..relational.relation import Relation
from ..relational.schema import ColumnType, Schema
from .base import IntervalEstimate, MissingDataEstimator

__all__ = ["DiagonalGaussianMixture", "GenerativeModelEstimator"]


@dataclass
class DiagonalGaussianMixture:
    """A diagonal-covariance Gaussian mixture fit with EM.

    Attributes
    ----------
    weights:
        Mixture weights, shape ``(k,)``.
    means:
        Component means, shape ``(k, d)``.
    variances:
        Per-dimension variances, shape ``(k, d)``.
    """

    weights: np.ndarray
    means: np.ndarray
    variances: np.ndarray

    @property
    def num_components(self) -> int:
        return self.weights.shape[0]

    @property
    def num_dimensions(self) -> int:
        return self.means.shape[1]

    # ------------------------------------------------------------------ #
    @classmethod
    def fit(cls, data: np.ndarray, num_components: int = 4,
            max_iterations: int = 100, tolerance: float = 1e-4,
            rng: np.random.Generator | None = None) -> "DiagonalGaussianMixture":
        """Fit by EM; initialisation picks random rows as component means."""
        if data.ndim != 2 or data.shape[0] == 0:
            raise WorkloadError("GMM fitting needs a non-empty 2-D data matrix")
        generator = rng if rng is not None else np.random.default_rng()
        samples, dims = data.shape
        k = min(num_components, samples)

        indices = generator.choice(samples, size=k, replace=False)
        means = data[indices].astype(np.float64).copy()
        global_variance = data.var(axis=0) + 1e-6
        variances = np.tile(global_variance, (k, 1))
        weights = np.full(k, 1.0 / k)

        previous_log_likelihood = -np.inf
        for _ in range(max_iterations):
            responsibilities, log_likelihood = cls._e_step(data, weights, means,
                                                           variances)
            weights, means, variances = cls._m_step(data, responsibilities)
            if abs(log_likelihood - previous_log_likelihood) < tolerance * samples:
                break
            previous_log_likelihood = log_likelihood
        return cls(weights, means, variances)

    @staticmethod
    def _e_step(data: np.ndarray, weights: np.ndarray, means: np.ndarray,
                variances: np.ndarray) -> tuple[np.ndarray, float]:
        samples = data.shape[0]
        k = weights.shape[0]
        log_probabilities = np.zeros((samples, k))
        for component in range(k):
            variance = variances[component]
            diff = data - means[component]
            log_probabilities[:, component] = (
                -0.5 * np.sum(diff * diff / variance, axis=1)
                - 0.5 * np.sum(np.log(2.0 * np.pi * variance))
                + math.log(max(weights[component], 1e-300))
            )
        max_log = log_probabilities.max(axis=1, keepdims=True)
        stabilised = np.exp(log_probabilities - max_log)
        totals = stabilised.sum(axis=1, keepdims=True)
        responsibilities = stabilised / np.maximum(totals, 1e-300)
        log_likelihood = float(np.sum(np.log(np.maximum(totals, 1e-300)) + max_log))
        return responsibilities, log_likelihood

    @staticmethod
    def _m_step(data: np.ndarray, responsibilities: np.ndarray
                ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        samples = data.shape[0]
        component_mass = responsibilities.sum(axis=0) + 1e-12
        weights = component_mass / samples
        means = (responsibilities.T @ data) / component_mass[:, None]
        k, dims = means.shape
        variances = np.zeros((k, dims))
        for component in range(k):
            diff = data - means[component]
            variances[component] = (
                (responsibilities[:, component][:, None] * diff * diff).sum(axis=0)
                / component_mass[component]
            ) + 1e-6
        return weights, means, variances

    # ------------------------------------------------------------------ #
    def sample(self, count: int, rng: np.random.Generator | None = None) -> np.ndarray:
        """Draw ``count`` synthetic rows from the mixture."""
        generator = rng if rng is not None else np.random.default_rng()
        components = generator.choice(self.num_components, size=count, p=self.weights)
        noise = generator.standard_normal((count, self.num_dimensions))
        return self.means[components] + noise * np.sqrt(self.variances[components])

    def log_likelihood(self, data: np.ndarray) -> float:
        """Average per-row log likelihood of ``data`` under the mixture."""
        _, total = self._e_step(data, self.weights, self.means, self.variances)
        return total / max(data.shape[0], 1)


class GenerativeModelEstimator(MissingDataEstimator):
    """Answer queries by simulating missing data from a fitted GMM.

    The estimate interval is the min/max of the query result across
    ``num_trials`` independently generated synthetic missing partitions.
    """

    name = "Gen"

    def __init__(self, num_components: int = 4, num_trials: int = 10,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if num_trials <= 0:
            raise WorkloadError("num_trials must be positive")
        self.num_components = num_components
        self.num_trials = num_trials
        self._rng = rng if rng is not None else np.random.default_rng()
        self._model: DiagonalGaussianMixture | None = None
        self._schema: Schema | None = None
        self._numeric_names: list[str] = []
        self._missing_count = 0

    def fit(self, missing: Relation) -> "GenerativeModelEstimator":
        self._numeric_names = list(missing.schema.numeric_names)
        self._schema = Schema.from_pairs(
            [(name, ColumnType.FLOAT) for name in self._numeric_names])
        self._missing_count = missing.num_rows
        if missing.num_rows == 0 or not self._numeric_names:
            self._model = None
        else:
            matrix = np.column_stack([
                missing.column(name).astype(np.float64)
                for name in self._numeric_names
            ])
            self._model = DiagonalGaussianMixture.fit(
                matrix, self.num_components, rng=self._rng)
        self._fitted = True
        return self

    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        self._require_fitted()
        if self._model is None or self._missing_count == 0:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        results: list[float] = []
        for _ in range(self.num_trials):
            synthetic = self._generate()
            value = query.ground_truth(synthetic)
            results.append(0.0 if value is None else float(value))
        low, high = min(results), max(results)
        point = float(np.mean(results))
        return IntervalEstimate(low, high, point, self.name)

    def _generate(self) -> Relation:
        assert self._model is not None and self._schema is not None
        matrix = self._model.sample(self._missing_count, rng=self._rng)
        columns = {name: matrix[:, index]
                   for index, name in enumerate(self._numeric_names)}
        return Relation(self._schema, columns, name="gmm-synthetic")
