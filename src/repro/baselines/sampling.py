"""Sampling-based baselines (paper §6.1.1): uniform and stratified samples
with parametric (CLT) or non-parametric confidence intervals.

The experiments assume the user can somehow provide unbiased example rows
from the missing partition (a stronger requirement than writing predicate
constraints, as the paper notes).  The estimator keeps:

* a uniform (or stratified) random sample of ``sample_size`` missing rows,
* the true number of missing rows (all baselines know how much data is
  missing — only its content is unknown).

Confidence intervals follow the two families the paper evaluates:

``parametric``
    Central-Limit-Theorem intervals using the sample standard deviation —
    the standard AQP construction, fragile when the sample misses the tails.
``nonparametric``
    Hoeffding-style intervals whose value range is *estimated from the
    sample min/max* (the population range is unknown) — more conservative,
    but still fallible for exactly the reason the paper highlights: a small
    sample underestimates the spread.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np
from scipy import stats

from ..core.engine import ContingencyQuery
from ..exceptions import WorkloadError
from ..relational.aggregates import AggregateFunction
from ..relational.relation import Relation
from .base import IntervalEstimate, MissingDataEstimator

__all__ = ["UniformSamplingEstimator", "StratifiedSamplingEstimator"]


def _z_value(confidence: float) -> float:
    """Two-sided normal critical value for the given confidence level."""
    if not 0.0 < confidence < 1.0:
        raise WorkloadError(f"confidence must be in (0, 1), got {confidence}")
    return float(stats.norm.ppf(0.5 + confidence / 2.0))


class UniformSamplingEstimator(MissingDataEstimator):
    """Uniform random sample + CLT or Hoeffding confidence intervals.

    Parameters
    ----------
    sample_size:
        Number of missing rows retained (``n`` or ``10n`` in the paper).
    confidence:
        Nominal confidence level of the interval (e.g. ``0.99``).
    method:
        ``"parametric"`` (CLT) or ``"nonparametric"`` (Hoeffding with a
        sample-estimated value range).
    """

    def __init__(self, sample_size: int, confidence: float = 0.99,
                 method: str = "nonparametric",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if sample_size <= 0:
            raise WorkloadError("sample_size must be positive")
        if method not in ("parametric", "nonparametric"):
            raise WorkloadError(
                f"method must be 'parametric' or 'nonparametric', got {method!r}")
        self.sample_size = sample_size
        self.confidence = confidence
        self.method = method
        self._rng = rng if rng is not None else np.random.default_rng()
        self._sample: Relation | None = None
        self._population_size = 0
        tag = "p" if method == "parametric" else "n"
        self.name = f"US-{tag}"

    # ------------------------------------------------------------------ #
    def fit(self, missing: Relation) -> "UniformSamplingEstimator":
        self._population_size = missing.num_rows
        size = min(self.sample_size, missing.num_rows)
        self._sample = missing.sample(size, rng=self._rng, replace=False)
        self._fitted = True
        return self

    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        self._require_fitted()
        assert self._sample is not None
        per_row = self._per_row_values(self._sample, query)
        if query.aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM):
            return self._estimate_total(per_row)
        if query.aggregate is AggregateFunction.AVG:
            return self._estimate_average(per_row)
        return self._estimate_extremum(query)

    # ------------------------------------------------------------------ #
    # Per-aggregate estimation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _per_row_values(sample: Relation, query: ContingencyQuery) -> np.ndarray:
        """The per-sampled-row contribution to the query total."""
        if sample.num_rows == 0:
            return np.zeros(0)
        if query.region is not None:
            mask = query.region.to_expression().evaluate(sample)
        else:
            mask = np.ones(sample.num_rows, dtype=bool)
        if query.aggregate is AggregateFunction.COUNT:
            return mask.astype(np.float64)
        assert query.attribute is not None
        values = sample.column(query.attribute).astype(np.float64)
        if query.aggregate in (AggregateFunction.SUM,):
            return values * mask
        # AVG / MIN / MAX work on the matching rows' raw values.
        return values[mask]

    def _estimate_total(self, per_row: np.ndarray) -> IntervalEstimate:
        """Scale the sample mean contribution up to the full missing partition."""
        population = self._population_size
        n = per_row.size
        if n == 0 or population == 0:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        mean = float(per_row.mean())
        point = mean * population
        margin = self._mean_margin(per_row) * population
        return IntervalEstimate(point - margin, point + margin, point, self.name)

    def _estimate_average(self, matching_values: np.ndarray) -> IntervalEstimate:
        if matching_values.size == 0:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        mean = float(matching_values.mean())
        margin = self._mean_margin(matching_values)
        return IntervalEstimate(mean - margin, mean + margin, mean, self.name)

    def _estimate_extremum(self, query: ContingencyQuery) -> IntervalEstimate:
        """MIN/MAX estimates: the sample extremum is all a sample can offer."""
        assert self._sample is not None
        per_row = self._per_row_values(self._sample, query)
        if per_row.size == 0:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        observed_min = float(per_row.min())
        observed_max = float(per_row.max())
        spread = observed_max - observed_min
        if query.aggregate is AggregateFunction.MAX:
            return IntervalEstimate(observed_max, observed_max + spread,
                                    observed_max, self.name)
        return IntervalEstimate(observed_min - spread, observed_min,
                                observed_min, self.name)

    # ------------------------------------------------------------------ #
    # Confidence-interval machinery
    # ------------------------------------------------------------------ #
    def _mean_margin(self, values: np.ndarray) -> float:
        """Half-width of the confidence interval for the mean of ``values``."""
        n = values.size
        if n <= 1:
            return 0.0
        if self.method == "parametric":
            std_error = float(values.std(ddof=1)) / math.sqrt(n)
            return _z_value(self.confidence) * std_error
        # Non-parametric: Hoeffding's inequality with the value range
        # estimated from the sample itself (the population range is unknown).
        value_range = float(values.max() - values.min())
        if value_range == 0.0:
            return 0.0
        delta = 1.0 - self.confidence
        return value_range * math.sqrt(math.log(2.0 / delta) / (2.0 * n))


class StratifiedSamplingEstimator(MissingDataEstimator):
    """Stratified sampling over a partitioning of the missing rows.

    Strata are defined by equi-cardinality buckets of the given attributes
    (mirroring the partitions the PC schemes use, §6.1.1).  Rows are sampled
    proportionally per stratum; totals are estimated per stratum and summed,
    with per-stratum margins combined in quadrature for the parametric
    method and additively for the non-parametric one (conservative).
    """

    def __init__(self, sample_size: int, strata_attributes: Sequence[str],
                 num_strata: int = 16, confidence: float = 0.99,
                 method: str = "nonparametric",
                 rng: np.random.Generator | None = None):
        super().__init__()
        if sample_size <= 0:
            raise WorkloadError("sample_size must be positive")
        if not strata_attributes:
            raise WorkloadError("stratified sampling needs at least one attribute")
        self.sample_size = sample_size
        self.strata_attributes = tuple(strata_attributes)
        self.num_strata = max(1, num_strata)
        self.confidence = confidence
        self.method = method
        self._rng = rng if rng is not None else np.random.default_rng()
        self._strata: list[tuple[int, Relation]] = []
        tag = "p" if method == "parametric" else "n"
        self.name = f"ST-{tag}"

    def fit(self, missing: Relation) -> "StratifiedSamplingEstimator":
        self._strata = []
        if missing.num_rows == 0:
            self._fitted = True
            return self
        strata = self._partition(missing)
        total = missing.num_rows
        for stratum in strata:
            if stratum.num_rows == 0:
                continue
            share = stratum.num_rows / total
            allocation = max(1, int(round(self.sample_size * share)))
            allocation = min(allocation, stratum.num_rows)
            sample = stratum.sample(allocation, rng=self._rng, replace=False)
            self._strata.append((stratum.num_rows, sample))
        self._fitted = True
        return self

    def _partition(self, missing: Relation) -> list[Relation]:
        """Equi-cardinality buckets along the first stratification attribute,
        refined by the remaining attributes round-robin."""
        buckets = [missing]
        per_attribute = max(1, int(round(self.num_strata ** (1 / len(self.strata_attributes)))))
        for attribute in self.strata_attributes:
            refined: list[Relation] = []
            for bucket in buckets:
                if bucket.num_rows == 0:
                    continue
                values = bucket.column(attribute).astype(np.float64)
                edges = np.quantile(values, np.linspace(0, 1, per_attribute + 1))
                edges = np.unique(edges)
                if edges.size < 2:
                    refined.append(bucket)
                    continue
                positions = np.digitize(values, edges[1:-1], right=False)
                for index in range(edges.size - 1):
                    mask = positions == index
                    if mask.any():
                        refined.append(bucket.filter(mask))
            buckets = refined
        return buckets

    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        self._require_fitted()
        if not self._strata:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        if query.aggregate in (AggregateFunction.COUNT, AggregateFunction.SUM):
            return self._estimate_total(query)
        # For AVG/MIN/MAX fall back to pooling the per-stratum samples.
        pooled = self._strata[0][1]
        for _, sample in self._strata[1:]:
            pooled = pooled.concat(sample)
        helper = UniformSamplingEstimator(max(pooled.num_rows, 1), self.confidence,
                                          self.method, self._rng)
        helper._sample = pooled
        helper._population_size = sum(size for size, _ in self._strata)
        helper._fitted = True
        estimate = helper.estimate(query)
        return IntervalEstimate(estimate.lower, estimate.upper, estimate.point,
                                self.name)

    def _estimate_total(self, query: ContingencyQuery) -> IntervalEstimate:
        point = 0.0
        margins: list[float] = []
        for stratum_size, sample in self._strata:
            per_row = UniformSamplingEstimator._per_row_values(sample, query)
            if per_row.size == 0:
                continue
            mean = float(per_row.mean())
            point += mean * stratum_size
            helper = UniformSamplingEstimator(max(per_row.size, 1), self.confidence,
                                              self.method, self._rng)
            margins.append(helper._mean_margin(per_row) * stratum_size)
        if self.method == "parametric":
            margin = math.sqrt(sum(m * m for m in margins))
        else:
            margin = sum(margins)
        return IntervalEstimate(point - margin, point + margin, point, self.name)
