"""Statistical baselines the paper compares the PC framework against (§6.1).

Every estimator follows the :class:`~repro.baselines.base.MissingDataEstimator`
interface: it is fitted on the missing partition (summarising it into a
bounded amount of state) and then produces interval estimates for aggregate
queries over that partition.
"""

from .base import IntervalEstimate, MissingDataEstimator
from .elastic_sensitivity import (
    ElasticSensitivityBound,
    chain_join_elastic_bound,
    elastic_sensitivity_join_bound,
    max_key_frequency,
    triangle_count_elastic_bound,
)
from .extrapolation import SimpleExtrapolationEstimator, extrapolate
from .gmm import DiagonalGaussianMixture, GenerativeModelEstimator
from .histogram import HistogramEstimator
from .sampling import StratifiedSamplingEstimator, UniformSamplingEstimator

__all__ = [
    "IntervalEstimate",
    "MissingDataEstimator",
    "ElasticSensitivityBound",
    "chain_join_elastic_bound",
    "elastic_sensitivity_join_bound",
    "max_key_frequency",
    "triangle_count_elastic_bound",
    "SimpleExtrapolationEstimator",
    "extrapolate",
    "DiagonalGaussianMixture",
    "GenerativeModelEstimator",
    "HistogramEstimator",
    "StratifiedSamplingEstimator",
    "UniformSamplingEstimator",
]
