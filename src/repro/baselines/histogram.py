"""Equi-width histogram baseline (paper §6.1.3).

The histogram summarises the missing rows into ``num_buckets`` equi-width
buckets per summarised attribute.  Each bucket records the rows it holds and
the min/max of the aggregated attribute inside it, so the histogram can
produce *hard* bounds: a query's result range is obtained by treating every
bucket that intersects the query region as possibly fully in or fully out of
the region (standard container/contents reasoning, which is why the paper
groups histograms with PCs as the "guaranteed not to fail" baselines).

For multi-attribute predicates the histogram is a grid over the predicate
attributes — the paper's "standard independence assumptions" only matter for
point estimates, which we also report via :attr:`IntervalEstimate.point`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.engine import ContingencyQuery
from ..exceptions import WorkloadError
from ..relational.aggregates import AggregateFunction
from ..relational.relation import Relation
from .base import IntervalEstimate, MissingDataEstimator

__all__ = ["HistogramEstimator"]


class _Bucket:
    """One grid bucket: its box, row count and per-attribute value ranges."""

    __slots__ = ("lows", "highs", "count", "value_min", "value_max", "value_sum")

    def __init__(self, lows: dict[str, float], highs: dict[str, float], count: int,
                 value_min: dict[str, float], value_max: dict[str, float],
                 value_sum: dict[str, float]):
        self.lows = lows
        self.highs = highs
        self.count = count
        self.value_min = value_min
        self.value_max = value_max
        self.value_sum = value_sum

    def overlap(self, region_low: dict[str, float], region_high: dict[str, float]
                ) -> str:
        """'none', 'partial' or 'full' overlap with the query box."""
        fully_inside = True
        for attribute in self.lows:
            query_low = region_low.get(attribute, float("-inf"))
            query_high = region_high.get(attribute, float("inf"))
            if self.highs[attribute] < query_low or self.lows[attribute] > query_high:
                return "none"
            if self.lows[attribute] < query_low or self.highs[attribute] > query_high:
                fully_inside = False
        return "full" if fully_inside else "partial"


class HistogramEstimator(MissingDataEstimator):
    """Equi-width grid histogram with hard container bounds."""

    name = "Histogram"

    def __init__(self, attributes: Sequence[str], num_buckets: int = 32,
                 value_attributes: Sequence[str] | None = None):
        super().__init__()
        if not attributes:
            raise WorkloadError("histogram needs at least one bucketed attribute")
        if num_buckets <= 0:
            raise WorkloadError("num_buckets must be positive")
        self.attributes = tuple(attributes)
        self.num_buckets = num_buckets
        self.value_attributes = tuple(value_attributes) if value_attributes else None
        self._buckets: list[_Bucket] = []

    # ------------------------------------------------------------------ #
    def fit(self, missing: Relation) -> "HistogramEstimator":
        self._buckets = []
        if missing.num_rows == 0:
            self._fitted = True
            return self
        per_attribute = max(1, int(round(self.num_buckets ** (1 / len(self.attributes)))))
        edges: dict[str, np.ndarray] = {}
        for attribute in self.attributes:
            values = missing.column(attribute).astype(np.float64)
            low, high = float(values.min()), float(values.max())
            if low == high:
                high = low + 1.0
            edges[attribute] = np.linspace(low, high, per_attribute + 1)
        value_names = (list(self.value_attributes) if self.value_attributes
                       else list(missing.schema.numeric_names))

        positions = {}
        for attribute in self.attributes:
            values = missing.column(attribute).astype(np.float64)
            positions[attribute] = np.clip(
                np.digitize(values, edges[attribute][1:-1], right=False),
                0, per_attribute - 1)
        keys = np.stack([positions[attribute] for attribute in self.attributes], axis=1)
        grouping: dict[tuple[int, ...], list[int]] = {}
        for row_index in range(missing.num_rows):
            grouping.setdefault(tuple(int(v) for v in keys[row_index]), []).append(row_index)

        for key, indices in grouping.items():
            subset = missing.take(indices)
            lows = {attribute: float(edges[attribute][position])
                    for attribute, position in zip(self.attributes, key)}
            highs = {attribute: float(edges[attribute][position + 1])
                     for attribute, position in zip(self.attributes, key)}
            value_min = {name: subset.column_min(name) for name in value_names}
            value_max = {name: subset.column_max(name) for name in value_names}
            value_sum = {name: subset.column_sum(name) for name in value_names}
            self._buckets.append(_Bucket(lows, highs, subset.num_rows,
                                         value_min, value_max, value_sum))
        self._fitted = True
        return self

    # ------------------------------------------------------------------ #
    def estimate(self, query: ContingencyQuery) -> IntervalEstimate:
        self._require_fitted()
        region_low, region_high = self._query_box(query)
        if query.aggregate is AggregateFunction.COUNT:
            return self._estimate_count(region_low, region_high)
        if query.aggregate is AggregateFunction.SUM:
            return self._estimate_sum(query.attribute, region_low, region_high)
        if query.aggregate is AggregateFunction.AVG:
            return self._estimate_avg(query.attribute, region_low, region_high)
        return self._estimate_extremum(query, region_low, region_high)

    def _query_box(self, query: ContingencyQuery
                   ) -> tuple[dict[str, float], dict[str, float]]:
        lows: dict[str, float] = {}
        highs: dict[str, float] = {}
        if query.region is not None:
            for attribute, attribute_range in query.region.ranges.items():
                lows[attribute] = attribute_range.low
                highs[attribute] = attribute_range.high
        return lows, highs

    def _estimate_count(self, lows: dict[str, float], highs: dict[str, float]
                        ) -> IntervalEstimate:
        lower = 0.0
        upper = 0.0
        point = 0.0
        for bucket in self._buckets:
            overlap = bucket.overlap(lows, highs)
            if overlap == "none":
                continue
            upper += bucket.count
            point += bucket.count * (1.0 if overlap == "full" else 0.5)
            if overlap == "full":
                lower += bucket.count
        return IntervalEstimate(lower, upper, point, self.name)

    def _estimate_sum(self, attribute: str, lows: dict[str, float],
                      highs: dict[str, float]) -> IntervalEstimate:
        lower = 0.0
        upper = 0.0
        point = 0.0
        for bucket in self._buckets:
            overlap = bucket.overlap(lows, highs)
            if overlap == "none":
                continue
            bucket_max = bucket.value_max.get(attribute, 0.0)
            bucket_min = bucket.value_min.get(attribute, 0.0)
            bucket_sum = bucket.value_sum.get(attribute, 0.0)
            if overlap == "full":
                lower += bucket_sum if bucket_min >= 0 else bucket.count * bucket_min
                upper += bucket_sum if bucket_max <= 0 else bucket.count * bucket_max
                point += bucket_sum
            else:
                lower += min(0.0, bucket.count * bucket_min)
                upper += max(0.0, bucket.count * bucket_max)
                point += bucket_sum * 0.5
        return IntervalEstimate(lower, upper, point, self.name)

    def _estimate_avg(self, attribute: str, lows: dict[str, float],
                      highs: dict[str, float]) -> IntervalEstimate:
        candidates_low: list[float] = []
        candidates_high: list[float] = []
        weighted_sum = 0.0
        weight = 0.0
        for bucket in self._buckets:
            overlap = bucket.overlap(lows, highs)
            if overlap == "none":
                continue
            candidates_low.append(bucket.value_min.get(attribute, 0.0))
            candidates_high.append(bucket.value_max.get(attribute, 0.0))
            weighted_sum += bucket.value_sum.get(attribute, 0.0)
            weight += bucket.count
        if not candidates_low:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        point = weighted_sum / weight if weight else None
        return IntervalEstimate(min(candidates_low), max(candidates_high),
                                point, self.name)

    def _estimate_extremum(self, query: ContingencyQuery, lows: dict[str, float],
                           highs: dict[str, float]) -> IntervalEstimate:
        attribute = query.attribute or ""
        minima: list[float] = []
        maxima: list[float] = []
        for bucket in self._buckets:
            if bucket.overlap(lows, highs) == "none":
                continue
            minima.append(bucket.value_min.get(attribute, 0.0))
            maxima.append(bucket.value_max.get(attribute, 0.0))
        if not minima:
            return IntervalEstimate(0.0, 0.0, 0.0, self.name)
        if query.aggregate is AggregateFunction.MAX:
            return IntervalEstimate(min(maxima), max(maxima), max(maxima), self.name)
        return IntervalEstimate(min(minima), max(minima), min(minima), self.name)

    def num_buckets_used(self) -> int:
        """The number of non-empty buckets actually stored."""
        return len(self._buckets)
