"""An in-memory column-store relation.

:class:`Relation` stores each column as a numpy array and provides the small
set of operations the rest of the library needs: filtering by boolean masks
or expressions, projection, concatenation, sampling, sorting, grouping, and
per-column summary statistics.  It deliberately has no query optimiser — the
experiments operate on datasets of at most a few hundred thousand rows.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Sequence

import numpy as np

from ..exceptions import SchemaError, TypeMismatchError
from .schema import Column, ColumnType, Schema

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .expressions import Expression

__all__ = ["Relation"]


class Relation:
    """A named, schema-ed, immutable column-store table.

    Parameters
    ----------
    schema:
        The relation schema.
    columns:
        Mapping from column name to a numpy array (or any sequence).  All
        columns must have identical length and cover exactly the schema.
    name:
        Optional relation name, used by joins and error messages.
    """

    def __init__(
        self,
        schema: Schema,
        columns: Mapping[str, Sequence] | Mapping[str, np.ndarray],
        name: str = "relation",
    ):
        self._schema = schema
        self._name = name
        data: dict[str, np.ndarray] = {}
        length: int | None = None
        missing = [c.name for c in schema if c.name not in columns]
        if missing:
            raise SchemaError(f"missing columns for schema: {missing}")
        extra = [key for key in columns if key not in schema]
        if extra:
            raise SchemaError(f"columns not declared in schema: {extra}")
        for column in schema:
            values = columns[column.name]
            array = column.ctype.coerce(values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise SchemaError(
                    f"column {column.name!r} has length {len(array)}, "
                    f"expected {length}"
                )
            data[column.name] = array
        self._columns = data
        self._length = int(length or 0)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Sequence],
        name: str = "relation",
    ) -> "Relation":
        """Build a relation from an iterable of row tuples (schema order)."""
        materialised = [tuple(row) for row in rows]
        columns: dict[str, list] = {column.name: [] for column in schema}
        for row in materialised:
            if len(row) != len(schema):
                raise SchemaError(
                    f"row has {len(row)} values, schema has {len(schema)} columns"
                )
            for column, value in zip(schema, row):
                columns[column.name].append(value)
        return cls(schema, columns, name=name)

    @classmethod
    def from_dicts(
        cls,
        schema: Schema,
        records: Iterable[Mapping[str, object]],
        name: str = "relation",
    ) -> "Relation":
        """Build a relation from an iterable of ``{column: value}`` mappings."""
        rows = [[record[column.name] for column in schema] for record in records]
        return cls.from_rows(schema, rows, name=name)

    @classmethod
    def empty(cls, schema: Schema, name: str = "relation") -> "Relation":
        """An empty relation with the given schema."""
        return cls(schema, {column.name: [] for column in schema}, name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def name(self) -> str:
        return self._name

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __repr__(self) -> str:
        return f"Relation({self._name!r}, rows={self._length}, schema={self._schema!r})"

    def column(self, name: str) -> np.ndarray:
        """Return the column named ``name`` as a numpy array (no copy)."""
        self._schema.column(name)
        return self._columns[name]

    def columns(self) -> dict[str, np.ndarray]:
        """Return a shallow copy of the column mapping."""
        return dict(self._columns)

    def row(self, index: int) -> dict[str, object]:
        """Return row ``index`` as a ``{column: value}`` dict."""
        if not 0 <= index < self._length:
            raise IndexError(f"row index {index} out of range [0, {self._length})")
        return {name: self._columns[name][index] for name in self._schema.names}

    def iter_rows(self) -> Iterator[dict[str, object]]:
        """Iterate over rows as dicts (slow path, used by tests/oracles)."""
        for index in range(self._length):
            yield self.row(index)

    def to_rows(self) -> list[tuple]:
        """Materialise the relation as a list of row tuples (schema order)."""
        names = self._schema.names
        arrays = [self._columns[name] for name in names]
        return [tuple(array[i] for array in arrays) for i in range(self._length)]

    def rename(self, name: str) -> "Relation":
        """Return the same relation under a new name (columns are shared)."""
        clone = Relation.__new__(Relation)
        clone._schema = self._schema
        clone._columns = self._columns
        clone._length = self._length
        clone._name = name
        return clone

    # ------------------------------------------------------------------ #
    # Core relational operations
    # ------------------------------------------------------------------ #
    def filter(self, condition: "Expression | np.ndarray") -> "Relation":
        """Return the sub-relation of rows matching ``condition``.

        ``condition`` may be a boolean numpy mask or any object exposing an
        ``evaluate(relation) -> mask`` method (see
        :mod:`repro.relational.expressions`).
        """
        mask = self._as_mask(condition)
        columns = {name: array[mask] for name, array in self._columns.items()}
        return Relation(self._schema, columns, name=self._name)

    def take(self, indices: Sequence[int] | np.ndarray) -> "Relation":
        """Return the rows at ``indices`` (with repetition allowed)."""
        index_array = np.asarray(indices, dtype=np.int64)
        columns = {name: array[index_array] for name, array in self._columns.items()}
        return Relation(self._schema, columns, name=self._name)

    def head(self, count: int) -> "Relation":
        """Return the first ``count`` rows."""
        return self.take(np.arange(min(count, self._length)))

    def project(self, names: Sequence[str]) -> "Relation":
        """Return a relation restricted to the named columns."""
        schema = self._schema.project(names)
        columns = {name: self._columns[name] for name in names}
        return Relation(schema, columns, name=self._name)

    def with_column(
        self, name: str, ctype: ColumnType, values: Sequence | np.ndarray
    ) -> "Relation":
        """Return a new relation with an extra (or replaced) column."""
        columns = dict(self._columns)
        columns[name] = values
        if name in self._schema:
            schema_columns = [
                Column(name, ctype) if column.name == name else column
                for column in self._schema
            ]
        else:
            schema_columns = list(self._schema.columns) + [Column(name, ctype)]
        return Relation(Schema(schema_columns), columns, name=self._name)

    def concat(self, other: "Relation") -> "Relation":
        """Union-all of two relations with identical schemas."""
        if self._schema != other._schema:
            raise SchemaError(
                "cannot concatenate relations with different schemas: "
                f"{self._schema!r} vs {other._schema!r}"
            )
        columns = {
            name: np.concatenate([self._columns[name], other._columns[name]])
            for name in self._schema.names
        }
        return Relation(self._schema, columns, name=self._name)

    def append(self, rows: "Relation | Iterable[Sequence] | Iterable[Mapping[str, object]]") -> "Relation":
        """Union-all that records its lineage for incremental reuse.

        Unlike :meth:`concat`, the result remembers the base relation and the
        ordered deltas appended to it (see :attr:`append_lineage`).  The
        service layer uses that lineage for two things: fingerprinting the
        result incrementally (hash only the delta bytes instead of the whole
        table) and deciding which cached reports an append can provably keep.
        Any other mutation (``filter``, ``with_column``, ...) produces a
        relation without lineage, which callers must treat as a full rebuild.

        ``rows`` may be another relation with an identical schema, an
        iterable of row tuples in schema order, or an iterable of
        ``{column: value}`` mappings.
        """
        if isinstance(rows, Relation):
            delta = rows
            if delta._schema != self._schema:
                raise SchemaError(
                    "cannot append a relation with a different schema: "
                    f"{self._schema!r} vs {delta._schema!r}"
                )
        else:
            materialised = list(rows)
            if materialised and isinstance(materialised[0], Mapping):
                delta = Relation.from_dicts(self._schema, materialised, name=self._name)
            else:
                delta = Relation.from_rows(self._schema, materialised, name=self._name)
        result = self.concat(delta)
        base, deltas = self.append_lineage or (self, ())
        result._append_base = base
        result._append_deltas = (*deltas, delta)
        return result

    @property
    def append_lineage(self) -> "tuple[Relation, tuple[Relation, ...]] | None":
        """``(base, deltas)`` when this relation was built via :meth:`append`.

        ``base`` is the original (pre-append) relation and ``deltas`` the
        ordered appended batches; concatenating ``base`` with every delta
        reproduces this relation exactly.  ``None`` for relations built any
        other way.
        """
        base = getattr(self, "_append_base", None)
        if base is None:
            return None
        return base, self._append_deltas

    def __getstate__(self) -> dict:
        """Drop unpicklable fingerprint hasher states before pickling.

        The service layer memoizes running ``hashlib`` hashers on relation
        objects (see :mod:`repro.service.fingerprint`); hasher objects do
        not pickle, and a worker process never needs them — the memoized
        digest string travels, and hashers rebuild lazily if asked for.
        """
        state = self.__dict__.copy()
        state.pop("_fingerprint_hashers", None)
        return state

    def sample(
        self, count: int, rng: np.random.Generator | None = None, replace: bool = False
    ) -> "Relation":
        """Uniform random sample of ``count`` rows."""
        generator = rng if rng is not None else np.random.default_rng()
        if not replace:
            count = min(count, self._length)
        if self._length == 0:
            return Relation.empty(self._schema, name=self._name)
        indices = generator.choice(self._length, size=count, replace=replace)
        return self.take(indices)

    def shuffle(self, rng: np.random.Generator | None = None) -> "Relation":
        """Return the relation with rows in a random order."""
        generator = rng if rng is not None else np.random.default_rng()
        permutation = generator.permutation(self._length)
        return self.take(permutation)

    def sort_by(self, name: str, descending: bool = False) -> "Relation":
        """Return the relation sorted by a single column."""
        column = self.column(name)
        order = np.argsort(column, kind="stable")
        if descending:
            order = order[::-1]
        return self.take(order)

    def split_by_mask(self, condition: "Expression | np.ndarray") -> tuple["Relation", "Relation"]:
        """Split into (matching, non-matching) sub-relations."""
        mask = self._as_mask(condition)
        return self.filter(mask), self.filter(~mask)

    def group_by(self, names: Sequence[str]) -> dict[tuple, "Relation"]:
        """Group rows by the values of the named columns.

        Returns a mapping from the group key tuple to the sub-relation of
        rows with that key.
        """
        for name in names:
            self._schema.column(name)
        groups: dict[tuple, list[int]] = {}
        key_columns = [self._columns[name] for name in names]
        for index in range(self._length):
            key = tuple(column[index] for column in key_columns)
            groups.setdefault(key, []).append(index)
        return {key: self.take(indices) for key, indices in groups.items()}

    # ------------------------------------------------------------------ #
    # Statistics helpers
    # ------------------------------------------------------------------ #
    def column_min(self, name: str) -> float:
        """Minimum of a numeric column (raises on empty relations)."""
        values = self._numeric_values(name)
        if values.size == 0:
            raise ValueError(f"column {name!r} is empty; no minimum exists")
        return float(values.min())

    def column_max(self, name: str) -> float:
        """Maximum of a numeric column (raises on empty relations)."""
        values = self._numeric_values(name)
        if values.size == 0:
            raise ValueError(f"column {name!r} is empty; no maximum exists")
        return float(values.max())

    def column_sum(self, name: str) -> float:
        """Sum of a numeric column (0.0 on empty relations)."""
        return float(self._numeric_values(name).sum())

    def column_mean(self, name: str) -> float:
        """Mean of a numeric column (raises on empty relations)."""
        values = self._numeric_values(name)
        if values.size == 0:
            raise ValueError(f"column {name!r} is empty; no mean exists")
        return float(values.mean())

    def column_range(self, name: str) -> tuple[float, float]:
        """(min, max) of a numeric column."""
        return self.column_min(name), self.column_max(name)

    def distinct_values(self, name: str) -> np.ndarray:
        """Sorted distinct values of a column."""
        return np.unique(self.column(name))

    def value_counts(self, name: str) -> dict[object, int]:
        """Histogram of a column's values."""
        values, counts = np.unique(self.column(name), return_counts=True)
        return {value: int(count) for value, count in zip(values, counts)}

    def describe(self) -> dict[str, dict[str, float]]:
        """Per-numeric-column summary (count/min/max/mean/std)."""
        summary: dict[str, dict[str, float]] = {}
        for column in self._schema:
            if not column.is_numeric:
                continue
            values = self._columns[column.name].astype(np.float64)
            if values.size == 0:
                summary[column.name] = {"count": 0.0}
                continue
            summary[column.name] = {
                "count": float(values.size),
                "min": float(values.min()),
                "max": float(values.max()),
                "mean": float(values.mean()),
                "std": float(values.std()),
            }
        return summary

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _numeric_values(self, name: str) -> np.ndarray:
        self._schema.require_numeric(name)
        return self._columns[name].astype(np.float64)

    def _as_mask(self, condition: "Expression | np.ndarray") -> np.ndarray:
        if isinstance(condition, np.ndarray):
            mask = condition
        elif hasattr(condition, "evaluate"):
            mask = condition.evaluate(self)
        else:
            raise TypeMismatchError(
                "filter condition must be a boolean mask or an Expression, "
                f"got {type(condition).__name__}"
            )
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != (self._length,):
            raise TypeMismatchError(
                f"boolean mask has shape {mask.shape}, expected ({self._length},)"
            )
        return mask
