"""Boolean expression trees evaluated against relations.

Expressions are the WHERE-clause language of the relational substrate.  They
evaluate vectorised against a :class:`~repro.relational.relation.Relation`
(producing a boolean mask) and row-at-a-time against a plain ``dict``
(used by the slow oracle implementations in the test-suite).

The predicate-constraint framework (:mod:`repro.core.predicates`) compiles
its box predicates down to these expressions for ground-truth evaluation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from ..exceptions import PredicateError
from .relation import Relation

__all__ = [
    "ComparisonOperator",
    "Expression",
    "TrueExpression",
    "FalseExpression",
    "Comparison",
    "Between",
    "IsIn",
    "And",
    "Or",
    "Not",
    "conjunction",
    "disjunction",
]


class ComparisonOperator(enum.Enum):
    """Binary comparison operators supported in WHERE clauses."""

    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, left, right):
        """Apply the operator (works on scalars and numpy arrays)."""
        if self is ComparisonOperator.EQ:
            return left == right
        if self is ComparisonOperator.NE:
            return left != right
        if self is ComparisonOperator.LT:
            return left < right
        if self is ComparisonOperator.LE:
            return left <= right
        if self is ComparisonOperator.GT:
            return left > right
        return left >= right

    def negate(self) -> "ComparisonOperator":
        """The operator whose truth value is the complement of this one."""
        mapping = {
            ComparisonOperator.EQ: ComparisonOperator.NE,
            ComparisonOperator.NE: ComparisonOperator.EQ,
            ComparisonOperator.LT: ComparisonOperator.GE,
            ComparisonOperator.LE: ComparisonOperator.GT,
            ComparisonOperator.GT: ComparisonOperator.LE,
            ComparisonOperator.GE: ComparisonOperator.LT,
        }
        return mapping[self]


class Expression:
    """Base class for boolean expressions."""

    def evaluate(self, relation: Relation) -> np.ndarray:
        """Vectorised evaluation: boolean mask with one entry per row."""
        raise NotImplementedError

    def matches_row(self, row: Mapping[str, object]) -> bool:
        """Row-at-a-time evaluation against a ``{column: value}`` mapping."""
        raise NotImplementedError

    def attributes(self) -> set[str]:
        """The set of attribute names referenced by this expression."""
        raise NotImplementedError

    # Operator sugar --------------------------------------------------- #
    def __and__(self, other: "Expression") -> "Expression":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Expression":
        return Or((self, other))

    def __invert__(self) -> "Expression":
        return Not(self)


@dataclass(frozen=True)
class TrueExpression(Expression):
    """The expression that matches every row."""

    def evaluate(self, relation: Relation) -> np.ndarray:
        return np.ones(relation.num_rows, dtype=bool)

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return True

    def attributes(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return "TRUE"


@dataclass(frozen=True)
class FalseExpression(Expression):
    """The expression that matches no row."""

    def evaluate(self, relation: Relation) -> np.ndarray:
        return np.zeros(relation.num_rows, dtype=bool)

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return False

    def attributes(self) -> set[str]:
        return set()

    def __repr__(self) -> str:
        return "FALSE"


@dataclass(frozen=True)
class Comparison(Expression):
    """``attribute <op> value``."""

    attribute: str
    operator: ComparisonOperator
    value: object

    def evaluate(self, relation: Relation) -> np.ndarray:
        column = relation.column(self.attribute)
        return np.asarray(self.operator.apply(column, self.value), dtype=bool)

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return bool(self.operator.apply(row[self.attribute], self.value))

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __repr__(self) -> str:
        return f"({self.attribute} {self.operator.value} {self.value!r})"


@dataclass(frozen=True)
class Between(Expression):
    """``low <= attribute <= high`` (closed interval)."""

    attribute: str
    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise PredicateError(
                f"Between({self.attribute}): low {self.low} exceeds high {self.high}"
            )

    def evaluate(self, relation: Relation) -> np.ndarray:
        column = relation.column(self.attribute)
        return np.asarray((column >= self.low) & (column <= self.high), dtype=bool)

    def matches_row(self, row: Mapping[str, object]) -> bool:
        value = row[self.attribute]
        return bool(self.low <= value <= self.high)

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __repr__(self) -> str:
        return f"({self.low!r} <= {self.attribute} <= {self.high!r})"


class IsIn(Expression):
    """``attribute IN (v1, v2, ...)``."""

    def __init__(self, attribute: str, values: Iterable[object]):
        self.attribute = attribute
        self.values = frozenset(values)
        if not self.values:
            raise PredicateError(f"IsIn({attribute}) requires at least one value")

    def evaluate(self, relation: Relation) -> np.ndarray:
        column = relation.column(self.attribute)
        return np.isin(column, list(self.values))

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return row[self.attribute] in self.values

    def attributes(self) -> set[str]:
        return {self.attribute}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IsIn):
            return NotImplemented
        return self.attribute == other.attribute and self.values == other.values

    def __hash__(self) -> int:
        return hash((self.attribute, self.values))

    def __repr__(self) -> str:
        rendered = ", ".join(repr(v) for v in sorted(self.values, key=repr))
        return f"({self.attribute} IN {{{rendered}}})"


class And(Expression):
    """Conjunction of child expressions (empty conjunction is TRUE)."""

    def __init__(self, children: Sequence[Expression]):
        self.children: tuple[Expression, ...] = tuple(children)

    def evaluate(self, relation: Relation) -> np.ndarray:
        mask = np.ones(relation.num_rows, dtype=bool)
        for child in self.children:
            mask &= child.evaluate(relation)
            if not mask.any():
                break
        return mask

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return all(child.matches_row(row) for child in self.children)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for child in self.children:
            result |= child.attributes()
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, And):
            return NotImplemented
        return self.children == other.children

    def __hash__(self) -> int:
        return hash(("And", self.children))

    def __repr__(self) -> str:
        return "(" + " AND ".join(repr(child) for child in self.children) + ")"


class Or(Expression):
    """Disjunction of child expressions (empty disjunction is FALSE)."""

    def __init__(self, children: Sequence[Expression]):
        self.children: tuple[Expression, ...] = tuple(children)

    def evaluate(self, relation: Relation) -> np.ndarray:
        mask = np.zeros(relation.num_rows, dtype=bool)
        for child in self.children:
            mask |= child.evaluate(relation)
            if mask.all():
                break
        return mask

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return any(child.matches_row(row) for child in self.children)

    def attributes(self) -> set[str]:
        result: set[str] = set()
        for child in self.children:
            result |= child.attributes()
        return result

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Or):
            return NotImplemented
        return self.children == other.children

    def __hash__(self) -> int:
        return hash(("Or", self.children))

    def __repr__(self) -> str:
        return "(" + " OR ".join(repr(child) for child in self.children) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Logical negation of a child expression."""

    child: Expression

    def evaluate(self, relation: Relation) -> np.ndarray:
        return ~self.child.evaluate(relation)

    def matches_row(self, row: Mapping[str, object]) -> bool:
        return not self.child.matches_row(row)

    def attributes(self) -> set[str]:
        return self.child.attributes()

    def __repr__(self) -> str:
        return f"NOT {self.child!r}"


def conjunction(expressions: Sequence[Expression]) -> Expression:
    """Build a conjunction, simplifying the empty and singleton cases."""
    children = [e for e in expressions if not isinstance(e, TrueExpression)]
    if any(isinstance(e, FalseExpression) for e in children):
        return FalseExpression()
    if not children:
        return TrueExpression()
    if len(children) == 1:
        return children[0]
    return And(children)


def disjunction(expressions: Sequence[Expression]) -> Expression:
    """Build a disjunction, simplifying the empty and singleton cases."""
    children = [e for e in expressions if not isinstance(e, FalseExpression)]
    if any(isinstance(e, TrueExpression) for e in children):
        return TrueExpression()
    if not children:
        return FalseExpression()
    if len(children) == 1:
        return children[0]
    return Or(children)
