"""CSV import/export for relations.

The synthetic dataset generators can persist generated data so experiment
runs are reproducible and inspectable; this module provides the (small)
serialisation layer.  Only the types used by the library (float, int,
string) are supported.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from ..exceptions import SchemaError
from .relation import Relation
from .schema import ColumnType, Schema

__all__ = ["write_csv", "read_csv"]

_TYPE_TAGS = {
    ColumnType.FLOAT: "float",
    ColumnType.INT: "int",
    ColumnType.STRING: "string",
}
_TAG_TYPES = {tag: ctype for ctype, tag in _TYPE_TAGS.items()}


def write_csv(relation: Relation, path: str | Path) -> Path:
    """Write ``relation`` to ``path``.

    The header row encodes both the column name and its type as
    ``name:type`` so the relation can be round-tripped without a side-channel
    schema file.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        header = [
            f"{column.name}:{_TYPE_TAGS[column.ctype]}" for column in relation.schema
        ]
        writer.writerow(header)
        for row in relation.to_rows():
            writer.writerow(row)
    return target


def read_csv(path: str | Path, name: str | None = None) -> Relation:
    """Read a relation previously written by :func:`write_csv`."""
    source = Path(path)
    with source.open("r", newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"CSV file {source} is empty") from None
        schema = Schema.from_pairs(_parse_header(header))
        rows = [_parse_row(schema, row) for row in reader if row]
    return Relation.from_rows(schema, rows, name=name or source.stem)


def _parse_header(header: Iterable[str]) -> list[tuple[str, ColumnType]]:
    pairs: list[tuple[str, ColumnType]] = []
    for cell in header:
        name, _, tag = cell.partition(":")
        if not tag or tag not in _TAG_TYPES:
            raise SchemaError(
                f"CSV header cell {cell!r} must look like 'name:type' with type in "
                f"{sorted(_TAG_TYPES)}"
            )
        pairs.append((name, _TAG_TYPES[tag]))
    return pairs


def _parse_row(schema: Schema, row: list[str]) -> list[object]:
    if len(row) != len(schema):
        raise SchemaError(
            f"CSV row has {len(row)} cells, expected {len(schema)}: {row!r}"
        )
    values: list[object] = []
    for column, cell in zip(schema, row):
        if column.ctype is ColumnType.FLOAT:
            values.append(float(cell))
        elif column.ctype is ColumnType.INT:
            values.append(int(float(cell)))
        else:
            values.append(cell)
    return values
